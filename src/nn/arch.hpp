// Architecture factory.
//
// Miniature counterparts of the paper's backbone families, sized for CPU
// training on 16x16 synthetic images.  The family distinctions the paper's
// cross-architecture experiments rely on are preserved:
//   ResNet18Mini        — residual 3x3 conv blocks
//   MobileNetV2Mini     — depthwise-separable blocks
//   MobileViTMini       — conv stem + spatial self-attention block
//   SwinMini            — patchify + two attention stages
//   Mlp                 — flat baseline (tests / ablations)
#pragma once

#include <memory>
#include <string>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace bprom::nn {

enum class ArchKind {
  kResNet18Mini,
  kMobileNetV2Mini,
  kMobileViTMini,
  kSwinMini,
  kMlp,
};

[[nodiscard]] std::string arch_name(ArchKind kind);

/// Build a randomly initialized model of the given family.
std::unique_ptr<Model> make_model(ArchKind kind, ImageShape input,
                                  std::size_t classes, util::Rng& rng);

}  // namespace bprom::nn
