// bprom_lint fixture — NOT part of the build.  See raw_thread.cpp for the
// expect-marker convention.
#include <atomic>

std::atomic<int> counter{0};

void bad() {
  counter.fetch_add(1, std::memory_order_relaxed);  // expect(relaxed-comment)
}

void justified_same_line() {
  counter.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally only
}

void justified_above() {
  // relaxed: statistics tally — a snapshot, not a transaction, so no
  // ordering with neighbouring operations is needed.
  counter.fetch_add(1, std::memory_order_relaxed);
}

void justified_at_window_edge() {
  // relaxed: the justification sits exactly three lines above the
  // operation, the widest separation the rule accepts — any further
  // away and the comment is no longer clearly about this line.
  counter.fetch_add(1, std::memory_order_relaxed);
}

void justification_too_far() {
  // relaxed: this comment is four lines above the operation, one past
  // the window, so the finding below must still fire — stale comments
  // drifting away from their operation is exactly what the window
  // bound exists to catch.
  counter.fetch_add(1, std::memory_order_relaxed);  // expect(relaxed-comment)
}

void tolerated() {
  // bprom-lint: allow(relaxed-comment)
  counter.fetch_add(1, std::memory_order_relaxed);
}
