// Principal component analysis for the paper's Figures 3 and 5 and for the
// feature-space analyses inside several defenses.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace bprom::linalg {

struct PcaModel {
  std::vector<double> mean;                     // feature mean
  std::vector<std::vector<double>> components;  // top-k principal axes
  std::vector<double> explained;                // eigenvalues for those axes

  /// Project a sample onto the retained components.
  [[nodiscard]] std::vector<double> project(
      const std::vector<double>& x) const;
};

/// Fit PCA on rows of `data` (samples x features), retaining k components.
PcaModel fit_pca(const Matrix& data, std::size_t k);

}  // namespace bprom::linalg
