#include "defenses/mntd.hpp"

#include <cassert>

#include "data/ops.hpp"

namespace bprom::defenses {

MntdDetector::MntdDetector(MntdConfig config) : config_(std::move(config)) {}

std::vector<float> MntdDetector::feature_vector(
    const nn::BlackBoxModel& model) const {
  nn::Tensor probs = model.predict_proba(query_set_.images);
  return std::vector<float>(probs.vec().begin(), probs.vec().end());
}

void MntdDetector::fit(const nn::LabeledData& reserved_clean,
                       std::size_t classes) {
  assert(reserved_clean.size() > 0);
  util::Rng rng(config_.seed);
  const nn::ImageShape shape{reserved_clean.images.dim(1),
                             reserved_clean.images.dim(2),
                             reserved_clean.images.dim(3)};
  const std::size_t q =
      std::min(config_.query_samples, reserved_clean.size());
  query_set_ = data::subset(
      reserved_clean,
      rng.sample_without_replacement(reserved_clean.size(), q));

  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  const std::size_t total = config_.clean_shadows + config_.backdoor_shadows;
  for (std::size_t i = 0; i < total; ++i) {
    const bool is_backdoor = i >= config_.clean_shadows;
    util::Rng model_rng = rng.split(i + 1);
    nn::LabeledData train_set = reserved_clean;
    if (is_backdoor) {
      const auto kind = config_.attack_pool[model_rng.uniform_index(
          config_.attack_pool.size())];
      auto atk = attacks::AttackConfig::defaults(kind);
      atk.poison_rate = config_.shadow_poison_rate;
      atk.target_class = static_cast<int>(model_rng.uniform_index(classes));
      atk.seed = model_rng.next_u64();
      train_set =
          attacks::poison_dataset(reserved_clean, atk, model_rng).data;
    }
    auto shadow =
        nn::make_model(config_.shadow_arch, shape, classes, model_rng);
    nn::TrainConfig tc = config_.shadow_train;
    tc.seed = model_rng.next_u64();
    nn::train_classifier(*shadow, train_set, tc);

    nn::BlackBoxAdapter adapter(*shadow);
    features.push_back(feature_vector(adapter));
    labels.push_back(is_backdoor ? 1 : 0);
  }
  meta_ = meta::LogisticRegression();
  meta_.fit(features, labels);
  fitted_ = true;
}

double MntdDetector::score(const nn::BlackBoxModel& suspicious) const {
  assert(fitted_);
  return meta_.predict_proba(feature_vector(suspicious));
}

}  // namespace bprom::defenses
