#include "defenses/model_level.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/stats.hpp"
#include "nn/loss.hpp"

namespace bprom::defenses {

double mmbd_model_score(nn::Model& model, const MmBdConfig& config) {
  const std::size_t k = model.num_classes();
  const nn::ImageShape shape = model.input_shape();
  util::Rng rng(config.seed);

  std::vector<double> max_margin(k, -1e30);
  for (std::size_t cls = 0; cls < k; ++cls) {
    for (std::size_t restart = 0; restart < config.restarts; ++restart) {
      // Random start in [0, 1]^d.
      nn::Tensor x({1, shape.channels, shape.height, shape.width});
      for (auto& v : x.vec()) v = static_cast<float>(rng.uniform());

      for (std::size_t step = 0; step < config.steps; ++step) {
        nn::Tensor logits = model.logits(x, /*train=*/false);
        // Margin objective: logit_cls - max_{j != cls} logit_j.
        std::size_t runner = cls == 0 ? 1 : 0;
        for (std::size_t j = 0; j < k; ++j) {
          if (j != cls && logits[j] > logits[runner]) runner = j;
        }
        nn::Tensor dlogits({1, k});
        dlogits[cls] = -1.0F;   // ascend on margin == descend on -margin
        dlogits[runner] = 1.0F;
        nn::Tensor dx = model.backward(dlogits);
        for (std::size_t p = 0; p < x.size(); ++p) {
          x[p] = std::clamp(x[p] - config.lr * dx[p], 0.0F, 1.0F);
        }
      }
      nn::Tensor logits = model.logits(x, /*train=*/false);
      std::size_t runner = cls == 0 ? 1 : 0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != cls && logits[j] > logits[runner]) runner = j;
      }
      max_margin[cls] = std::max(
          max_margin[cls], static_cast<double>(logits[cls] - logits[runner]));
    }
  }
  for (auto* p : model.parameters()) p->zero_grad();

  // Anomaly of the largest margin relative to the rest (MAD units).
  std::vector<double> sorted = max_margin;
  std::sort(sorted.begin(), sorted.end());
  const double top = sorted.back();
  sorted.pop_back();
  const double med = linalg::median(sorted);
  const double scale = linalg::mad(sorted) + 1e-6;
  return (top - med) / scale;
}

}  // namespace bprom::defenses
