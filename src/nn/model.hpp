// Classifier model: feature backbone + linear head.
//
// Splitting the head out gives every analysis component (defenses, the
// class-subspace figures) access to penultimate features without layer
// surgery, and gives the VP trainer a single backward() that propagates all
// the way to the *input* gradient — which is what prompt learning optimizes.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace bprom::nn {

struct ImageShape {
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;

  [[nodiscard]] std::size_t size() const { return channels * height * width; }
  bool operator==(const ImageShape&) const = default;
};

class Model {
 public:
  Model(std::unique_ptr<Sequential> backbone, std::unique_ptr<Linear> head,
        ImageShape input, std::size_t classes);

  /// Logits [N, K] for an image batch [N, C, H, W].
  Tensor logits(const Tensor& images, bool train = false);

  /// Penultimate features [N, D] (backbone output, eval mode).
  Tensor features(const Tensor& images);

  /// Softmax probabilities [N, K] (eval mode).
  Tensor predict_proba(const Tensor& images);

  /// Argmax predictions.
  std::vector<int> predict(const Tensor& images);

  /// Fraction of correct argmax predictions.
  double accuracy(const Tensor& images, const std::vector<int>& labels);

  /// Backprop dL/dlogits through head and backbone; returns dL/dinput.
  /// Must follow a logits() call on the same batch.
  Tensor backward(const Tensor& dlogits);

  std::vector<Parameter*> parameters();

  [[nodiscard]] const ImageShape& input_shape() const { return input_; }
  [[nodiscard]] std::size_t num_classes() const { return classes_; }
  [[nodiscard]] std::size_t feature_dim() const {
    return head_->in_features();
  }

  /// Flatten all parameters into a blob / restore from one (round-trips
  /// trained weights; BatchNorm running stats are NOT included, so save only
  /// models intended for eval-mode use after a fresh stats pass, or keep the
  /// object alive — the library keeps models in memory in practice).
  [[nodiscard]] std::vector<float> save_parameters();
  void load_parameters(const std::vector<float>& blob);

 private:
  std::unique_ptr<Sequential> backbone_;
  std::unique_ptr<Linear> head_;
  ImageShape input_;
  std::size_t classes_;
};

}  // namespace bprom::nn
