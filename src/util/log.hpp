// Tiny leveled logger.  Default level is Info; BPROM_LOG=debug|info|warn|off
// overrides.  Output goes to stderr so bench tables on stdout stay clean.
//
// Thread-safe: the level is an atomic (any thread may raise/lower it while
// others log) and the sink stream is written under a mutex.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace bprom::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

/// Redirect log output (default: std::cerr).  nullptr restores stderr.
/// The stream is borrowed and must outlive all logging; writes to it are
/// serialized by the logger's internal mutex.
void set_log_sink(std::ostream* sink);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }

}  // namespace bprom::util
