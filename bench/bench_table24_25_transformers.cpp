// Tables 24-25: MobileViTMini and SwinMini architectures.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  for (auto arch : {nn::ArchKind::kMobileViTMini, nn::ArchKind::kSwinMini}) {
    std::vector<std::string> header = {"dataset"};
    for (auto a : kinds) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    for (auto* src : {&env.cifar10, &env.gtsrb}) {
      auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
      std::vector<std::string> row = {src->profile.name};
      double avg = 0;
      for (const auto& cell :
           bprom_row(detector, *src, arch, 1200, env.scale, kinds)) {
        row.push_back(util::cell(cell.auroc));
        avg += cell.auroc;
      }
      row.push_back(util::cell(avg / kinds.size()));
      table.add_row(row);
    }
    std::printf("== Tables 24-25 (%s): BPROM AUROC ==\n", nn::arch_name(arch).c_str());
    table.print();
  }
  return 0;
}
