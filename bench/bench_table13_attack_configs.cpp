// Table 13: attack configuration registry (substrate-scaled rates) + the
// paper's originals for reference.
#include "common.hpp"
int main() {
  using namespace bench;
  util::TablePrinter table({"attack", "poison rate", "cover rate",
                            "trigger", "alpha", "clean-label"});
  for (auto kind : {attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
                    attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
                    attacks::AttackKind::kDynamic, attacks::AttackKind::kAdapBlend,
                    attacks::AttackKind::kAdapPatch, attacks::AttackKind::kBpp,
                    attacks::AttackKind::kSig, attacks::AttackKind::kLc,
                    attacks::AttackKind::kRefool, attacks::AttackKind::kPoisonInk}) {
    auto cfg = attacks::AttackConfig::defaults(kind);
    table.add_row({attacks::attack_name(kind), util::cell(cfg.poison_rate, 3),
                   util::cell(cfg.cover_rate, 3), util::cell(cfg.trigger_size),
                   util::cell(cfg.alpha, 2),
                   attacks::is_clean_label(kind) ? "yes" : "no"});
  }
  std::printf("== Table 13: attack configurations (substrate-scaled; see EXPERIMENTS.md) ==\n");
  table.print();
  return 0;
}
