// CMA-ES — the gradient-free optimizer the paper uses to learn the visual
// prompt for the *suspicious* model, where only black-box confidence-vector
// queries are available.
//
// Two covariance modes:
//   kFull      — classic (mu/mu_w, lambda) CMA-ES with rank-one + rank-mu
//                updates and periodic eigendecomposition.  O(n^2) sampling,
//                O(n^3) decomposition; use for n up to a few hundred.
//   kSeparable — sep-CMA-ES (Ros & Hansen 2008): diagonal covariance,
//                O(n) per sample.  Default for prompt dimensions (~500+).
//
// Minimization convention throughout.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace bprom::opt {

enum class CovarianceMode { kFull, kSeparable };

struct CmaEsConfig {
  std::size_t dim = 0;
  double sigma0 = 0.3;
  /// 0 selects the standard 4 + floor(3 ln n).
  std::size_t lambda = 0;
  CovarianceMode mode = CovarianceMode::kSeparable;
  std::size_t max_evaluations = 2000;
  std::uint64_t seed = 13;
  /// Stop early when best f stops improving by more than tol for
  /// `stall_generations` consecutive generations (0 disables).
  double tol = 1e-10;
  std::size_t stall_generations = 40;
};

struct CmaEsResult {
  std::vector<double> best_x;
  double best_f = 0.0;
  std::size_t evaluations = 0;
  std::size_t generations = 0;
};

class CmaEs {
 public:
  using Objective = std::function<double(const std::vector<double>&)>;
  /// Receives one whole generation's candidate vector at a time and returns
  /// fitness[i] for candidates[i].  Gives the caller the full generation to
  /// fan out over threads / model replicas; CMA-ES itself only needs the
  /// final per-candidate values, so any evaluation schedule is admissible.
  using BatchObjective = std::function<std::vector<double>(
      const std::vector<std::vector<double>>&)>;

  CmaEs(CmaEsConfig config, std::vector<double> x0);

  /// Sample lambda candidate solutions.
  std::vector<std::vector<double>> ask();

  /// Report fitness for the candidates from the last ask() (minimization).
  void tell(const std::vector<std::vector<double>>& candidates,
            const std::vector<double>& fitness);

  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] const std::vector<double>& best_x() const { return best_x_; }
  [[nodiscard]] double best_f() const { return best_f_; }
  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }
  /// Population size per generation (resolved from config.lambda).
  [[nodiscard]] std::size_t lambda() const { return lambda_; }

  /// Run the full ask/tell loop against an objective, one candidate at a
  /// time (evaluated in ascending candidate order).
  CmaEsResult optimize(const Objective& objective);

  /// Run the full ask/tell loop handing each generation's candidates to the
  /// caller at once.  With a zero evaluation budget no generation runs and
  /// the result reports best_f = +huge (never a fabricated perfect loss).
  CmaEsResult optimize(const BatchObjective& batch_objective);

 private:
  void update_eigensystem();

  CmaEsConfig config_;
  util::Rng rng_;
  std::size_t lambda_;
  std::size_t mu_;
  std::vector<double> weights_;
  double mu_eff_ = 0.0;
  double cc_ = 0.0;
  double cs_ = 0.0;
  double c1_ = 0.0;
  double cmu_ = 0.0;
  double damps_ = 0.0;
  double chi_n_ = 0.0;

  std::vector<double> mean_;
  double sigma_;
  std::vector<double> pc_;
  std::vector<double> ps_;

  // Full mode state.
  linalg::Matrix cov_;
  linalg::Matrix eig_basis_;        // columns = eigenvectors (stored row-major)
  std::vector<double> eig_sqrt_;    // sqrt eigenvalues
  std::size_t eig_stale_ = 0;

  // Separable mode state.
  std::vector<double> diag_cov_;

  // Cached sample displacements (z-space) from the last ask().
  std::vector<std::vector<double>> last_z_;

  std::vector<double> best_x_;
  double best_f_ = 1e300;
  std::size_t evaluations_ = 0;
  std::size_t generations_ = 0;
};

}  // namespace bprom::opt
