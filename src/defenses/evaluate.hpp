// Unified defense evaluation used by the table benches.
//
// The paper's comparison tables mix regimes (that is how the original works
// evaluate): input-level defenses get AUROC/F1 at separating triggered from
// benign *inputs* on a given model, data-level defenses at separating poison
// from clean *training samples*, and model-level methods (MM-BD, MNTD,
// BPROM) at separating backdoored from clean *models*.  This header maps
// each DefenseKind to its regime and produces comparable AUROC/F1 numbers.
#pragma once

#include <string>
#include <vector>

#include "attacks/poisoner.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bprom::defenses {

enum class DefenseKind {
  kStrip,
  kAc,
  kFrequency,
  kSentiNet,
  kCt,
  kSs,
  kScan,
  kSpectre,
  kMmBd,
  kTed,
  kTeco,
  kScaleUp,
  kCd,
};

[[nodiscard]] std::string defense_name(DefenseKind kind);

enum class DefenseRegime { kInputLevel, kDataLevel, kModelLevel };
[[nodiscard]] DefenseRegime regime_of(DefenseKind kind);

struct DefenseEval {
  double auroc = 0.5;
  double f1 = 0.0;
};

/// Input-level evaluation: `n_eval` clean test inputs vs `n_eval` triggered
/// copies, scored on the given (clean or backdoored) model.  When the model
/// is clean this reproduces the Table 1 collapse.
DefenseEval evaluate_input_level(DefenseKind kind, nn::Model& model,
                                 const nn::LabeledData& clean_test,
                                 const attacks::AttackConfig& attack,
                                 std::size_t n_eval, util::Rng& rng);

/// Data-level evaluation: score the training samples of a poisoned set and
/// compare against the ground-truth poison mask.
DefenseEval evaluate_data_level(DefenseKind kind, nn::Model& model,
                                const attacks::PoisonResult& poisoned,
                                std::size_t classes, util::Rng& rng);

/// Model-level evaluation for MM-BD: scores across a model population.
double mmbd_population_score(nn::Model& model);

/// Score a suspicious-model cohort with MM-BD, one score per model, in
/// parallel on `pool` (nullptr = global pool).  Models must be distinct —
/// each task has exclusive use of its model during scoring.
std::vector<double> mmbd_cohort_scores(const std::vector<nn::Model*>& cohort,
                                       util::ThreadPool* pool = nullptr);

}  // namespace bprom::defenses
