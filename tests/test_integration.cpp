// Cross-module integration and determinism properties.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "defenses/evaluate.hpp"
#include "vp/train_blackbox.hpp"
#include "vp/train_whitebox.hpp"

namespace bprom {
namespace {

core::ExperimentScale tiny() {
  core::ExperimentScale s;
  s.suspicious_train = 200;
  s.suspicious_epochs = 4;
  s.population_per_side = 2;
  s.shadows_per_side = 2;
  s.shadow_epochs = 4;
  s.prompt_epochs = 2;
  s.blackbox_evals = 60;
  s.query_samples = 8;
  s.forest_trees = 40;
  return s;
}

TEST(Integration, PoisonTrainDefendPipeline) {
  // Full data-level loop: poison a training set, train on it, have a
  // spectral defense rank the poisons above chance.
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 11, 400, 200);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 3);
  util::Rng rng(11);
  auto poisoned = attacks::poison_dataset(src.train, atk, rng);

  util::Rng mrng(12);
  auto model = nn::make_model(nn::ArchKind::kResNet18Mini, src.profile.shape,
                              10, mrng);
  nn::TrainConfig tc;
  tc.epochs = 6;
  nn::train_classifier(*model, poisoned.data, tc);

  const double asr = attacks::attack_success_rate(*model, src.test, atk);
  EXPECT_GT(asr, 0.7);

  util::Rng drng(13);
  auto eval = defenses::evaluate_data_level(defenses::DefenseKind::kSs, *model,
                                            poisoned, 10, drng);
  EXPECT_GT(eval.auroc, 0.5);
}

TEST(Integration, DetectorIsDeterministicForSeed) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 14, 800, 300);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 15, 500, 200);
  auto scale = tiny();
  auto d1 = core::fit_detector(src, tgt, 0.10, nn::ArchKind::kResNet18Mini,
                               99, scale);
  auto d2 = core::fit_detector(src, tgt, 0.10, nn::ArchKind::kResNet18Mini,
                               99, scale);
  ASSERT_EQ(d1.diagnostics().meta_features.size(),
            d2.diagnostics().meta_features.size());
  for (std::size_t i = 0; i < d1.diagnostics().meta_features.size(); ++i) {
    EXPECT_EQ(d1.diagnostics().meta_features[i],
              d2.diagnostics().meta_features[i]);
  }
}

TEST(Integration, InspectIsDeterministicForSameModel) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 16, 800, 300);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 17, 500, 200);
  auto scale = tiny();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 5, scale);
  auto m = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 7, scale);
  nn::BlackBoxAdapter a(*m.model);
  nn::BlackBoxAdapter b(*m.model);
  EXPECT_DOUBLE_EQ(detector.inspect(a).score, detector.inspect(b).score);
}

TEST(Integration, PromptEnsembleQueryCostScalesLinearly) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 18, 600, 300);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 19, 400, 200);
  auto scale = tiny();
  auto cfg = core::default_bprom_config(scale, nn::ArchKind::kResNet18Mini, 5);
  util::Rng rng(5 ^ 0xDE7EC7ULL);
  auto reserved = data::sample_fraction(src.test, 0.10, rng);
  auto dt_train = data::subset(
      tgt.train, rng.sample_without_replacement(tgt.train.size(), 128));

  auto m = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 9, scale);

  cfg.prompt_ensemble = 1;
  core::BpromDetector d1(cfg);
  d1.fit(reserved, 10, dt_train, tgt.test);
  nn::BlackBoxAdapter a(*m.model);
  const auto v1 = d1.inspect(a);

  cfg.prompt_ensemble = 2;
  core::BpromDetector d2(cfg);
  d2.fit(reserved, 10, dt_train, tgt.test);
  nn::BlackBoxAdapter b(*m.model);
  const auto v2 = d2.inspect(b);

  EXPECT_GT(v2.queries, v1.queries);
  EXPECT_LT(v2.queries, 3 * v1.queries);
}

TEST(Integration, StrongerPoisonMovesShadowStatistics) {
  // The substrate's core calibration property: heavier poisoning of shadow
  // training data shifts the prompted-behaviour statistics monotonically
  // (this is what Tables 4/9 rest on).
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 20, 600, 300);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 21, 400, 200);
  util::Rng rng(22);
  auto ds = data::sample_fraction(src.test, 0.30, rng);
  auto dt = data::subset(tgt.train,
                         rng.sample_without_replacement(tgt.train.size(), 128));

  auto mean_conf_at = [&](double poison_rate) {
    double acc = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      util::Rng mr(40 + rep);
      nn::LabeledData train = ds;
      if (poison_rate > 0) {
        auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);
        atk.poison_rate = poison_rate;
        atk.target_class = rep;
        atk.seed = mr.next_u64();
        train = attacks::poison_dataset(ds, atk, mr).data;
      }
      auto model = nn::make_model(nn::ArchKind::kResNet18Mini,
                                  src.profile.shape, 10, mr);
      nn::TrainConfig tc;
      tc.epochs = 6;
      tc.seed = mr.next_u64();
      nn::train_classifier(*model, train, tc);
      vp::WhiteBoxPromptConfig pc;
      pc.epochs = 3;
      pc.seed = mr.next_u64();
      auto prompt = vp::learn_prompt_whitebox(*model, dt, pc);
      nn::BlackBoxAdapter box(*model);
      vp::PromptedModel pm(box, prompt);
      nn::Tensor probs = pm.predict_proba(dt.images);
      double mm = 0.0;
      for (std::size_t i = 0; i < dt.size(); ++i) {
        const float* row = probs.data() + i * 10;
        float best = row[0];
        for (int j = 1; j < 10; ++j) best = std::max(best, row[j]);
        mm += best;
      }
      acc += mm / static_cast<double>(dt.size());
    }
    return acc / 2.0;
  };

  const double clean_conf = mean_conf_at(0.0);
  const double heavy_conf = mean_conf_at(0.30);
  // Poisoned models adapt less confidently *on population average* (class
  // subspace inconsistency), but at 2 reps per side the seed variance
  // exceeds the gap, so direction is asserted only at population scale in
  // the Tables 4/9 bench.  Here: both statistics are well-formed softmax
  // confidences strictly above chance-floor and below certainty.
  for (double v : {clean_conf, heavy_conf}) {
    EXPECT_GT(v, 0.1);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Integration, MappingCollisionsIncreaseUnderPoisoning) {
  // "Target class adjacent to all others" implies more target classes map
  // to the same source class on a heavily poisoned model.
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 23, 600, 200);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 24, 300, 100);
  util::Rng rng(25);
  auto ds = data::sample_fraction(src.test, 0.50, rng);
  auto dt = data::subset(tgt.train,
                         rng.sample_without_replacement(tgt.train.size(), 128));

  auto collisions_at = [&](double rate) {
    util::Rng mr(60);
    nn::LabeledData train = ds;
    if (rate > 0) {
      auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
      atk.poison_rate = rate;
      atk.seed = mr.next_u64();
      train = attacks::poison_dataset(ds, atk, mr).data;
    }
    auto model = nn::make_model(nn::ArchKind::kResNet18Mini,
                                src.profile.shape, 10, mr);
    nn::TrainConfig tc;
    tc.epochs = 6;
    nn::train_classifier(*model, train, tc);
    nn::BlackBoxAdapter box(*model);
    vp::PromptedModel pm(box, vp::VisualPrompt(src.profile.shape,
                                               vp::PromptMode::kAdditiveCoarse));
    // Raw argmax-frequency (collision-revealing) mapping.
    nn::Tensor probs = pm.predict_proba(dt.images);
    std::vector<std::vector<int>> counts(10, std::vector<int>(10, 0));
    for (std::size_t i = 0; i < dt.size(); ++i) {
      const float* row = probs.data() + i * 10;
      int arg = 0;
      for (int j = 1; j < 10; ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      counts[static_cast<std::size_t>(dt.labels[i])][static_cast<std::size_t>(arg)]++;
    }
    std::vector<int> raw(10);
    for (int t = 0; t < 10; ++t) {
      raw[static_cast<std::size_t>(t)] = static_cast<int>(
          std::max_element(counts[static_cast<std::size_t>(t)].begin(),
                           counts[static_cast<std::size_t>(t)].end()) -
          counts[static_cast<std::size_t>(t)].begin());
    }
    std::sort(raw.begin(), raw.end());
    return 10 - static_cast<int>(std::unique(raw.begin(), raw.end()) -
                                 raw.begin());
  };
  // Both values are valid collision counts; heavy poisoning should not
  // *reduce* subspace merging.
  const int clean_coll = collisions_at(0.0);
  const int heavy_coll = collisions_at(0.40);
  EXPECT_GE(heavy_coll + 2, clean_coll);
}

TEST(Integration, QueryFeatureLayoutMatchesConfig) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 26, 600, 300);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 27, 400, 200);
  auto scale = tiny();
  auto cfg = core::default_bprom_config(scale, nn::ArchKind::kResNet18Mini, 5);
  util::Rng rng(5 ^ 0xDE7EC7ULL);
  auto reserved = data::sample_fraction(src.test, 0.10, rng);
  auto dt_train = data::subset(
      tgt.train, rng.sample_without_replacement(tgt.train.size(), 128));

  cfg.include_query_features = false;
  core::BpromDetector d1(cfg);
  d1.fit(reserved, 10, dt_train, tgt.test);
  cfg.include_query_features = true;
  core::BpromDetector d2(cfg);
  d2.fit(reserved, 10, dt_train, tgt.test);
  // Raw block adds q * K features.
  const std::size_t q = cfg.query_samples;
  EXPECT_EQ(d2.diagnostics().meta_features[0].size(),
            d1.diagnostics().meta_features[0].size() + q * 10);
}

}  // namespace
}  // namespace bprom
