#include "defenses/data_level.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/stats.hpp"
#include "nn/arch.hpp"
#include "nn/loss.hpp"

namespace bprom::defenses {
namespace {

/// Penultimate features for the whole set, batched.
linalg::Matrix features_of(nn::Model& model, const LabeledData& data) {
  const std::size_t n = data.size();
  const std::size_t d = model.feature_dim();
  linalg::Matrix out(n, d);
  constexpr std::size_t kBatch = 128;
  const std::size_t sample = data.images.size() / n;
  for (std::size_t begin = 0; begin < n; begin += kBatch) {
    const std::size_t end = std::min(begin + kBatch, n);
    std::vector<std::size_t> shape = data.images.shape();
    shape[0] = end - begin;
    nn::Tensor batch(shape);
    std::copy(data.images.data() + begin * sample,
              data.images.data() + end * sample, batch.data());
    nn::Tensor f = model.features(batch);
    for (std::size_t i = 0; i < end - begin; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        out(begin + i, j) = f.data()[i * d + j];
      }
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> group_by_class(
    const LabeledData& train, std::size_t classes) {
  std::vector<std::vector<std::size_t>> groups(classes);
  for (std::size_t i = 0; i < train.size(); ++i) {
    groups[static_cast<std::size_t>(train.labels[i])].push_back(i);
  }
  return groups;
}

linalg::Matrix rows_subset(const linalg::Matrix& m,
                           const std::vector<std::size_t>& idx) {
  linalg::Matrix out(idx.size(), m.cols());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = m(idx[i], j);
  }
  return out;
}

}  // namespace

std::vector<double> ac_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes, util::Rng& rng) {
  const auto feats = features_of(model, train);
  const auto groups = group_by_class(train, classes);
  std::vector<double> scores(train.size(), 0.0);

  for (const auto& group : groups) {
    if (group.size() < 4) continue;
    const auto sub = rows_subset(feats, group);
    const auto km = linalg::kmeans(sub, 2, rng);
    const double sil = linalg::silhouette_two_clusters(sub, km.assignment);
    const std::size_t small_cluster =
        km.sizes[0] <= km.sizes[1] ? 0 : 1;
    const double small_frac =
        static_cast<double>(km.sizes[small_cluster]) /
        static_cast<double>(group.size());
    // AC's heuristic: a well-separated, small cluster is the poison.
    // Continuous score: silhouette weighted by small-cluster membership and
    // its abnormality (the paper's 35 % size threshold becomes a weight).
    const double abnormality = sil * std::max(0.0, 0.35 - small_frac) / 0.35;
    for (std::size_t i = 0; i < group.size(); ++i) {
      scores[group[i]] =
          km.assignment[i] == small_cluster ? abnormality : 0.0;
    }
  }
  return scores;
}

std::vector<double> ss_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes) {
  const auto feats = features_of(model, train);
  const auto groups = group_by_class(train, classes);
  std::vector<double> scores(train.size(), 0.0);
  for (const auto& group : groups) {
    if (group.size() < 3) continue;
    auto sub = rows_subset(feats, group);
    const auto mean = linalg::row_mean(sub);
    for (std::size_t i = 0; i < sub.rows(); ++i) {
      for (std::size_t j = 0; j < sub.cols(); ++j) sub(i, j) -= mean[j];
    }
    const auto top = linalg::leading_singular(sub);
    for (std::size_t i = 0; i < group.size(); ++i) {
      const double proj = linalg::dot(sub.row(i), top.direction);
      scores[group[i]] = proj * proj;
    }
  }
  return scores;
}

std::vector<double> spectre_sample_scores(nn::Model& model,
                                          const LabeledData& train,
                                          std::size_t classes) {
  const auto feats = features_of(model, train);
  const auto groups = group_by_class(train, classes);
  std::vector<double> scores(train.size(), 0.0);
  for (const auto& group : groups) {
    if (group.size() < 4) continue;
    auto sub = rows_subset(feats, group);
    const auto mean = linalg::row_mean(sub);
    for (std::size_t i = 0; i < sub.rows(); ++i) {
      for (std::size_t j = 0; j < sub.cols(); ++j) sub(i, j) -= mean[j];
    }
    // Diagonal whitening (robust covariance surrogate).
    std::vector<double> inv_std(sub.cols(), 1.0);
    for (std::size_t j = 0; j < sub.cols(); ++j) {
      std::vector<double> col(sub.rows());
      for (std::size_t i = 0; i < sub.rows(); ++i) col[i] = sub(i, j);
      inv_std[j] = 1.0 / (linalg::stddev(col) + 1e-9);
    }
    for (std::size_t i = 0; i < sub.rows(); ++i) {
      for (std::size_t j = 0; j < sub.cols(); ++j) sub(i, j) *= inv_std[j];
    }
    // QUE-style amplification: emphasize the top direction of the whitened
    // data; poisons concentrate there.
    const auto top = linalg::leading_singular(sub);
    constexpr double kAlpha = 4.0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto row = sub.row(i);
      const double proj = linalg::dot(row, top.direction);
      const double norm_sq = linalg::dot(row, row);
      scores[group[i]] = norm_sq + kAlpha * proj * proj;
    }
  }
  return scores;
}

std::vector<double> scan_sample_scores(nn::Model& model,
                                       const LabeledData& train,
                                       std::size_t classes) {
  const auto feats = features_of(model, train);
  const auto groups = group_by_class(train, classes);
  std::vector<double> scores(train.size(), 0.0);
  for (const auto& group : groups) {
    if (group.size() < 6) continue;
    auto sub = rows_subset(feats, group);
    const auto mean = linalg::row_mean(sub);
    for (std::size_t i = 0; i < sub.rows(); ++i) {
      for (std::size_t j = 0; j < sub.cols(); ++j) sub(i, j) -= mean[j];
    }
    const auto top = linalg::leading_singular(sub);
    // 1-D untangling along the top direction: fit two means by median split
    // and compare within-component variance against the single-mean model
    // (a likelihood-ratio surrogate for SCAn's hypothesis test).
    std::vector<double> proj(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      proj[i] = linalg::dot(sub.row(i), top.direction);
    }
    const double med = linalg::median(proj);
    std::vector<double> lo;
    std::vector<double> hi;
    for (double v : proj) {
      (v < med ? lo : hi).push_back(v);
    }
    const double var1 = linalg::variance(proj);
    const double var2 =
        (linalg::variance(lo) * static_cast<double>(lo.size()) +
         linalg::variance(hi) * static_cast<double>(hi.size())) /
        std::max<std::size_t>(1, proj.size());
    const double gain = var1 / (var2 + 1e-9);
    // Samples in the minority side of the split inherit the class gain.
    const double mean_lo = linalg::mean(lo);
    const double mean_hi = linalg::mean(hi);
    const bool lo_minor = lo.size() < hi.size();
    for (std::size_t i = 0; i < group.size(); ++i) {
      const bool in_lo = proj[i] < med;
      const double dist = std::abs(proj[i] - (in_lo ? mean_lo : mean_hi));
      scores[group[i]] =
          (in_lo == lo_minor ? gain : 0.0) + 0.01 * dist;
    }
  }
  return scores;
}

std::vector<double> ct_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes, util::Rng& rng) {
  // Proxy trained on the given (poisoned) set with label-randomized
  // confusion batches interleaved: semantic features get destroyed, the
  // trigger shortcut survives.
  (void)model;
  const nn::ImageShape shape{train.images.dim(1), train.images.dim(2),
                             train.images.dim(3)};
  util::Rng proxy_rng(rng.next_u64());
  auto proxy = nn::make_model(nn::ArchKind::kMlp, shape, classes, proxy_rng);

  // Confused training set: original samples plus an equal number of
  // label-randomized duplicates.
  LabeledData confused;
  std::vector<std::size_t> shape_v = train.images.shape();
  shape_v[0] = train.size() * 2;
  confused.images = nn::Tensor(shape_v);
  confused.labels.resize(train.size() * 2);
  const std::size_t sample = train.images.size() / train.size();
  for (std::size_t i = 0; i < train.size(); ++i) {
    std::copy(train.images.data() + i * sample,
              train.images.data() + (i + 1) * sample,
              confused.images.data() + i * sample);
    confused.labels[i] = train.labels[i];
    std::copy(train.images.data() + i * sample,
              train.images.data() + (i + 1) * sample,
              confused.images.data() + (train.size() + i) * sample);
    confused.labels[train.size() + i] =
        static_cast<int>(proxy_rng.uniform_index(classes));
  }
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.seed = proxy_rng.next_u64();
  nn::train_classifier(*proxy, confused, tc);

  // Post-confusion margin toward the sample's (possibly poisoned) label.
  nn::Tensor probs = proxy->predict_proba(train.images);
  const std::size_t k = classes;
  std::vector<double> scores(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    scores[i] = probs.data()[i * k + static_cast<std::size_t>(
                                         train.labels[i])];
  }
  return scores;
}

}  // namespace bprom::defenses
