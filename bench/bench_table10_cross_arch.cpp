// Table 10: suspicious MobileNetV2Mini, shadows ResNet18Mini.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, env.scale);
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kWaNet, attacks::AttackKind::kAdapBlend,
      attacks::AttackKind::kAdapPatch};
  util::TablePrinter table({"metric", "WaNet", "Adap-Blend", "Adap-Patch", "AVG"});
  std::vector<std::string> f1 = {"F1"};
  std::vector<std::string> au = {"AUROC"};
  double af = 0, aa = 0;
  for (auto a : kinds) {
    auto cell = bprom_cell(detector, env.cifar10, a,
                           nn::ArchKind::kMobileNetV2Mini, 450 + (int)a, env.scale);
    f1.push_back(util::cell(cell.f1));
    au.push_back(util::cell(cell.auroc));
    af += cell.f1;
    aa += cell.auroc;
  }
  f1.push_back(util::cell(af / 3));
  au.push_back(util::cell(aa / 3));
  table.add_row(f1);
  table.add_row(au);
  std::printf("== Table 10: cross-architecture detection ==\n");
  table.print();
  return 0;
}
