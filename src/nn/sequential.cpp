#include "nn/sequential.hpp"

namespace bprom::nn {

Tensor Sequential::forward(const Tensor& x, bool train) {
  return forward(Tensor(x), train);
}

Tensor Sequential::forward(Tensor&& x, bool train) {
  // Activations move down the chain so shape-only layers (Flatten) can
  // reshape the buffer in place instead of copying it.
  Tensor h = std::move(x);
  for (auto& layer : layers_) h = layer->forward(std::move(h), train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  return backward(Tensor(grad_out));
}

Tensor Sequential::backward(Tensor&& grad_out) {
  Tensor g = std::move(grad_out);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(std::move(g));
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (auto* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::vector<float>*> Sequential::state() {
  std::vector<std::vector<float>*> buffers;
  for (auto& layer : layers_) {
    for (auto* s : layer->state()) buffers.push_back(s);
  }
  return buffers;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->push(layer->clone());
  return copy;
}

}  // namespace bprom::nn
