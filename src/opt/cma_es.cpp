#include "opt/cma_es.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "linalg/eigen.hpp"

namespace bprom::opt {

CmaEs::CmaEs(CmaEsConfig config, std::vector<double> x0)
    : config_(config), rng_(config.seed), mean_(std::move(x0)),
      sigma_(config.sigma0) {
  const auto n = static_cast<double>(config_.dim);
  assert(mean_.size() == config_.dim && config_.dim > 0);

  lambda_ = config_.lambda > 0
                ? config_.lambda
                : 4 + static_cast<std::size_t>(std::floor(3.0 * std::log(n)));
  mu_ = lambda_ / 2;
  weights_.resize(mu_);
  double wsum = 0.0;
  for (std::size_t i = 0; i < mu_; ++i) {
    weights_[i] = std::log(static_cast<double>(lambda_) / 2.0 + 0.5) -
                  std::log(static_cast<double>(i + 1));
    wsum += weights_[i];
  }
  double w2sum = 0.0;
  for (auto& w : weights_) {
    w /= wsum;
    w2sum += w * w;
  }
  mu_eff_ = 1.0 / w2sum;

  cc_ = (4.0 + mu_eff_ / n) / (n + 4.0 + 2.0 * mu_eff_ / n);
  cs_ = (mu_eff_ + 2.0) / (n + mu_eff_ + 5.0);
  c1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff_);
  cmu_ = std::min(1.0 - c1_, 2.0 * (mu_eff_ - 2.0 + 1.0 / mu_eff_) /
                                 ((n + 2.0) * (n + 2.0) + mu_eff_));
  if (config_.mode == CovarianceMode::kSeparable) {
    // sep-CMA-ES learning-rate boost (Ros & Hansen 2008).
    const double boost = (n + 1.5) / 3.0;
    c1_ = std::min(1.0, c1_ * boost);
    cmu_ = std::min(1.0 - c1_, cmu_ * boost);
  }
  damps_ = 1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff_ - 1.0) / (n + 1.0)) -
                                         1.0) +
           cs_;
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

  pc_.assign(config_.dim, 0.0);
  ps_.assign(config_.dim, 0.0);

  if (config_.mode == CovarianceMode::kFull) {
    cov_ = linalg::Matrix::identity(config_.dim);
    eig_basis_ = linalg::Matrix::identity(config_.dim);
    eig_sqrt_.assign(config_.dim, 1.0);
  } else {
    diag_cov_.assign(config_.dim, 1.0);
  }
}

void CmaEs::update_eigensystem() {
  auto eig = linalg::symmetric_eigen(cov_);
  eig_basis_ = linalg::Matrix(config_.dim, config_.dim);
  for (std::size_t i = 0; i < config_.dim; ++i) {
    for (std::size_t k = 0; k < config_.dim; ++k) {
      eig_basis_(k, i) = eig.vectors[i][k];
    }
  }
  for (std::size_t i = 0; i < config_.dim; ++i) {
    eig_sqrt_[i] = std::sqrt(std::max(eig.values[i], 1e-20));
  }
}

std::vector<std::vector<double>> CmaEs::ask() {
  const std::size_t n = config_.dim;
  std::vector<std::vector<double>> candidates(lambda_,
                                              std::vector<double>(n));
  last_z_.assign(lambda_, std::vector<double>(n));
  for (std::size_t k = 0; k < lambda_; ++k) {
    for (auto& z : last_z_[k]) z = rng_.normal();
    if (config_.mode == CovarianceMode::kFull) {
      // x = m + sigma * B * D * z
      std::vector<double> bdz(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double dz = eig_sqrt_[i] * last_z_[k][i];
        if (dz == 0.0) continue;
        for (std::size_t r = 0; r < n; ++r) {
          bdz[r] += eig_basis_(r, i) * dz;
        }
      }
      for (std::size_t r = 0; r < n; ++r) {
        candidates[k][r] = mean_[r] + sigma_ * bdz[r];
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        candidates[k][r] =
            mean_[r] + sigma_ * std::sqrt(diag_cov_[r]) * last_z_[k][r];
      }
    }
  }
  return candidates;
}

void CmaEs::tell(const std::vector<std::vector<double>>& candidates,
                 const std::vector<double>& fitness) {
  assert(candidates.size() == lambda_ && fitness.size() == lambda_);
  const std::size_t n = config_.dim;
  evaluations_ += lambda_;
  ++generations_;

  std::vector<std::size_t> order(lambda_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fitness[a] < fitness[b];
  });
  if (fitness[order[0]] < best_f_) {
    best_f_ = fitness[order[0]];
    best_x_ = candidates[order[0]];
  }

  const std::vector<double> old_mean = mean_;
  std::vector<double> zw(n, 0.0);  // weighted z-mean
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    double zacc = 0.0;
    for (std::size_t i = 0; i < mu_; ++i) {
      acc += weights_[i] * candidates[order[i]][r];
      zacc += weights_[i] * last_z_[order[i]][r];
    }
    mean_[r] = acc;
    zw[r] = zacc;
  }

  // ps update: C^{-1/2} (m_new - m_old) / sigma equals B z_w in full mode
  // and z_w itself per-coordinate in separable mode.
  std::vector<double> csz(n, 0.0);
  if (config_.mode == CovarianceMode::kFull) {
    for (std::size_t r = 0; r < n; ++r) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += eig_basis_(r, i) * zw[i];
      csz[r] = acc;
    }
  } else {
    csz = zw;
  }
  const double cs_fac = std::sqrt(cs_ * (2.0 - cs_) * mu_eff_);
  double ps_norm_sq = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    ps_[r] = (1.0 - cs_) * ps_[r] + cs_fac * csz[r];
    ps_norm_sq += ps_[r] * ps_[r];
  }
  const double ps_norm = std::sqrt(ps_norm_sq);

  const double denom =
      std::sqrt(1.0 - std::pow(1.0 - cs_,
                               2.0 * static_cast<double>(generations_)));
  const bool hsig =
      ps_norm / std::max(denom, 1e-12) / chi_n_ <
      1.4 + 2.0 / (static_cast<double>(n) + 1.0);

  const double cc_fac = std::sqrt(cc_ * (2.0 - cc_) * mu_eff_);
  for (std::size_t r = 0; r < n; ++r) {
    const double y = (mean_[r] - old_mean[r]) / sigma_;
    pc_[r] = (1.0 - cc_) * pc_[r] + (hsig ? cc_fac * y : 0.0);
  }

  const double delta_hsig = (1.0 - (hsig ? 1.0 : 0.0)) * cc_ * (2.0 - cc_);
  if (config_.mode == CovarianceMode::kFull) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        double rank_mu = 0.0;
        for (std::size_t i = 0; i < mu_; ++i) {
          const double ya =
              (candidates[order[i]][a] - old_mean[a]) / sigma_;
          const double yb =
              (candidates[order[i]][b] - old_mean[b]) / sigma_;
          rank_mu += weights_[i] * ya * yb;
        }
        cov_(a, b) = (1.0 - c1_ - cmu_) * cov_(a, b) +
                     c1_ * (pc_[a] * pc_[b] + delta_hsig * cov_(a, b)) +
                     cmu_ * rank_mu;
      }
    }
    // Lazy eigensystem refresh.
    if (++eig_stale_ >=
        std::max<std::size_t>(1, n / (10 * lambda_) + 1)) {
      update_eigensystem();
      eig_stale_ = 0;
    }
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      double rank_mu = 0.0;
      for (std::size_t i = 0; i < mu_; ++i) {
        const double y = (candidates[order[i]][r] - old_mean[r]) / sigma_;
        rank_mu += weights_[i] * y * y;
      }
      diag_cov_[r] = (1.0 - c1_ - cmu_) * diag_cov_[r] +
                     c1_ * (pc_[r] * pc_[r] + delta_hsig * diag_cov_[r]) +
                     cmu_ * rank_mu;
      diag_cov_[r] = std::max(diag_cov_[r], 1e-20);
    }
  }

  sigma_ *= std::exp((cs_ / damps_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-12, 1e6);
}

CmaEsResult CmaEs::optimize(const Objective& objective) {
  // Ascending-order serial evaluation, so stateful objectives (e.g. query
  // counters) see the same call sequence as the pre-batched interface.
  return optimize(BatchObjective(
      [&](const std::vector<std::vector<double>>& candidates) {
        std::vector<double> fitness(candidates.size());
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          fitness[i] = objective(candidates[i]);
        }
        return fitness;
      }));
}

CmaEsResult CmaEs::optimize(const BatchObjective& batch_objective) {
  double prev_best = 1e300;
  std::size_t stall = 0;
  while (evaluations_ < config_.max_evaluations) {
    auto candidates = ask();
    std::vector<double> fitness = batch_objective(candidates);
    assert(fitness.size() == candidates.size());
    tell(candidates, fitness);
    if (config_.stall_generations > 0) {
      if (prev_best - best_f_ > config_.tol) {
        stall = 0;
        prev_best = best_f_;
      } else if (++stall >= config_.stall_generations) {
        break;
      }
    }
  }
  CmaEsResult result;
  result.best_x = best_x_.empty() ? mean_ : best_x_;
  result.best_f = best_f_;
  result.evaluations = evaluations_;
  result.generations = generations_;
  return result;
}

}  // namespace bprom::opt
