// Metric correctness against hand-computed values.
#include <gtest/gtest.h>
#include <cstdio>
#include "metrics/roc.hpp"
#include "metrics/scatter.hpp"
namespace bprom::metrics {
namespace {

TEST(Auroc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(auroc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(Auroc, PerfectInversion) {
  EXPECT_DOUBLE_EQ(auroc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(Auroc, Random) {
  EXPECT_DOUBLE_EQ(auroc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(Auroc, HandComputedPartial) {
  // scores pos {0.8, 0.4}, neg {0.6, 0.2}: pairs (0.8>0.6),(0.8>0.2),
  // (0.4<0.6),(0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(auroc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(Auroc, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(auroc({0.3, 0.7}, {1, 1}), 0.5);
}

TEST(Roc, CurveEndpoints) {
  auto curve = roc_curve({0.9, 0.1, 0.8, 0.3}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(BinaryReport, HandComputed) {
  auto r = binary_report({0.9, 0.6, 0.4, 0.2}, {1, 0, 1, 0}, 0.5);
  EXPECT_EQ(r.tp, 1u);
  EXPECT_EQ(r.fp, 1u);
  EXPECT_EQ(r.fn, 1u);
  EXPECT_EQ(r.tn, 1u);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
}

TEST(BestF1, FindsPerfectThreshold) {
  EXPECT_DOUBLE_EQ(best_f1({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(Scatter, AsciiContainsGlyphsAndLegend) {
  std::vector<ScatterSeries> series = {{"alpha", {0, 1}, {0, 1}},
                                       {"beta", {1, 0}, {0, 1}}};
  const std::string plot = ascii_scatter(series, 20, 10);
  EXPECT_NE(plot.find("alpha"), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find('x'), std::string::npos);
}

TEST(Scatter, CsvRoundTrip) {
  std::vector<ScatterSeries> series = {{"s", {1.5}, {2.5}}};
  const std::string path = "/tmp/bprom_test_scatter.csv";
  write_scatter_csv(path, series);
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);  // header
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_EQ(std::string(buf).rfind("s,1.5,2.5", 0), 0u);
  std::fclose(f);
}

}  // namespace
}  // namespace bprom::metrics
