// Table 11: adaptive attack via very low poison rates (BadNets, cifar10-like).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10, arch, 7, env.scale);
  util::TablePrinter table({"poison rate", "AUROC", "ASR"});
  for (double r : {0.002, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);
    atk.poison_rate = r;
    auto pop = core::build_population(env.cifar10, atk, arch,
                                      env.scale.population_per_side,
                                      500 + (int)(1000 * r), env.scale);
    double asr = 0; int nb = 0;
    for (auto& m : pop) if (m.backdoored) { asr += m.asr; ++nb; }
    auto scores = core::score_population(detector, pop);
    table.add_row({util::cell(r, 3), util::cell(scores.auroc()), util::cell(asr / nb)});
  }
  std::printf("== Table 11: low-poison-rate adaptive attack ==\n");
  table.print();
  return 0;
}
