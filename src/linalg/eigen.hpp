// Symmetric eigendecomposition (cyclic Jacobi) and leading singular vector
// (power iteration on A^T A).  Used by CMA-ES (covariance sampling), PCA,
// and the spectral defenses (SS, SPECTRE).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace bprom::linalg {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` (stored as rows here: vectors[i]) is the
  /// eigenvector for values[i], unit norm.
  std::vector<std::vector<double>> vectors;
};

/// Cyclic Jacobi for a symmetric matrix.  O(n^3) per sweep, fine for the
/// n <= ~600 matrices we decompose.
EigenDecomposition symmetric_eigen(const Matrix& sym, int max_sweeps = 50,
                                   double tol = 1e-12);

/// Leading right-singular vector and singular value of a (rows x cols)
/// data matrix via power iteration on A^T A.
struct LeadingSingular {
  std::vector<double> direction;  // unit vector, size = cols
  double value = 0.0;             // sigma_1
};
LeadingSingular leading_singular(const Matrix& a, int iters = 100);

}  // namespace bprom::linalg
