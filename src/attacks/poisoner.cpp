#include "attacks/poisoner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bprom::attacks {
namespace {

nn::ImageShape shape_of(const LabeledData& data) {
  return nn::ImageShape{data.images.dim(1), data.images.dim(2),
                        data.images.dim(3)};
}

void poison_into(LabeledData& data, const AttackConfig& config,
                 util::Rng& rng, PoisonStats& stats,
                 std::vector<char>& poison_mask,
                 std::vector<char>& cover_mask) {
  const TriggerEngine engine(config, shape_of(data));
  const std::size_t n = data.size();
  stats.total = n;

  std::vector<std::size_t> candidates;
  if (is_clean_label(config.kind)) {
    // Only target-class samples get poisoned; labels never change.
    for (std::size_t i = 0; i < n; ++i) {
      if (data.labels[i] == config.target_class) candidates.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) candidates.push_back(i);
  }

  const auto want_poison = static_cast<std::size_t>(std::round(
      config.poison_rate * static_cast<double>(candidates.size())));
  const auto want_cover = static_cast<std::size_t>(
      std::round(config.cover_rate * static_cast<double>(n)));

  auto order = rng.permutation(candidates.size());
  const std::size_t n_poison = std::min(want_poison, candidates.size());
  for (std::size_t i = 0; i < n_poison; ++i) {
    const std::size_t idx = candidates[order[i]];
    engine.apply(data.images, idx);
    if (!is_clean_label(config.kind)) {
      data.labels[idx] = config.target_class;
    }
    poison_mask[idx] = 1;
    ++stats.poisoned;
  }

  // Cover samples: stamped but keep their label (adaptive regularization).
  std::size_t covered = 0;
  for (std::size_t i = n_poison;
       i < candidates.size() && covered < want_cover; ++i) {
    const std::size_t idx = candidates[order[i]];
    if (data.labels[idx] == config.target_class) continue;
    engine.apply(data.images, idx);
    cover_mask[idx] = 1;
    ++covered;
  }
  stats.covered = covered;
}

}  // namespace

PoisonResult poison_dataset(const LabeledData& clean,
                            const AttackConfig& config, util::Rng& rng) {
  PoisonResult result;
  // Deep copy, then stamp in place.
  std::vector<std::size_t> all(clean.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  result.data = data::subset(clean, all);
  result.poison_mask.assign(clean.size(), 0);
  result.cover_mask.assign(clean.size(), 0);
  poison_into(result.data, config, rng, result.stats, result.poison_mask,
              result.cover_mask);
  return result;
}

PoisonResult poison_dataset_multi(const LabeledData& clean,
                                  const std::vector<AttackConfig>& configs,
                                  util::Rng& rng) {
  PoisonResult result;
  std::vector<std::size_t> all(clean.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  result.data = data::subset(clean, all);
  result.poison_mask.assign(clean.size(), 0);
  result.cover_mask.assign(clean.size(), 0);
  for (const auto& config : configs) {
    PoisonStats stats;
    poison_into(result.data, config, rng, stats, result.poison_mask,
                result.cover_mask);
    result.stats.poisoned += stats.poisoned;
    result.stats.covered += stats.covered;
    result.stats.total = stats.total;
  }
  return result;
}

double attack_success_rate(nn::Model& model, const LabeledData& clean_test,
                           const AttackConfig& config) {
  const TriggerEngine engine(config, shape_of(clean_test));
  // Collect non-target samples.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < clean_test.size(); ++i) {
    if (clean_test.labels[i] != config.target_class) idx.push_back(i);
  }
  if (idx.empty()) return 0.0;
  LabeledData stamped = data::subset(clean_test, idx);
  engine.apply_all(stamped.images);

  std::size_t hits = 0;
  constexpr std::size_t kBatch = 128;
  const std::size_t sample = stamped.images.size() / stamped.size();
  for (std::size_t begin = 0; begin < stamped.size(); begin += kBatch) {
    const std::size_t end = std::min(begin + kBatch, stamped.size());
    std::vector<std::size_t> shape = stamped.images.shape();
    shape[0] = end - begin;
    nn::Tensor batch(shape);
    std::copy(stamped.images.data() + begin * sample,
              stamped.images.data() + end * sample, batch.data());
    for (int pred : model.predict(batch)) {
      if (pred == config.target_class) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(stamped.size());
}

}  // namespace bprom::attacks
