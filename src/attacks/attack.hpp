// Backdoor attack taxonomy and configuration.
//
// All attacks implement the paper's trigger model
//   x' = (1 - m) . x + m . ((1 - alpha) t + alpha x),   y' = y_t
// or its published sample-specific / warping / clean-label variant.
// Poison rate and cover rate follow Table 13 of the paper (cover samples
// carry the trigger but keep their original label, which is what makes the
// adaptive attacks "latent-separation-resistant").
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.hpp"

namespace bprom::attacks {

enum class AttackKind {
  kBadNets,    // corner patch, dirty label (Gu et al. 2017)
  kBlend,      // full-image blended noise (Chen et al. 2017)
  kTrojan,     // high-contrast reverse-engineered patch (Liu et al. 2018)
  kWaNet,      // imperceptible elastic warp (Nguyen & Tran 2021)
  kDynamic,    // sample-specific patch position/pattern (Nguyen & Tran 2020)
  kAdapBlend,  // blended + cover samples (Qi et al. 2023)
  kAdapPatch,  // patches + cover samples (Qi et al. 2023)
  kBpp,        // quantization + dithering (Wang et al. 2022)
  kSig,        // sinusoidal stripes, clean label (Barni et al. 2019)
  kLc,         // label-consistent perturbation, clean label (Turner 2019)
  kRefool,     // reflection ghosting (Liu et al. 2020)
  kPoisonInk,  // edge-following ink, feature-space (Zhang et al. 2022)
};

[[nodiscard]] std::string attack_name(AttackKind kind);

/// Clean-label attacks only poison samples already belonging to the target
/// class and never change labels.
[[nodiscard]] bool is_clean_label(AttackKind kind);

/// Sample-specific attacks vary the trigger per input.
[[nodiscard]] bool is_sample_specific(AttackKind kind);

struct AttackConfig {
  AttackKind kind = AttackKind::kBadNets;
  int target_class = 0;
  /// Fraction of the training set stamped + relabeled.
  double poison_rate = 0.02;
  /// Fraction stamped but keeping the true label (adaptive attacks).
  double cover_rate = 0.0;
  /// Patch side in pixels (patch-type attacks); full-image attacks ignore.
  std::size_t trigger_size = 4;
  /// Blend intensity alpha (the paper's trigger-model alpha).
  double alpha = 0.2;
  /// Fixes the trigger pattern itself.
  std::uint64_t seed = 7;

  /// Paper-style defaults per attack kind (Table 13 rates are scaled to the
  /// synthetic substrate's training-set sizes; see DESIGN.md).
  static AttackConfig defaults(AttackKind kind, int target_class = 0,
                               std::uint64_t seed = 7);
};

}  // namespace bprom::attacks
