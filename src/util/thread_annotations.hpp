// Clang Thread Safety Analysis vocabulary + capability-annotated lock
// wrappers — the compile-time half of the repo's concurrency contract.
//
// Every mutex-protected structure in the codebase declares WHICH lock
// guards WHAT data (`BPROM_GUARDED_BY`) and which functions expect a lock
// to be held on entry (`BPROM_REQUIRES`).  Under clang with
// `-DBPROM_THREAD_SAFETY=ON` (CMake adds `-Wthread-safety -Werror`) the
// compiler then *proves* every access honors the declaration — a missing
// lock is a build break, not a TSan sample that happened to hit the right
// schedule.  Under gcc (which has no such analysis) the macros expand to
// nothing and the wrappers degrade to their std counterparts, so the
// annotated tree builds identically everywhere.
//
// Usage rules (enforced by the thread-safety CI leg):
//   - Shared mutable state guarded by a mutex is declared
//     `T member_ BPROM_GUARDED_BY(mu_);`.
//   - Private helpers that assume the lock is already held are declared
//     `void helper() BPROM_REQUIRES(mu_);` and only called under it.
//   - Locks are `util::Mutex` (not raw std::mutex — std::mutex carries no
//     capability attribute on libstdc++) and lock scopes are
//     `util::MutexLock` (not std::lock_guard, same reason).
//   - Code the analysis cannot model (lock ownership handed across
//     threads) gets BPROM_NO_THREAD_SAFETY_ANALYSIS with a comment saying
//     why — there are currently zero such sites; keep it that way.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define BPROM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BPROM_THREAD_ANNOTATION(x)  // no-op: gcc/MSVC have no analysis
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define BPROM_CAPABILITY(x) BPROM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (std::lock_guard-shaped types).
#define BPROM_SCOPED_CAPABILITY BPROM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define BPROM_GUARDED_BY(x) BPROM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define BPROM_PT_GUARDED_BY(x) BPROM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the listed capabilities held
/// (and does not release them).
#define BPROM_REQUIRES(...) \
  BPROM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BPROM_REQUIRES_SHARED(...) \
  BPROM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and holds them on return.
#define BPROM_ACQUIRE(...) \
  BPROM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BPROM_ACQUIRE_SHARED(...) \
  BPROM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (empty list on a scoped
/// object's destructor releases whatever the object holds).
#define BPROM_RELEASE(...) \
  BPROM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BPROM_RELEASE_SHARED(...) \
  BPROM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define BPROM_TRY_ACQUIRE(b, ...) \
  BPROM_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention: it will acquire them itself).
#define BPROM_EXCLUDES(...) BPROM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock detection between capabilities).
#define BPROM_ACQUIRED_BEFORE(...) \
  BPROM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BPROM_ACQUIRED_AFTER(...) \
  BPROM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define BPROM_RETURN_CAPABILITY(x) BPROM_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define BPROM_ASSERT_CAPABILITY(x) \
  BPROM_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: the function's locking is correct but not expressible.
/// Every use must carry a comment explaining why.
#define BPROM_NO_THREAD_SAFETY_ANALYSIS \
  BPROM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bprom::util {

/// std::mutex with a capability attribute, so the analysis can track it.
/// (libstdc++'s std::mutex is unannotated; libc++ only annotates behind a
/// config macro — a thin wrapper is portable across both.)
class BPROM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BPROM_ACQUIRE() { mu_.lock(); }
  void unlock() BPROM_RELEASE() { mu_.unlock(); }
  bool try_lock() BPROM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::lock_guard over util::Mutex, visible to the analysis as a scoped
/// capability: construction acquires, destruction releases, and every
/// guarded access inside the scope type-checks.
class BPROM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BPROM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BPROM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex.  wait() is called with the
/// capability held and returns with it held; the transient release inside
/// is invisible to the analysis (the standard modeling of condvars — the
/// caller's invariants must hold at every wait() anyway, because wakeups
/// are spurious by contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) BPROM_REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();  // the capability stays with the caller's scope
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bprom::util
