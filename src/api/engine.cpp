#include "api/engine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "serve/audit_service.hpp"
#include "util/failpoint.hpp"
#include "util/stopwatch.hpp"

namespace bprom::api {

namespace {

/// Names become file stems; keep them flat and unambiguous.
Status validate_name(const std::string& name) {
  if (name.empty()) return Status::InvalidRequest("detector name is empty");
  if (name.find('@') != std::string::npos) {
    return Status::InvalidRequest("detector name '" + name +
                                  "' must not contain '@' (reserved for "
                                  "version suffixes)");
  }
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos) {
    return Status::InvalidRequest("detector name '" + name +
                                  "' must not contain path separators");
  }
  return Status::Ok();
}

}  // namespace

Status status_from(const io::IoError& error) {
  switch (error.kind()) {
    case io::ErrorKind::kNotFound:
      return Status::NotFound(error.what());
    case io::ErrorKind::kVersionMismatch:
      return Status::VersionMismatch(error.what());
    case io::ErrorKind::kPrecondition:
      return Status::FailedPrecondition(error.what());
    case io::ErrorKind::kIo:
      return Status::Internal(error.what());
    case io::ErrorKind::kCorrupt:
      break;
  }
  return Status::CorruptArtifact(error.what());
}

AuditEngine::AuditEngine(EngineConfig config)
    : config_(std::move(config)),
      async_ring_(std::max<std::size_t>(2, config_.async_queue_capacity)) {
  try {
    store_.emplace(config_.store_dir);
    if (config_.recover_on_start) (void)store_->recover();
  } catch (const io::IoError& e) {
    init_status_ = status_from(e);
  } catch (const std::exception& e) {
    init_status_ = Status::Internal(e.what());
  }
  // Serving workers start even when the store failed to open: async batches
  // must still come back (with init_status_ per response) instead of
  // hanging their futures.
  const std::size_t workers = std::max<std::size_t>(1, config_.async_workers);
  serve_workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    serve_workers_.emplace_back([this] { serve_loop(); });
  }
}

AuditEngine::~AuditEngine() {
  // Drain-on-destruct: closing the ring stops new submissions; workers pop
  // whatever is still queued (pop_wait only reports closed once the ring is
  // empty), fulfill every promise, and exit.  After the joins no thread can
  // touch this engine again.
  async_ring_.close();
  for (auto& worker : serve_workers_) worker.join();
}

void AuditEngine::serve_loop() {
  AsyncJob job;
  while (async_ring_.pop_wait(job) == util::MpmcRing<AsyncJob>::Pop::kItem) {
    profiler_.record(
        util::ProfileStage::kQueueWait,
        static_cast<std::uint64_t>(job.submitted.seconds() * 1e9));
    profiler_.record_value(util::ProfileStage::kQueueDepth,
                           async_ring_.size());
    std::vector<AuditResponse> responses;
    bool completed = true;
    try {
      // Scoped so the sample is recorded BEFORE the completion wakes the
      // batch's owner — a stats() right after future.get() (or inside the
      // callback) must already see this batch.
      util::ScopedProfile batch_timer(&profiler_, util::ProfileStage::kBatch);
      responses = audit_from(job.batch, job.submitted);
    } catch (...) {
      // audit_from reports per-request failures in-band; this catches the
      // truly exceptional (bad_alloc in the response vector).  The
      // completion must still wake the batch's owner.
      completed = false;
      if (job.callback) {
        // Callback completions have no exception channel: synthesize
        // per-request kInternal responses so the callback still fires once.
        std::string what = "batch failed exceptionally";
        try {
          throw;
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        responses.resize(job.batch.size());
        for (std::size_t i = 0; i < job.batch.size(); ++i) {
          responses[i].model_id = job.batch[i].model_id;
          responses[i].status = Status::Internal(what);
        }
        completed = true;
      } else {
        job.done.set_exception(std::current_exception());
      }
    }
    if (completed) {
      if (job.callback) {
        job.callback(std::move(responses));
      } else {
        job.done.set_value(std::move(responses));
      }
    }
    job = AsyncJob{};  // release request references before the next wait
  }
}

std::uint32_t AuditEngine::latest_floor_locked(const std::string& base) const {
  auto it = latest_.find(base);
  return it != latest_.end() ? it->second : 0;
}

std::uint32_t AuditEngine::latest_on_disk(const std::string& base) const {
  std::uint32_t latest = 0;
  for (const auto& stem : store_->list()) {
    if (stem == base) {
      // Legacy unversioned container: counts as version 1.
      latest = std::max(latest, 1U);
      continue;
    }
    std::string b;
    std::uint32_t v = 0;
    if (parse_versioned_name(stem, &b, &v) && b == base) {
      latest = std::max(latest, v);
    }
  }
  return latest;
}

Result<AuditEngine::Resolved> AuditEngine::resolve(
    const std::string& reference) {
  if (!init_status_.ok()) return init_status_;
  util::ScopedProfile timer(&profiler_, util::ProfileStage::kResolve);
  std::string base = reference;
  std::uint32_t version = 0;
  const bool pinned = parse_versioned_name(reference, &base, &version);
  // Validate the base either way: a pinned "../evil@v1" must not sneak a
  // path past the rules a bare "../evil" is rejected by.
  if (Status s = validate_name(base); !s.ok()) return s;
  if (!pinned) {
    // Newest version wins.  The in-memory rollover pointer is only a floor
    // (this engine's own publishes); the disk scan additionally picks up
    // versions published over the same directory by other processes.
    {
      util::MutexLock lock(state_mu_);
      version = latest_floor_locked(base);
    }
    version = std::max(version, latest_on_disk(base));
    if (version == 0) {
      return Status::NotFound("no detector published under '" + base + "'");
    }
  }

  std::string stem = versioned_name(base, version);
  if (version == 1 && !store_->contains(stem) && store_->contains(base)) {
    stem = base;  // legacy unversioned container standing in for @v1
  }
  Resolved resolved;
  try {
    // Loaded detectors inspect on the engine's executor, like everything
    // else this engine runs ("fits and audits share one executor").
    resolved.handle = store_->get(stem, config_.pool);
  } catch (const io::IoError& e) {
    return status_from(e);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
  if (!pinned) {
    // Remember the newest version seen by bare lookups.  Pinned resolves
    // must not touch the pointer: serving an old "name@v1" is routine and
    // must never drag later bare lookups backwards.
    util::MutexLock lock(state_mu_);
    auto& slot = latest_[base];
    slot = std::max(slot, version);
  }
  resolved.info.name = base;
  resolved.info.version = version;
  resolved.info.source_classes = resolved.handle->source_classes();
  resolved.info.query_samples = resolved.handle->config().query_samples;
  resolved.info.path = store_->path_for(stem);
  return resolved;
}

Result<DetectorInfo> AuditEngine::publish(const std::string& name,
                                          core::BpromDetector detector) {
  if (!init_status_.ok()) return init_status_;
  if (Status s = validate_name(name); !s.ok()) return s;
  if (!detector.fitted()) {
    return Status::FailedPrecondition("cannot publish an unfitted detector");
  }

  util::MutexLock publish_lock(publish_mu_);
  // Cross-process exclusivity for the scan-and-write below: the O_EXCL
  // lock file makes "find the latest version, mint the next one, write it"
  // atomic against every other engine publishing into this directory, so
  // two engines can no longer race the scan and clobber each other's
  // rollover pointer.  (publish_mu_ already serializes engines sharing
  // this object; the StoreLock extends that to engines sharing only the
  // directory.)
  serve::StoreLock store_lock(store_->directory());
  std::uint32_t latest = latest_on_disk(name);
  {
    util::MutexLock lock(state_mu_);
    latest = std::max(latest, latest_floor_locked(name));
  }
  // Never overwrite an existing version file: a published name@vN is
  // immutable (in-flight audits and pinned requests rely on it).  Under
  // the StoreLock the contains() walk is authoritative — no concurrent
  // writer can mint a version between the walk and the put.
  std::uint32_t next = latest + 1;
  while (store_->contains(versioned_name(name, next))) ++next;
  const std::string stem = versioned_name(name, next);

  DetectorInfo info;
  info.name = name;
  info.version = next;
  info.source_classes = detector.source_classes();
  info.query_samples = detector.config().query_samples;
  info.path = store_->path_for(stem);
  // Whatever pool the caller fitted with (possibly a borrowed one about to
  // die), the published handle inspects on this engine's executor.
  detector.set_pool(config_.pool);
  try {
    store_->put(stem, std::move(detector));
    // Crash-matrix anchor: the artifact is durable on disk but the
    // generation bump and rollover have not happened — recovery must
    // surface name@vN while leaving other engines' change signal intact.
    if (auto hit = BPROM_FAILPOINT("store.publish.crash")) {
      (void)hit;
      return Status::Internal("injected crash between put and rollover");
    }
    // Still under the StoreLock: the generation counter is the cheap
    // cross-process "someone published" signal other engines poll.
    store_->bump_generation();
  } catch (const io::IoError& e) {
    return status_from(e);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
  {
    // The rollover itself: bare-name lookups see `next` from here on, while
    // handles resolved earlier keep their shared_ptr to the old version.
    util::MutexLock lock(state_mu_);
    latest_[name] = next;
  }
  if (latest > 0) {
    // relaxed: statistics tally — stats() reads a snapshot, not a
    // transaction, and no other memory is published through the counter.
    rollovers_.fetch_add(1, std::memory_order_relaxed);
    // Release the superseded version's cache slot: long-lived engines refit
    // routinely and only the newest version serves bare names, so keeping
    // every old detector resident would grow memory without bound.  Audits
    // already in flight hold their own shared_ptr; a later pinned request
    // for the old version reloads it from disk on demand.
    store_->evict(versioned_name(name, latest));
    if (latest == 1) store_->evict(name);  // legacy unversioned alias
  }
  return info;
}

Result<serve::RecoveryReport> AuditEngine::recover() {
  if (!init_status_.ok()) return init_status_;
  // Same order as publish: publish_mu_ then (inside recover) the StoreLock,
  // so recovery serializes against every publisher, in-process or not.
  util::MutexLock publish_lock(publish_mu_);
  try {
    return store_->recover();
  } catch (const io::IoError& e) {
    return status_from(e);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

Result<DetectorInfo> AuditEngine::fit(const FitRequest& request) {
  if (!init_status_.ok()) return init_status_;
  if (Status s = validate_name(request.name); !s.ok()) return s;
  if (request.reserved_clean == nullptr || request.target_train == nullptr ||
      request.target_test == nullptr) {
    return Status::InvalidRequest("fit request is missing a dataset");
  }
  if (request.reserved_clean->size() == 0 ||
      request.target_train->size() == 0 || request.target_test->size() == 0) {
    return Status::InvalidRequest("fit request has an empty dataset");
  }
  if (request.source_classes == 0) {
    return Status::InvalidRequest("source_classes must be positive");
  }
  // fit() checks these with asserts that Release builds compile out; the
  // façade fails them as typed errors instead.  A negative label would
  // wrap the size_t cast below (and later index out of bounds inside
  // prompt learning), so it is rejected outright.
  std::size_t target_classes = 0;
  for (int label : request.target_train->labels) {
    if (label < 0) {
      return Status::InvalidRequest("target_train labels must be >= 0");
    }
    target_classes = std::max(target_classes,
                              static_cast<std::size_t>(label) + 1);
  }
  for (int label : request.target_test->labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= target_classes) {
      return Status::InvalidRequest(
          "target_test labels must lie in the target_train class range");
    }
  }
  if (target_classes > request.source_classes) {
    return Status::InvalidRequest(
        "target dataset has " + std::to_string(target_classes) +
        " classes but the suspicious task only has " +
        std::to_string(request.source_classes) +
        " (the output mapping needs K_T <= K_S)");
  }

  core::BpromConfig config = request.config;
  config.pool = config_.pool;  // fits and audits share one executor
  core::BpromDetector detector(config);
  try {
    detector.fit(*request.reserved_clean, request.source_classes,
                 *request.target_train, *request.target_test);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("fit failed: ") + e.what());
  }
  return publish(request.name, std::move(detector));
}

Result<DetectorInfo> AuditEngine::info(const std::string& name) {
  auto resolved = resolve(name);
  if (!resolved.ok()) return resolved.status();
  return std::move(resolved).value().info;
}

Result<std::vector<DetectorInfo>> AuditEngine::list() const {
  if (!init_status_.ok()) return init_status_;
  std::vector<DetectorInfo> infos;
  for (const auto& stem : store_->list()) {
    DetectorInfo info;
    info.version = 1;  // legacy unversioned containers stand in for @v1
    if (!parse_versioned_name(stem, &info.name, &info.version)) {
      info.name = stem;
    }
    info.path = store_->path_for(stem);
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const DetectorInfo& a, const DetectorInfo& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return infos;
}

Result<std::shared_ptr<const core::BpromDetector>> AuditEngine::detector(
    const std::string& name) {
  auto resolved = resolve(name);
  if (!resolved.ok()) return resolved.status();
  return std::move(resolved).value().handle;
}

std::vector<AuditResponse> AuditEngine::audit(
    const std::vector<AuditRequest>& batch) {
  return audit_from(batch, util::Stopwatch());
}

std::vector<AuditResponse> AuditEngine::audit_from(
    const std::vector<AuditRequest>& batch, util::Stopwatch batch_clock) {
  const std::size_t n = batch.size();
  std::vector<AuditResponse> responses(n);
  if (!init_status_.ok()) {
    // Same contract as every other failure path: echo model_id so callers
    // can attribute the failure, and count the requests.
    for (std::size_t i = 0; i < n; ++i) {
      responses[i].model_id = batch[i].model_id;
      responses[i].status = init_status_;
    }
    // relaxed: statistics tally (see EngineStats — snapshot, not
    // transaction); nothing is ordered through these counters.
    requests_.fetch_add(n, std::memory_order_relaxed);
    return responses;
  }

  // Resolve each distinct detector reference once, before any work starts:
  // the whole batch audits one consistent store snapshot, and a publish()
  // that lands mid-batch only affects later batches.
  std::map<std::string, Result<Resolved>> resolved;
  for (const auto& request : batch) {
    if (resolved.find(request.detector) == resolved.end()) {
      resolved.emplace(request.detector, resolve(request.detector));
    }
  }

  // The shared serve-layer derivation: the salt — and therefore the
  // verdict — is a function of (engine seed, batch index) only, so batches
  // are bit-identical across thread counts AND across the two surfaces.
  const std::vector<std::uint64_t> salts =
      serve::split_request_salts(config_.seed, n);

  util::parallel_for(n, [&](std::size_t i) {
    const AuditRequest& request = batch[i];
    AuditResponse& response = responses[i];
    response.model_id = request.model_id;
    util::Stopwatch watch;
    util::ScopedProfile request_timer(&profiler_,
                                      util::ProfileStage::kRequest);
    // relaxed: statistics tally, same contract as every counter below.
    requests_.fetch_add(1, std::memory_order_relaxed);

    const Result<Resolved>& target = resolved.at(request.detector);
    if (!target.ok()) {
      response.status = target.status();
      response.seconds = watch.seconds();
      return;
    }
    response.detector_version = target.value().info.versioned_name();
    const core::BpromDetector& detector = *target.value().handle;

    if (request.query_budget == 0) {
      response.status = Status::BudgetExhausted(
          "query budget is zero; inspection needs at least one query");
    } else if (Status s = detector.inspectable(request.model); !s.ok()) {
      response.status = s;
    } else if (request.deadline_ms > 0 &&
               batch_clock.seconds() * 1e3 >
                   static_cast<double>(request.deadline_ms)) {
      // relaxed: statistics tally.
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      response.status = Status::DeadlineExceeded(
          "deadline of " + std::to_string(request.deadline_ms) +
          "ms elapsed before the inspection could start");
    } else {
      // The deadline rides into inspect() itself: the detector checks it
      // between prompt-ensemble members, so a mid-flight overrun stops at
      // the next member boundary instead of running the ensemble to
      // completion.  The clock is the batch clock — queue wait included.
      const core::InspectDeadline deadline{batch_clock, request.deadline_ms};
      const core::InspectDeadline* enforce =
          request.deadline_ms > 0 ? &deadline : nullptr;
      try {
        core::Verdict verdict;
        {
          util::ScopedProfile inspect_timer(&profiler_,
                                            util::ProfileStage::kInspect);
          verdict = detector.inspect(*request.model, salts[i], enforce);
        }
        // relaxed: statistics tally — exactness comes from every path
        // adding its spend once, not from ordering.
        queries_.fetch_add(verdict.queries, std::memory_order_relaxed);
        if (verdict.deadline_exceeded) {
          // relaxed: statistics tally.
          deadline_misses_.fetch_add(1, std::memory_order_relaxed);
          // Report the exact spend of the aborted inspection so callers
          // can account for it against their budgets.
          response.verdict.queries = verdict.queries;
          response.status = Status::DeadlineExceeded(
              "deadline of " + std::to_string(request.deadline_ms) +
              "ms elapsed mid-inspection after " +
              std::to_string(verdict.queries) + " queries");
        } else if (verdict.budget_exhausted) {
          response.verdict.queries = verdict.queries;
          response.status = Status::BudgetExhausted(
              "prompt-learning evaluation budget is too small to complete a "
              "single optimizer step");
        } else if (verdict.queries > request.query_budget) {
          response.verdict.queries = verdict.queries;
          response.status = Status::BudgetExhausted(
              "inspection spent " + std::to_string(verdict.queries) +
              " queries against a budget of " +
              std::to_string(request.query_budget));
        } else {
          response.verdict = verdict;
          // relaxed: statistics tally.
          verdicts_.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception& e) {
        response.status = Status::Internal(e.what());
      }
    }
    response.seconds = watch.seconds();
  }, pool());
  return responses;
}

std::future<std::vector<AuditResponse>> AuditEngine::audit_async(
    std::vector<AuditRequest> batch) {
  AsyncJob job;
  // Deadlines are measured from submission, so the clock starts here
  // (AsyncJob's Stopwatch starts on construction): time a batch spends
  // queued in the ring counts against it.
  job.batch = std::move(batch);
  auto future = job.done.get_future();
  if (!async_ring_.push_wait(std::move(job))) {
    // The ring only refuses when it is closed — the engine is being torn
    // down under us.  Run the batch inline so the future is still
    // fulfilled; push_wait left `job` untouched on failure.
    job.done.set_value(audit_from(job.batch, job.submitted));
  }
  return future;
}

void AuditEngine::audit_async(std::vector<AuditRequest> batch,
                              AuditCallback on_done) {
  AsyncJob job;
  job.batch = std::move(batch);
  job.callback = std::move(on_done);
  if (!async_ring_.push_wait(std::move(job))) {
    // Ring closed (engine tearing down): complete inline so the callback
    // still fires exactly once; push_wait left `job` untouched on failure.
    job.callback(audit_from(job.batch, job.submitted));
  }
}

EngineStats AuditEngine::stats() const {
  EngineStats out;
  // relaxed: a snapshot, not a transaction (documented on EngineStats) —
  // counters may be mid-update while we read; each load is atomic.
  out.requests = requests_.load(std::memory_order_relaxed);
  out.verdicts = verdicts_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);      // relaxed: ^
  out.rollovers = rollovers_.load(std::memory_order_relaxed);  // relaxed: ^
  out.deadline_misses =
      deadline_misses_.load(std::memory_order_relaxed);  // relaxed: see above
  if (store_.has_value()) out.store_generation = store_->generation();
  out.profile = profiler_.snapshot();
  return out;
}

}  // namespace bprom::api
