// bprom_lint fixture — NOT part of the build.  See raw_thread.cpp for the
// expect-marker convention.
#include <map>
#include <string>
#include <unordered_map>  // expect(unordered-container)
#include <unordered_set>  // expect(unordered-container)

int bad() {
  std::unordered_map<std::string, int> counts;  // expect(unordered-container)
  int total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}

int clean() {
  std::map<std::string, int> counts;  // ordered — reproducible iteration
  int total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}
