// bprom_lint fixture — NOT part of the build.  Tagged `hot-path` by the
// test's rule set, so allocation and container growth must be flagged.
// See raw_thread.cpp for the expect-marker convention.
#include <cstdlib>
#include <memory>
#include <vector>

void bad(std::vector<float>& panel) {
  float* raw = new float[64];                    // expect(hot-path-alloc)
  void* blob = malloc(256);                      // expect(hot-path-alloc)
  auto owned = std::make_unique<int>(1);         // expect(hot-path-alloc)
  auto shared = std::make_shared<int>(2);        // expect(hot-path-alloc)
  panel.push_back(1.0F);                         // expect(hot-path-alloc)
  panel.resize(128);                             // expect(hot-path-alloc)
  (&panel)->reserve(256);                        // expect(hot-path-alloc)
  free(blob);
  delete[] raw;
  (void)owned;
  (void)shared;
}

void tolerated(std::vector<float>& panel) {
  // One-time warm-up growth is the sanctioned arena pattern.
  // bprom-lint: allow(hot-path-alloc)
  panel.resize(128);
}

void clean(std::vector<float>& panel) {
  // Reads and overwrites never allocate; `newly` embeds "new" but is an
  // identifier, and resize without a member call syntax is not growth.
  int newly = 0;
  (void)newly;
  panel[0] = 1.0F;
}
