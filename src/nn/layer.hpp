// Layer abstraction for the from-scratch training framework.
//
// The framework is deliberately layer-graph based (not tape autograd):
// each layer caches what it needs during forward and produces the input
// gradient during backward.  Models are small and trained on CPU, so
// clarity and testability win over generality.
//
// Threading: a Layer instance is NOT re-entrant (it caches forward state);
// each model must be driven by one thread at a time.  Parallelism across
// models comes from per-thread clone()s; within one forward call, large
// batch loops additionally shard over the pool with disjoint outputs (see
// layers.cpp), which preserves the one-driving-thread rule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace bprom::nn {

using tensor::Tensor;

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  void zero_grad() { grad.zero(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; `train` toggles batch-stat collection (BatchNorm).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Rvalue forward: chain drivers (Sequential, Model) hand the activation
  /// over by value so shape-only layers (Flatten) can reshape the moved
  /// buffer instead of deep-copying it.  Compute layers keep the const-ref
  /// overload; this default just binds the argument as an lvalue.
  virtual Tensor forward(Tensor&& x, bool train) { return forward(x, train); }

  /// Backward pass given dL/d(output); returns dL/d(input) and accumulates
  /// parameter gradients.  Must be called after a matching forward.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Rvalue backward, mirroring the rvalue forward.
  virtual Tensor backward(Tensor&& grad_out) { return backward(grad_out); }

  /// Trainable parameters (non-owning, stable across calls).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Persistent non-trainable state (non-owning, stable across calls):
  /// buffers that must survive save/load for eval-mode correctness, e.g.
  /// BatchNorm running statistics.  Forward caches are NOT state.
  virtual std::vector<std::vector<float>*> state() { return {}; }

  /// Deep copy: parameters, state, and structure are duplicated so the
  /// replica can run forward/backward on another thread independently.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bprom::nn
