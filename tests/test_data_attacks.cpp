// Dataset generation and backdoor attack invariants.
#include <gtest/gtest.h>
#include <set>
#include "attacks/poisoner.hpp"
#include "data/generator.hpp"
#include "data/ops.hpp"
namespace bprom {
namespace {

TEST(Data, DeterministicFromSeed) {
  auto a = data::make_dataset(data::DatasetKind::kCifar10, 42, 100, 50);
  auto b = data::make_dataset(data::DatasetKind::kCifar10, 42, 100, 50);
  EXPECT_EQ(a.train.labels, b.train.labels);
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    EXPECT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
}

TEST(Data, DifferentSeedsDiffer) {
  auto a = data::make_dataset(data::DatasetKind::kCifar10, 1, 50, 10);
  auto b = data::make_dataset(data::DatasetKind::kCifar10, 2, 50, 10);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    if (a.train.images[i] != b.train.images[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Data, PixelsInUnitRange) {
  auto ds = data::make_dataset(data::DatasetKind::kGtsrb, 3, 200, 10);
  for (float v : ds.train.images.vec()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Data, ClassBalanceApproximatelyUniform) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 4, 1000, 10);
  auto hist = data::class_histogram(ds.train, 10);
  for (auto h : hist) EXPECT_NEAR(static_cast<double>(h), 100.0, 1.0);
}

TEST(Data, ProfilesHaveExpectedClassCounts) {
  EXPECT_EQ(data::profile(data::DatasetKind::kCifar10).classes, 10u);
  EXPECT_EQ(data::profile(data::DatasetKind::kGtsrb).classes, 43u);
  EXPECT_EQ(data::profile(data::DatasetKind::kStl10).classes, 10u);
}

TEST(DataOps, SubsetAndFraction) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 5, 100, 100);
  util::Rng rng(1);
  auto frac = data::sample_fraction(ds.test, 0.10, rng);
  EXPECT_EQ(frac.size(), 10u);
  auto sub = data::subset(ds.train, {0, 5, 7});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.labels[1], ds.train.labels[5]);
}

TEST(DataOps, Downscale2xAverages) {
  nn::Tensor img({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) img[i] = static_cast<float>(i);
  auto small = data::downscale2x(img);
  EXPECT_EQ(small.dim(2), 2u);
  EXPECT_FLOAT_EQ(small.at4(0, 0, 0, 0), (0 + 1 + 4 + 5) / 4.0F);
}

class AttackSweep : public ::testing::TestWithParam<attacks::AttackKind> {};

TEST_P(AttackSweep, PoisonRateHonoredAndBounded) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 6, 400, 10);
  auto cfg = attacks::AttackConfig::defaults(GetParam(), 0);
  util::Rng rng(2);
  auto result = attacks::poison_dataset(ds.train, cfg, rng);
  // Stamp count matches the configured rate over the eligible candidates.
  std::size_t eligible = ds.train.size();
  if (attacks::is_clean_label(GetParam())) {
    eligible = data::class_histogram(ds.train, 10)[0];
  }
  EXPECT_NEAR(static_cast<double>(result.stats.poisoned),
              cfg.poison_rate * static_cast<double>(eligible), 2.0);
  // All pixels stay in range.
  for (float v : result.data.images.vec()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  // Mask agrees with stats.
  std::size_t mask_count = 0;
  for (char m : result.poison_mask) mask_count += static_cast<std::size_t>(m);
  EXPECT_EQ(mask_count, result.stats.poisoned);
}

TEST_P(AttackSweep, LabelSemantics) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 7, 400, 10);
  auto cfg = attacks::AttackConfig::defaults(GetParam(), 2);
  util::Rng rng(3);
  auto result = attacks::poison_dataset(ds.train, cfg, rng);
  for (std::size_t i = 0; i < result.data.size(); ++i) {
    if (!result.poison_mask[i]) continue;
    if (attacks::is_clean_label(GetParam())) {
      // Clean-label: label unchanged and equal to the target class.
      EXPECT_EQ(result.data.labels[i], ds.train.labels[i]);
      EXPECT_EQ(result.data.labels[i], 2);
    } else {
      EXPECT_EQ(result.data.labels[i], 2);
    }
  }
  // Cover samples keep their true label.
  for (std::size_t i = 0; i < result.data.size(); ++i) {
    if (result.cover_mask[i]) {
      EXPECT_EQ(result.data.labels[i], ds.train.labels[i]);
    }
  }
}

TEST_P(AttackSweep, TriggerActuallyChangesImage) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 8, 8, 4);
  attacks::TriggerEngine engine(attacks::AttackConfig::defaults(GetParam()),
                                ds.profile.shape);
  nn::Tensor stamped = ds.train.images;
  engine.apply_all(stamped);
  double delta = 0;
  for (std::size_t i = 0; i < stamped.size(); ++i) {
    delta += std::abs(stamped[i] - ds.train.images[i]);
  }
  EXPECT_GT(delta, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AttackSweep,
    ::testing::Values(
        attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
        attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
        attacks::AttackKind::kDynamic, attacks::AttackKind::kAdapBlend,
        attacks::AttackKind::kAdapPatch, attacks::AttackKind::kBpp,
        attacks::AttackKind::kSig, attacks::AttackKind::kLc,
        attacks::AttackKind::kRefool, attacks::AttackKind::kPoisonInk));

TEST(Attacks, SampleSpecificTriggersVaryAcrossImages) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 9, 16, 4);
  attacks::TriggerEngine engine(
      attacks::AttackConfig::defaults(attacks::AttackKind::kDynamic),
      ds.profile.shape);
  nn::Tensor stamped = ds.train.images;
  engine.apply_all(stamped);
  // Locate modified pixels per image; positions should differ across images.
  std::set<std::size_t> first_positions;
  std::vector<std::set<std::size_t>> all;
  const std::size_t sz = ds.profile.shape.size();
  for (std::size_t i = 0; i < ds.train.size(); ++i) {
    std::set<std::size_t> pos;
    for (std::size_t p = 0; p < sz; ++p) {
      if (stamped[i * sz + p] != ds.train.images[i * sz + p]) pos.insert(p);
    }
    all.push_back(pos);
  }
  bool any_diff = false;
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i] != all[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Attacks, MultiTargetPoisoningCombines) {
  auto ds = data::make_dataset(data::DatasetKind::kCifar10, 10, 300, 10);
  std::vector<attacks::AttackConfig> cfgs;
  for (int t = 0; t < 3; ++t) {
    auto c = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, t);
    c.poison_rate = 0.05;
    c.seed = 100 + static_cast<std::uint64_t>(t);
    cfgs.push_back(c);
  }
  util::Rng rng(4);
  auto result = attacks::poison_dataset_multi(ds.train, cfgs, rng);
  EXPECT_GT(result.stats.poisoned, 30u);
}

}  // namespace
}  // namespace bprom
