// Serving-layer behavior: model cloning, parallel-inspect determinism,
// the detector store cache, and batched audits.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "io/binary.hpp"
#include "nn/arch.hpp"
#include "serve/audit_service.hpp"
#include "serve/detector_store.hpp"
#include "util/thread_pool.hpp"

namespace bprom {
namespace {

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

/// Black box that deliberately does not support replicate(): forces the
/// serial ensemble fallback inside inspect().
class NonReplicableBox final : public nn::BlackBoxModel {
 public:
  explicit NonReplicableBox(nn::Model& model) : inner_(model) {}
  nn::Tensor predict_proba(const nn::Tensor& images) const override {
    return inner_.predict_proba(images);
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return inner_.num_classes();
  }
  [[nodiscard]] nn::ImageShape input_shape() const override {
    return inner_.input_shape();
  }
  [[nodiscard]] std::size_t query_count() const override {
    return inner_.query_count();
  }

 private:
  nn::BlackBoxAdapter inner_;
};

TEST(ModelClone, CloneIsDeepAndLogitIdentical) {
  auto dataset = data::make_dataset(data::DatasetKind::kCifar10, 31, 96, 32);
  util::Rng rng(5);
  auto model = nn::make_model(nn::ArchKind::kResNet18Mini,
                              dataset.profile.shape, dataset.profile.classes,
                              rng);
  nn::TrainConfig tc;
  tc.epochs = 2;
  nn::train_classifier(*model, dataset.train, tc);

  auto copy = model->clone();
  EXPECT_EQ(copy->arch(), model->arch());
  const auto expected = model->logits(dataset.test.images, false);
  const auto actual = copy->logits(dataset.test.images, false);
  EXPECT_EQ(expected.vec(), actual.vec());

  // Deep copy: retraining the original must not disturb the clone.
  nn::TrainConfig more;
  more.epochs = 1;
  more.seed = 99;
  nn::train_classifier(*model, dataset.train, more);
  const auto after = copy->logits(dataset.test.images, false);
  EXPECT_EQ(expected.vec(), after.vec());
}

TEST(ParallelInspect, VerdictsMatchAcrossThreadCountsAndReplicationModes) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 33, 400, 160);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 34, 300, 160);
  const auto scale = micro_scale();

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  auto det_one = core::fit_detector(src, tgt, 0.10,
                                    nn::ArchKind::kResNet18Mini, 7, scale,
                                    &one);
  auto det_four = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale,
                                     &four);

  auto suspicious = core::train_clean_model(src, nn::ArchKind::kResNet18Mini,
                                            50, scale);
  ASSERT_GE(det_one.config().prompt_ensemble, 2U)
      << "test needs an ensemble to exercise the parallel path";

  nn::BlackBoxAdapter box_one(*suspicious.model);
  nn::BlackBoxAdapter box_four(*suspicious.model);
  const auto serial = det_one.inspect(box_one);
  const auto parallel = det_four.inspect(box_four);
  EXPECT_EQ(serial.score, parallel.score);
  EXPECT_EQ(serial.prompted_accuracy, parallel.prompted_accuracy);
  EXPECT_EQ(serial.queries, parallel.queries);

  // A black box without replicate() support must fall back to the serial
  // ensemble and still produce the identical verdict.
  NonReplicableBox opaque(*suspicious.model);
  const auto fallback = det_four.inspect(opaque);
  EXPECT_EQ(serial.score, fallback.score);
  EXPECT_EQ(serial.prompted_accuracy, fallback.prompted_accuracy);
  EXPECT_EQ(serial.queries, fallback.queries);
}

TEST(DetectorStore, PutGetListAndCacheBehavior) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 35, 400, 160);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 36, 300, 160);
  const auto scale = micro_scale();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bprom_test_store").string();
  std::filesystem::remove_all(dir);
  serve::DetectorStore store(dir);
  EXPECT_FALSE(store.contains("aud"));
  EXPECT_THROW(store.get("aud"), io::IoError);

  auto put_handle = store.put("aud", std::move(detector));
  EXPECT_TRUE(store.contains("aud"));
  EXPECT_EQ(store.list(), std::vector<std::string>{"aud"});
  // Cached: get() returns the same object without re-reading the file.
  EXPECT_EQ(store.get("aud").get(), put_handle.get());

  // A second store over the same directory simulates a fresh process.
  serve::DetectorStore fresh(dir);
  auto loaded = fresh.get("aud");
  ASSERT_TRUE(loaded->fitted());
  EXPECT_EQ(loaded->diagnostics().meta_features,
            put_handle->diagnostics().meta_features);
  // Eviction drops the cache entry but not the file.
  fresh.evict("aud");
  EXPECT_TRUE(fresh.contains("aud"));
  EXPECT_NE(fresh.get("aud").get(), loaded.get());

  std::filesystem::remove_all(dir);
}

// Regression for get()'s check-then-load-then-publish sequence: threads
// racing the first load of one name must converge on a single cached
// handle (cache_.emplace never overwrites — losers adopt the winner's) and
// the map must survive the concurrent insert attempts intact.
TEST(DetectorStore, ConcurrentFirstGetConvergesOnOneHandle) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 45, 400, 160);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 46, 300, 160);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7,
                                     micro_scale());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bprom_test_store_race")
          .string();
  std::filesystem::remove_all(dir);
  {
    serve::DetectorStore writer(dir);
    writer.put("aud", std::move(detector));
  }

  serve::DetectorStore store(dir);  // cold cache: every get must load
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const core::BpromDetector>> handles(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> racers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    racers.emplace_back([&store, &go, &handles, t] {
      while (!go.load()) {
      }
      handles[t] = store.get("aud");
    });
  }
  go.store(true);
  for (auto& r : racers) r.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(handles[t], nullptr);
    EXPECT_EQ(handles[t].get(), handles[0].get())
        << "thread " << t << " got a divergent handle";
  }
  EXPECT_TRUE(handles[0]->fitted());
  std::filesystem::remove_all(dir);
}

// Migrated onto the bprom::api façade (the old serve::AuditService is the
// internal layer underneath it): batched verdicts must be bit-identical
// under 1- and 4-thread engine pools, the async path must match the sync
// one, and a malformed request must fail typed without sinking the batch.
TEST(AuditEngine, BatchVerdictsAreThreadCountInvariant) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 37, 400, 160);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 38, 300, 160);
  const auto scale = micro_scale();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  auto population = core::build_population(
      src, attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets),
      nn::ArchKind::kResNet18Mini, 1, 40, scale);
  std::vector<nn::BlackBoxAdapter> boxes;
  boxes.reserve(2 * population.size());
  std::vector<api::AuditRequest> batch;
  for (auto& suspicious : population) {
    boxes.emplace_back(*suspicious.model);
    api::AuditRequest request;
    request.model_id = "model-" + std::to_string(batch.size());
    request.detector = "aud";
    request.model = &boxes.back();
    batch.push_back(request);
  }
  api::AuditRequest broken;
  broken.model_id = "broken";
  broken.detector = "aud";
  batch.push_back(broken);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bprom_test_engine").string();
  std::filesystem::remove_all(dir);
  util::ThreadPool one(1);
  util::ThreadPool four(4);
  api::AuditEngine serial_engine(
      {.store_dir = dir, .pool = &one});
  ASSERT_TRUE(serial_engine.publish("aud", std::move(detector)).ok());
  api::AuditEngine parallel_engine(
      {.store_dir = dir, .pool = &four});
  const auto serial = serial_engine.audit(batch);
  const auto parallel = parallel_engine.audit_async(batch).get();

  ASSERT_EQ(serial.size(), batch.size());
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    EXPECT_TRUE(serial[i].status.ok());
    EXPECT_EQ(serial[i].model_id, parallel[i].model_id);
    EXPECT_EQ(serial[i].detector_version, "aud@v1");
    EXPECT_EQ(serial[i].verdict.score, parallel[i].verdict.score);
    EXPECT_EQ(serial[i].verdict.prompted_accuracy,
              parallel[i].verdict.prompted_accuracy);
    EXPECT_EQ(serial[i].verdict.backdoored, parallel[i].verdict.backdoored);
    EXPECT_EQ(serial[i].verdict.queries, parallel[i].verdict.queries);
  }
  // The malformed request fails typed without sinking the batch.
  EXPECT_EQ(serial.back().status.code(), api::StatusCode::kInvalidRequest);
  EXPECT_EQ(parallel.back().status.code(), api::StatusCode::kInvalidRequest);
  std::filesystem::remove_all(dir);
}

TEST(StoreLock, MutualExclusionAcrossHolders) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "bprom_storelock_mx").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Contending holders must never overlap their critical sections — the
  // exact property the publish scan-and-write relies on.
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> entries{0};
  std::vector<std::thread> holders;
  for (int t = 0; t < 4; ++t) {
    holders.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        serve::StoreLock lock(dir);
        const int now = inside.fetch_add(1) + 1;
        int seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        entries.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& h : holders) h.join();
  EXPECT_EQ(entries.load(), 20);
  EXPECT_EQ(max_inside.load(), 1);
  // Released: the lock file is gone and a fresh acquire succeeds at once.
  EXPECT_FALSE(fs::exists(fs::path(dir) / serve::StoreLock::kLockName));
  serve::StoreLock fresh(dir);
  fs::remove_all(dir);
}

TEST(StoreLock, StaleLockFromCrashedWriterIsBroken) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "bprom_storelock_stale").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path lock_path = fs::path(dir) / serve::StoreLock::kLockName;
  {
    std::ofstream out(lock_path.string());
    out << "999999\n";  // debris of a "crashed" writer
  }
  // Age the file past the stale threshold; acquisition must break it
  // instead of spinning forever.
  fs::last_write_time(
      lock_path, fs::file_time_type::clock::now() -
                     std::chrono::seconds(
                         static_cast<long>(
                             serve::StoreLock::kStaleAfterSeconds) + 10));
  serve::StoreLock lock(dir);
  SUCCEED();  // acquired despite the debris
  fs::remove_all(dir);
}

TEST(StoreLock, ProcessStartTokenIsStableForALiveProcess) {
  const auto token = serve::process_start_token(static_cast<long>(getpid()));
  ASSERT_TRUE(token.has_value());
  // starttime is fixed at exec: re-reading must agree exactly.
  EXPECT_EQ(serve::process_start_token(static_cast<long>(getpid())), token);
}

TEST(StoreLock, ProcessStartTokenOfDeadPidIsEmpty) {
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  // Reaped: /proc/<pid> is gone, so the incarnation cannot be named.
  EXPECT_FALSE(
      serve::process_start_token(static_cast<long>(child)).has_value());
}

TEST(StoreLock, DeadHolderCrumbIsBrokenImmediately) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "bprom_storelock_dead").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  {
    // Full modern crumb of a writer that is provably dead — the pid is
    // reaped, so liveness is decidable without waiting out the mtime rule.
    std::ofstream out((fs::path(dir) / serve::StoreLock::kLockName).string());
    out << child << " 12345\n";
  }
  const auto t0 = std::chrono::steady_clock::now();
  serve::StoreLock lock(dir);  // must not spin for kStaleAfterSeconds
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            static_cast<long>(serve::StoreLock::kStaleAfterSeconds) / 2);
  fs::remove_all(dir);
}

TEST(StoreLock, LiveHolderWithFreshLockIsNotBroken) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "bprom_storelock_live").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path lock_path = fs::path(dir) / serve::StoreLock::kLockName;
  {
    // Crumb of THIS process: alive, so only the mtime rule could break it,
    // and the file is fresh.
    std::ofstream out(lock_path.string());
    out << getpid() << " "
        << serve::process_start_token(static_cast<long>(getpid())).value()
        << "\n";
  }
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    serve::StoreLock lock(dir);
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(acquired.load()) << "live fresh lock was broken";
  fs::remove(lock_path);  // simulate the holder releasing
  waiter.join();
  EXPECT_TRUE(acquired.load());
  fs::remove_all(dir);
}

TEST(DetectorStore, GenerationCounterPersistsAcrossInstances) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "bprom_store_gen").string();
  fs::remove_all(dir);
  {
    serve::DetectorStore store(dir);
    EXPECT_EQ(store.generation(), 0U);  // pre-generation stores read as 0
    EXPECT_EQ(store.bump_generation(), 1U);
    EXPECT_EQ(store.bump_generation(), 2U);
    EXPECT_EQ(store.generation(), 2U);
  }
  // A second store over the same directory — another process, in effect —
  // observes the persisted counter.
  serve::DetectorStore reopened(dir);
  EXPECT_EQ(reopened.generation(), 2U);
  EXPECT_EQ(reopened.bump_generation(), 3U);
  // The counter file is store metadata, not a detector: list() skips it.
  EXPECT_TRUE(reopened.list().empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bprom
