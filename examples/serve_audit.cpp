// Persistence + serving walkthrough: fit once, audit many, survive restarts.
//
// The paper's §1 marketplace scenario as a long-lived service:
//   1. fit a BPROM detector (the expensive shadow-population step),
//   2. audit the marketplace in memory through serve::AuditService,
//   3. persist the detector AND every listed model to .bprom containers,
//   4. simulate a fresh process: reload everything through a new
//      serve::DetectorStore and audit again,
//   5. diff the two verdict sets — any drift is a format regression, and
//      the process exits nonzero so CI fails.
// Timing columns are wall-clock and excluded from the comparison.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "io/serialize.hpp"
#include "serve/audit_service.hpp"
#include "serve/detector_store.hpp"

int main() {
  using namespace bprom;
  const auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);

  std::printf("== serve_audit: fit -> save -> reload -> batch audit ==\n");

  // The marketplace: clean listings plus an assortment of attacks.
  struct Listing {
    core::TrainedSuspicious model;
    std::string description;
  };
  std::vector<Listing> marketplace;
  std::size_t id = 0;
  for (int i = 0; i < 2; ++i) {
    marketplace.push_back({core::train_clean_model(
                               src, nn::ArchKind::kResNet18Mini, 800 + id++,
                               scale),
                           "vendor upload (clean)"});
  }
  for (auto kind : {attacks::AttackKind::kBadNets, attacks::AttackKind::kWaNet,
                    attacks::AttackKind::kAdapBlend}) {
    auto atk = attacks::AttackConfig::defaults(kind, static_cast<int>(id % 10));
    marketplace.push_back({core::train_backdoored_model(
                               src, atk, nn::ArchKind::kResNet18Mini,
                               900 + id++, scale),
                           "vendor upload (" + attacks::attack_name(kind) + ")"});
  }

  std::printf("fitting detector (%zu+%zu shadows)...\n",
              scale.shadows_per_side, scale.shadows_per_side);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "bprom_serve_audit").string();

  // --- Audit pass 1: the freshly fitted, in-memory detector. ------------
  std::vector<nn::BlackBoxAdapter> live_boxes;
  live_boxes.reserve(marketplace.size());
  for (auto& listing : marketplace) live_boxes.emplace_back(*listing.model.model);
  std::vector<serve::AuditRequest> requests;
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    requests.push_back({"listing-" + std::to_string(i), &live_boxes[i]});
  }

  serve::DetectorStore store(store_dir);
  auto live_handle = store.put("marketplace", std::move(detector));
  serve::AuditService live_service(live_handle);
  auto live = live_service.audit(requests);

  // --- Persist the marketplace models themselves. -----------------------
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    io::save_model_file(store_dir + "/listing-" + std::to_string(i) + ".model",
                        *marketplace[i].model.model);
  }

  // --- "Fresh process": reload detector + models, audit pass 2. ---------
  serve::DetectorStore fresh_store(store_dir);
  std::vector<std::unique_ptr<nn::BlackBoxModel>> loaded_boxes;
  std::vector<serve::AuditRequest> reload_requests;
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    auto model = io::load_model_file(store_dir + "/listing-" +
                                     std::to_string(i) + ".model");
    loaded_boxes.push_back(
        std::make_unique<nn::BlackBoxAdapter>(std::move(model)));
    reload_requests.push_back(
        {"listing-" + std::to_string(i), loaded_boxes.back().get()});
  }
  serve::AuditService fresh_service(fresh_store, "marketplace");
  auto reloaded = fresh_service.audit(reload_requests);

  // --- Diff the verdicts. ----------------------------------------------
  std::printf("\n%-12s %-28s %-10s %-10s %-8s %-7s %s\n", "id", "listing",
              "live", "reloaded", "verdict", "match", "time");
  bool all_match = true;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const bool match = live[i].ok && reloaded[i].ok &&
                       live[i].verdict.score == reloaded[i].verdict.score &&
                       live[i].verdict.prompted_accuracy ==
                           reloaded[i].verdict.prompted_accuracy &&
                       live[i].verdict.backdoored == reloaded[i].verdict.backdoored;
    all_match = all_match && match;
    std::printf("%-12s %-28s %-10.6f %-10.6f %-8s %-7s %.1fms\n",
                live[i].model_id.c_str(), marketplace[i].description.c_str(),
                live[i].verdict.score, reloaded[i].verdict.score,
                reloaded[i].verdict.backdoored ? "BACKDOOR" : "clean",
                match ? "yes" : "NO", reloaded[i].seconds * 1e3);
  }
  std::printf("\nstore %s holds: ", store_dir.c_str());
  for (const auto& name : fresh_store.list()) std::printf("%s ", name.c_str());
  std::printf("\nGround truth: listings 0-1 clean; 2-4 backdoored.\n");
  if (!all_match) {
    std::printf("FAIL: reloaded verdicts differ from the in-memory run\n");
    return 1;
  }
  std::printf("OK: fit->save->reload->inspect verdicts are bit-identical\n");
  return 0;
}
