#include "tensor/gemm.hpp"

#include <algorithm>

#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace bprom::tensor {
namespace {

// Below this many multiply-adds the pool dispatch overhead dominates and
// the serial tile walk wins.  The gate depends only on problem size, and
// serial vs parallel walks are bitwise identical anyway (disjoint tiles,
// same per-tile arithmetic), so this is a pure scheduling choice.
constexpr std::size_t kParallelMulAdds = std::size_t{1} << 21;

template <typename T>
constexpr std::size_t nr_of() {
  return sizeof(T) == sizeof(float) ? kGemmNrF32 : kGemmNrF64;
}

template <typename T>
T load(Trans t, const T* p, std::size_t ld, std::size_t row,
       std::size_t col) {
  return t == Trans::kNo ? p[row * ld + col] : p[col * ld + row];
}

/// Pack op_a(A)[i0 .. i0+mc, p0 .. p0+kc] as ceil(mc/MR) strips of
/// [kc][MR], rows beyond mc padded with zeros so the micro-kernel always
/// runs a full MR x NR tile (the pad contributes exact +0 terms to lanes
/// that are never stored).
template <typename T>
void pack_a(Trans ta, const T* a, std::size_t lda, std::size_t i0,
            std::size_t p0, std::size_t mc, std::size_t kc, T* out) {
  constexpr std::size_t kMr = kGemmMr;
  for (std::size_t ir = 0; ir < mc; ir += kMr) {
    const std::size_t mr = std::min(kMr, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < kMr; ++r) {
        *out++ = r < mr ? load(ta, a, lda, i0 + ir + r, p0 + p) : T(0);
      }
    }
  }
}

/// Pack op_b(B)[p0 .. p0+kc, j0 .. j0+nc] as ceil(nc/NR) strips of
/// [kc][NR], columns beyond nc padded with zeros.
template <typename T>
void pack_b(Trans tb, const T* b, std::size_t ldb, std::size_t p0,
            std::size_t j0, std::size_t kc, std::size_t nc, T* out) {
  constexpr std::size_t kNr = nr_of<T>();
  for (std::size_t jr = 0; jr < nc; jr += kNr) {
    const std::size_t nr = std::min(kNr, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t c = 0; c < kNr; ++c) {
        *out++ = c < nr ? load(tb, b, ldb, p0 + p, j0 + jr + c) : T(0);
      }
    }
  }
}

/// MR x NR register tile over one packed A strip ([kc][MR]) and one packed
/// B strip ([kc][NR]).  The fixed-width accumulator array has independent
/// lanes, so -O2/-O3 auto-vectorizes the NR loop without -ffast-math.
/// Folds into C (callers zero the tile first when not accumulating).
template <typename T>
void micro_kernel(const T* __restrict pa, const T* __restrict pb,
                  std::size_t kc, T* __restrict c, std::size_t ldc,
                  std::size_t mr, std::size_t nr) {
  constexpr std::size_t kMr = kGemmMr;
  constexpr std::size_t kNr = nr_of<T>();
  // Full unrolling turns acc[][] into distinct scalars the register
  // allocator can keep in SIMD registers; without it the accumulators
  // round-trip through the stack every k step.
  T acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const T* __restrict ap = pa + p * kMr;
    const T* __restrict bp = pb + p * kNr;
#pragma GCC unroll 6
    for (std::size_t r = 0; r < kMr; ++r) {
      const T av = ap[r];
#pragma GCC unroll 32
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (std::size_t r = 0; r < kMr; ++r) {
      T* __restrict cr = c + r * ldc;
      for (std::size_t j = 0; j < kNr; ++j) cr[j] += acc[r][j];
    }
  } else {
    for (std::size_t r = 0; r < mr; ++r) {
      T* cr = c + r * ldc;
      for (std::size_t j = 0; j < nr; ++j) cr[j] += acc[r][j];
    }
  }
}

template <typename T>
void gemm_impl(Trans ta, Trans tb, std::size_t m, std::size_t n,
               std::size_t k, const T* a, std::size_t lda, const T* b,
               std::size_t ldb, T* c, std::size_t ldc, bool accumulate,
               bool allow_parallel) {
  if (m == 0 || n == 0) return;
  constexpr std::size_t kMr = kGemmMr;
  constexpr std::size_t kNr = nr_of<T>();
  const std::size_t col_tiles = (n + kGemmNc - 1) / kGemmNc;

  // Row grain: MC normally, but when a parallel-eligible problem is too
  // skinny in N for the (MC, NC) grid to feed a typical pool (a narrow
  // Linear layer has col_tiles == 1), shrink the row tiles — to a multiple
  // of MR — until the grid has ~kTargetTiles tasks.  The grain depends
  // only on the problem shape, and the tile partition never changes any
  // element's summation order (each element folds its KC panels the same
  // way whichever tile owns it), so this is a pure scheduling choice.
  constexpr std::size_t kTargetTiles = 16;
  const bool parallel = allow_parallel && m * n * k >= kParallelMulAdds;
  std::size_t row_grain = kGemmMc;
  if (parallel && (m + row_grain - 1) / row_grain * col_tiles < kTargetTiles) {
    const std::size_t want_rows = (kTargetTiles + col_tiles - 1) / col_tiles;
    std::size_t grain = (m + want_rows - 1) / want_rows;
    grain = (grain + kMr - 1) / kMr * kMr;
    row_grain = std::min(kGemmMc, std::max(grain, kMr));
  }
  const std::size_t row_tiles = (m + row_grain - 1) / row_grain;

  // One C macro-tile, computed start-to-finish by one task: zero (unless
  // accumulating), then fold every KC panel in ascending order.
  const auto tile_task = [&](std::size_t idx) {
    const std::size_t i0 = (idx / col_tiles) * row_grain;
    const std::size_t j0 = (idx % col_tiles) * kGemmNc;
    const std::size_t mc = std::min(row_grain, m - i0);
    const std::size_t nc = std::min(kGemmNc, n - j0);
    if (!accumulate) {
      for (std::size_t r = 0; r < mc; ++r) {
        std::fill_n(c + (i0 + r) * ldc + j0, nc, T(0));
      }
    }
    if (k == 0) return;
    util::Scratch& scratch = util::Scratch::tls();
    T* pa = scratch.buffer<T>(util::Scratch::kGemmPackA, kGemmMc * kGemmKc);
    T* pb = scratch.buffer<T>(util::Scratch::kGemmPackB, kGemmKc * kGemmNc);
    for (std::size_t p0 = 0; p0 < k; p0 += kGemmKc) {
      const std::size_t kc = std::min(kGemmKc, k - p0);
      pack_a(ta, a, lda, i0, p0, mc, kc, pa);
      pack_b(tb, b, ldb, p0, j0, kc, nc, pb);
      for (std::size_t jr = 0; jr < nc; jr += kNr) {
        const std::size_t nr = std::min(kNr, nc - jr);
        for (std::size_t ir = 0; ir < mc; ir += kMr) {
          micro_kernel(pa + (ir / kMr) * kc * kMr, pb + (jr / kNr) * kc * kNr,
                       kc, c + (i0 + ir) * ldc + j0 + jr, ldc,
                       std::min(kMr, mc - ir), nr);
        }
      }
    }
  };

  const std::size_t tiles = row_tiles * col_tiles;
  if (parallel && tiles > 1) {
    util::parallel_for(tiles, tile_task);
  } else {
    for (std::size_t t = 0; t < tiles; ++t) tile_task(t);
  }
}

template <typename T>
void gemm_reference_impl(Trans ta, Trans tb, std::size_t m, std::size_t n,
                         std::size_t k, const T* a, std::size_t lda,
                         const T* b, std::size_t ldb, T* c, std::size_t ldc,
                         bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T& out = c[i * ldc + j];
      if (!accumulate) out = T(0);
      // Same grouping as the kernel: per KC block, a local accumulator in
      // ascending k, folded into C — bitwise identical to gemm().
      for (std::size_t p0 = 0; p0 < k; p0 += kGemmKc) {
        const std::size_t hi = std::min(p0 + kGemmKc, k);
        T acc(0);
        for (std::size_t p = p0; p < hi; ++p) {
          acc += load(ta, a, lda, i, p) * load(tb, b, ldb, p, j);
        }
        out += acc;
      }
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, bool accumulate, bool allow_parallel) {
  gemm_impl(ta, tb, m, n, k, a, lda, b, ldb, c, ldc, accumulate,
            allow_parallel);
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const double* a, std::size_t lda, const double* b, std::size_t ldb,
          double* c, std::size_t ldc, bool accumulate, bool allow_parallel) {
  gemm_impl(ta, tb, m, n, k, a, lda, b, ldb, c, ldc, accumulate,
            allow_parallel);
}

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const float* a, std::size_t lda,
                    const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate) {
  gemm_reference_impl(ta, tb, m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const double* a, std::size_t lda,
                    const double* b, std::size_t ldb, double* c,
                    std::size_t ldc, bool accumulate) {
  gemm_reference_impl(ta, tb, m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

}  // namespace bprom::tensor
