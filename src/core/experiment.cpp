#include "core/experiment.hpp"

#include <algorithm>

#include "data/ops.hpp"
#include "util/log.hpp"

namespace bprom::core {

ExperimentScale ExperimentScale::current() {
  ExperimentScale s;
  switch (util::scale()) {
    case util::Scale::kSmoke:
      s.suspicious_train = 300;
      s.suspicious_epochs = 3;
      s.population_per_side = 2;
      s.shadows_per_side = 2;
      s.shadow_epochs = 4;
      s.prompt_epochs = 2;
      s.blackbox_evals = 60;
      s.query_samples = 8;
      s.forest_trees = 60;
      break;
    case util::Scale::kDefault:
      break;
    case util::Scale::kHeavy:
      s.suspicious_train = 2000;
      s.suspicious_epochs = 8;
      s.population_per_side = 15;
      s.shadows_per_side = 10;
      s.shadow_epochs = 12;
      s.prompt_epochs = 8;
      s.blackbox_evals = 600;
      s.query_samples = 24;
      s.forest_trees = 500;
      break;
  }
  return s;
}

namespace {

nn::LabeledData training_slice(const data::Dataset& dataset,
                               const ExperimentScale& scale,
                               util::Rng& rng) {
  const std::size_t n =
      std::min(scale.suspicious_train, dataset.train.size());
  return data::subset(dataset.train,
                      rng.sample_without_replacement(dataset.train.size(), n));
}

nn::TrainConfig suspicious_train_config(const ExperimentScale& scale,
                                        std::uint64_t seed) {
  nn::TrainConfig tc;
  tc.epochs = scale.suspicious_epochs;
  tc.seed = seed;
  return tc;
}

}  // namespace

TrainedSuspicious train_clean_model(const data::Dataset& dataset,
                                    nn::ArchKind arch, std::uint64_t seed,
                                    const ExperimentScale& scale) {
  util::Rng rng(seed);
  TrainedSuspicious out;
  out.model = nn::make_model(arch, dataset.profile.shape,
                             dataset.profile.classes, rng);
  const auto train = training_slice(dataset, scale, rng);
  nn::train_classifier(*out.model, train,
                       suspicious_train_config(scale, rng.next_u64()));
  out.clean_accuracy = nn::evaluate_accuracy(*out.model, dataset.test);
  return out;
}

TrainedSuspicious train_backdoored_model(const data::Dataset& dataset,
                                         const attacks::AttackConfig& attack,
                                         nn::ArchKind arch, std::uint64_t seed,
                                         const ExperimentScale& scale) {
  util::Rng rng(seed);
  TrainedSuspicious out;
  out.backdoored = true;
  out.attack = attack;
  out.model = nn::make_model(arch, dataset.profile.shape,
                             dataset.profile.classes, rng);
  auto train = training_slice(dataset, scale, rng);
  auto poisoned = attacks::poison_dataset(train, attack, rng);
  nn::train_classifier(*out.model, poisoned.data,
                       suspicious_train_config(scale, rng.next_u64()));
  out.clean_accuracy = nn::evaluate_accuracy(*out.model, dataset.test);
  out.asr = attacks::attack_success_rate(*out.model, dataset.test, attack);
  return out;
}

std::vector<TrainedSuspicious> build_population(
    const data::Dataset& dataset, const attacks::AttackConfig& attack,
    nn::ArchKind arch, std::size_t per_side, std::uint64_t seed,
    const ExperimentScale& scale, util::ThreadPool* pool) {
  // Every model draws from a seed derived only from its index, so training
  // the population in parallel reproduces the serial result bit-for-bit.
  std::vector<TrainedSuspicious> population(2 * per_side);
  util::parallel_for(2 * per_side, [&](std::size_t i) {
    if (i < per_side) {
      population[i] = train_clean_model(dataset, arch, seed * 1000 + i, scale);
      return;
    }
    const std::size_t j = i - per_side;
    attacks::AttackConfig atk = attack;
    // Vary target class and trigger seed across the population, as the
    // paper's suspicious models do.
    util::Rng vary(seed * 2000 + j);
    atk.target_class =
        static_cast<int>(vary.uniform_index(dataset.profile.classes));
    atk.seed = vary.next_u64();
    population[i] =
        train_backdoored_model(dataset, atk, arch, seed * 3000 + j, scale);
  }, pool);
  return population;
}

BpromConfig default_bprom_config(const ExperimentScale& scale,
                                 nn::ArchKind shadow_arch,
                                 std::uint64_t seed) {
  BpromConfig cfg;
  cfg.shadow_arch = shadow_arch;
  cfg.clean_shadows = scale.shadows_per_side;
  cfg.backdoor_shadows = scale.shadows_per_side;
  cfg.query_samples = scale.query_samples;
  cfg.shadow_train.epochs = scale.shadow_epochs;
  cfg.prompt_whitebox.epochs = scale.prompt_epochs;
  cfg.prompt_blackbox.max_evaluations = scale.blackbox_evals;
  cfg.forest.trees = scale.forest_trees;
  // Match the shadow poisoning strength to the attack strengths used on
  // suspicious models (regime alignment; DESIGN.md §2).
  cfg.shadow_poison_rate = 0.30;
  cfg.seed = seed;
  return cfg;
}

BpromDetector fit_detector(const data::Dataset& source,
                           const data::Dataset& target,
                           double reserved_fraction, nn::ArchKind shadow_arch,
                           std::uint64_t seed, const ExperimentScale& scale,
                           util::ThreadPool* pool) {
  util::Rng rng(seed ^ 0xDE7EC7ULL);
  nn::LabeledData reserved =
      data::sample_fraction(source.test, reserved_fraction, rng);

  // D_T split: a slice of the target train set for prompting, target test
  // for queries / accuracy.
  const std::size_t prompt_n = std::min<std::size_t>(256, target.train.size());
  nn::LabeledData dt_train = data::subset(
      target.train,
      rng.sample_without_replacement(target.train.size(), prompt_n));

  BpromConfig cfg = default_bprom_config(scale, shadow_arch, seed);
  cfg.pool = pool;
  BpromDetector detector(cfg);
  detector.fit(reserved, source.profile.classes, dt_train, target.test);
  return detector;
}

PopulationScores score_population(
    const BpromDetector& detector,
    const std::vector<TrainedSuspicious>& population,
    util::ThreadPool* pool) {
  PopulationScores out;
  out.scores.resize(population.size());
  out.labels.resize(population.size());
  util::parallel_for(population.size(), [&](std::size_t i) {
    nn::BlackBoxAdapter adapter(*population[i].model);
    out.scores[i] = detector.score(adapter);
    out.labels[i] = population[i].backdoored ? 1 : 0;
  }, pool);
  return out;
}

CellResult evaluate_cell(const BpromDetector& detector,
                         const data::Dataset& source,
                         const attacks::AttackConfig& attack, nn::ArchKind arch,
                         std::uint64_t seed, const ExperimentScale& scale,
                         util::ThreadPool* pool) {
  auto population = build_population(source, attack, arch,
                                     scale.population_per_side, seed, scale,
                                     pool);
  auto scores = score_population(detector, population, pool);
  CellResult cell;
  cell.auroc = scores.auroc();
  cell.f1 = scores.f1();
  std::size_t nb = 0;
  for (const auto& m : population) {
    if (m.backdoored) {
      cell.mean_asr += m.asr;
      ++nb;
    }
    cell.mean_acc += m.clean_accuracy;
  }
  if (nb > 0) cell.mean_asr /= static_cast<double>(nb);
  cell.mean_acc /= static_cast<double>(population.size());
  return cell;
}

std::vector<CellResult> evaluate_grid(
    const BpromDetector& detector, const data::Dataset& source,
    const std::vector<attacks::AttackKind>& kinds, nn::ArchKind arch,
    std::uint64_t seed_base, const ExperimentScale& scale,
    util::ThreadPool* pool) {
  std::vector<CellResult> cells(kinds.size());
  util::parallel_for(kinds.size(), [&](std::size_t i) {
    cells[i] = evaluate_cell(
        detector, source, attacks::AttackConfig::defaults(kinds[i]), arch,
        seed_base + static_cast<std::uint64_t>(kinds[i]), scale, pool);
  }, pool);
  return cells;
}

}  // namespace bprom::core
