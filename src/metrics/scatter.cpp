#include "metrics/scatter.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

namespace bprom::metrics {

void write_scatter_csv(const std::string& path,
                       const std::vector<ScatterSeries>& series) {
  std::ofstream out(path);
  out << "series,x,y\n";
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      out << s.label << ',' << s.x[i] << ',' << s.y[i] << '\n';
    }
  }
}

std::string ascii_scatter(const std::vector<ScatterSeries>& series,
                          std::size_t width, std::size_t height) {
  constexpr const char* kGlyphs = "ox+*#@%&";
  double min_x = std::numeric_limits<double>::max();
  double max_x = std::numeric_limits<double>::lowest();
  double min_y = min_x;
  double max_y = max_x;
  for (const auto& s : series) {
    for (double v : s.x) {
      min_x = std::min(min_x, v);
      max_x = std::max(max_x, v);
    }
    for (double v : s.y) {
      min_y = std::min(min_y, v);
      max_y = std::max(max_y, v);
    }
  }
  if (min_x > max_x) return "(empty scatter)\n";
  if (max_x - min_x < 1e-12) max_x = min_x + 1.0;
  if (max_y - min_y < 1e-12) max_y = min_y + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % 8];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const auto gx = static_cast<std::size_t>(
          (s.x[i] - min_x) / (max_x - min_x) * static_cast<double>(width - 1));
      const auto gy = static_cast<std::size_t>(
          (s.y[i] - min_y) / (max_y - min_y) *
          static_cast<double>(height - 1));
      grid[height - 1 - gy][gx] = glyph;
    }
  }

  std::ostringstream out;
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  '" << kGlyphs[si % 8] << "' = " << series[si].label << '\n';
  }
  out << '+' << std::string(width, '-') << "+\n";
  for (const auto& row : grid) out << '|' << row << "|\n";
  out << '+' << std::string(width, '-') << "+\n";
  return out.str();
}

}  // namespace bprom::metrics
