// Random-forest binary classifier — the paper's meta-model f_meta.
//
// The paper uses 10,000 trees; tree count is configurable and AUROC
// saturates at a few hundred at this problem scale (DESIGN.md §2).
#pragma once

#include "meta/decision_tree.hpp"

namespace bprom::meta {

struct ForestConfig {
  std::size_t trees = 300;
  TreeConfig tree;
  std::uint64_t seed = 19;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  /// Fit on feature rows with binary labels {0 = clean, 1 = backdoor}.
  void fit(const std::vector<std::vector<float>>& x,
           const std::vector<int>& y);

  /// P(backdoor).
  [[nodiscard]] double predict_proba(const std::vector<float>& x) const;

  /// Hard verdict at the 0.5 threshold.
  [[nodiscard]] int predict(const std::vector<float>& x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }
  [[nodiscard]] const ForestConfig& config() const { return config_; }

  /// Binary persistence of config + every fitted tree (implemented in
  /// io/serialize.cpp).
  void save(io::Writer& writer) const;
  static RandomForest load(io::Reader& reader);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  /// Feature-vector length seen at fit() time; persisted so load() can
  /// bound-check every tree's split features.  0 = never fitted.
  std::size_t feature_dim_ = 0;
};

}  // namespace bprom::meta
