// Experiment orchestration shared by the benches and examples: trains
// populations of clean / backdoored suspicious models, builds detectors
// with scale-appropriate defaults, and scores populations for AUROC / F1.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bprom.hpp"
#include "data/generator.hpp"
#include "metrics/roc.hpp"
#include "util/env.hpp"

namespace bprom::core {

/// Scale-dependent knobs for suspicious-model training and populations.
struct ExperimentScale {
  std::size_t suspicious_train = 300;
  std::size_t suspicious_epochs = 8;
  std::size_t population_per_side = 5;  // clean / backdoored counts
  std::size_t shadows_per_side = 8;
  std::size_t shadow_epochs = 8;
  std::size_t prompt_epochs = 5;
  std::size_t blackbox_evals = 400;
  std::size_t query_samples = 16;
  std::size_t forest_trees = 200;

  static ExperimentScale current();
};

struct TrainedSuspicious {
  std::unique_ptr<nn::Model> model;
  bool backdoored = false;
  double clean_accuracy = 0.0;
  double asr = 0.0;  // 0 for clean models
  attacks::AttackConfig attack;  // meaningful iff backdoored
};

/// Train a clean suspicious model.
TrainedSuspicious train_clean_model(const data::Dataset& dataset,
                                    nn::ArchKind arch, std::uint64_t seed,
                                    const ExperimentScale& scale);

/// Train a backdoored suspicious model with the given attack.
TrainedSuspicious train_backdoored_model(const data::Dataset& dataset,
                                         const attacks::AttackConfig& attack,
                                         nn::ArchKind arch, std::uint64_t seed,
                                         const ExperimentScale& scale);

/// Population of `per_side` clean + `per_side` backdoored models, trained in
/// parallel on `pool` (nullptr = global pool).  Every model derives from its
/// own seed, so the population is identical for any thread count.
std::vector<TrainedSuspicious> build_population(
    const data::Dataset& dataset, const attacks::AttackConfig& attack,
    nn::ArchKind arch, std::size_t per_side, std::uint64_t seed,
    const ExperimentScale& scale, util::ThreadPool* pool = nullptr);

/// Scale-tuned BPROM configuration for a given source dataset.
BpromConfig default_bprom_config(const ExperimentScale& scale,
                                 nn::ArchKind shadow_arch,
                                 std::uint64_t seed);

/// Fit a detector for `source` using `target` as D_T, with D_S equal to
/// `reserved_fraction` of the source test set (the paper's 1/5/10 %).
/// A non-null `pool` is stored in the returned detector's config and must
/// outlive the detector if fit() is ever called on it again.
BpromDetector fit_detector(const data::Dataset& source,
                           const data::Dataset& target,
                           double reserved_fraction, nn::ArchKind shadow_arch,
                           std::uint64_t seed, const ExperimentScale& scale,
                           util::ThreadPool* pool = nullptr);

struct PopulationScores {
  std::vector<double> scores;
  std::vector<int> labels;  // 1 = backdoored

  [[nodiscard]] double auroc() const {
    return metrics::auroc(scores, labels);
  }
  [[nodiscard]] double f1() const { return metrics::best_f1(scores, labels); }
};

/// Run the detector on every model of a population.  The suspicious cohort
/// is inspected in parallel — each task queries only its own model.
PopulationScores score_population(
    const BpromDetector& detector,
    const std::vector<TrainedSuspicious>& population,
    util::ThreadPool* pool = nullptr);

/// Aggregate metrics of one independent (source × attack) bench grid cell:
/// a population built for one attack, scored by one fitted detector.
struct CellResult {
  double auroc = 0.5;
  double f1 = 0.0;
  double mean_asr = 0.0;
  double mean_acc = 0.0;
};

/// Build + score the population for one grid cell (reuses a fitted
/// detector).  Safe to call from inside evaluate_grid's pool tasks: the
/// nested population / scoring parallel_fors are work-assisting.
CellResult evaluate_cell(const BpromDetector& detector,
                         const data::Dataset& source,
                         const attacks::AttackConfig& attack, nn::ArchKind arch,
                         std::uint64_t seed, const ExperimentScale& scale,
                         util::ThreadPool* pool = nullptr);

/// Evaluate one cell per attack kind, sharded over the pool — the cells are
/// independent and each derives its seed only from its attack kind
/// (seed_base + kind), so the grid is bit-identical for any thread count.
std::vector<CellResult> evaluate_grid(
    const BpromDetector& detector, const data::Dataset& source,
    const std::vector<attacks::AttackKind>& kinds, nn::ArchKind arch,
    std::uint64_t seed_base, const ExperimentScale& scale,
    util::ThreadPool* pool = nullptr);

}  // namespace bprom::core
