#include "vp/prompted_model.hpp"

#include <algorithm>
#include <cassert>

#include "util/scratch.hpp"

namespace bprom::vp {

PromptedModel::PromptedModel(const nn::BlackBoxModel& model,
                             VisualPrompt prompt)
    : model_(&model), prompt_(std::move(prompt)) {
  assert(model_->input_shape() == prompt_.canvas());
}

Tensor PromptedModel::predict_proba(const Tensor& target_images) const {
  return model_->predict_proba(prompt_.apply(target_images));
}

double PromptedModel::accuracy(const nn::LabeledData& target_data) const {
  if (target_data.size() == 0) return 0.0;
  const std::size_t k = model_->num_classes();
  std::size_t hits = 0;
  constexpr std::size_t kBatch = 128;
  const std::size_t sample = target_data.images.size() / target_data.size();
  // One staging tensor reused across full batches; only the final ragged
  // batch (if any) reshapes it.  accuracy() is the inner loop of prompt
  // learning, so the per-batch allocation used to dominate small models.
  std::vector<std::size_t> shape = target_data.images.shape();
  shape[0] = std::min(kBatch, target_data.size());
  Tensor batch(shape);
  for (std::size_t begin = 0; begin < target_data.size(); begin += kBatch) {
    const std::size_t end = std::min(begin + kBatch, target_data.size());
    if (end - begin != batch.dim(0)) {
      shape[0] = end - begin;
      batch = Tensor(shape);
    }
    std::copy(target_data.images.data() + begin * sample,
              target_data.images.data() + end * sample, batch.data());
    Tensor probs = predict_proba(batch);
    for (std::size_t i = 0; i < end - begin; ++i) {
      const float* row = probs.data() + i * k;
      std::size_t arg = 0;
      for (std::size_t j = 1; j < k; ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      const int label = target_data.labels[begin + i];
      const int expected =
          mapping_.empty() ? label
                           : mapping_[static_cast<std::size_t>(label)];
      if (static_cast<int>(arg) == expected) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(target_data.size());
}

void PromptedModel::set_label_mapping(std::vector<int> target_to_source) {
  mapping_ = std::move(target_to_source);
}

std::vector<int> fit_frequency_label_mapping(const PromptedModel& prompted,
                                             const nn::LabeledData& dt_train,
                                             std::size_t target_classes) {
  const std::size_t ks = prompted.model().num_classes();
  assert(target_classes <= ks);
  Tensor probs = prompted.predict_proba(dt_train.images);
  // Confusion counts C[t][s], flattened target-major in the thread's
  // scratch arena.  Claimed only after the predict_proba fan-out above —
  // scratch pointers must never straddle a parallel_for.
  double* counts = util::Scratch::tls().buffer<double>(
      util::Scratch::kMetaConfusion, target_classes * ks);
  std::fill(counts, counts + target_classes * ks, 0.0);
  for (std::size_t i = 0; i < dt_train.size(); ++i) {
    const float* row = probs.data() + i * ks;
    std::size_t arg = 0;
    for (std::size_t j = 1; j < ks; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    counts[static_cast<std::size_t>(dt_train.labels[i]) * ks + arg] += 1.0;
  }
  // Greedy one-to-one assignment by descending count.
  std::vector<int> mapping(target_classes, -1);
  std::vector<char> source_used(ks, 0);
  for (std::size_t round = 0; round < target_classes; ++round) {
    double best = -1.0;
    std::size_t bt = 0;
    std::size_t bs = 0;
    for (std::size_t t = 0; t < target_classes; ++t) {
      if (mapping[t] >= 0) continue;
      for (std::size_t s = 0; s < ks; ++s) {
        if (source_used[s]) continue;
        if (counts[t * ks + s] > best) {
          best = counts[t * ks + s];
          bt = t;
          bs = s;
        }
      }
    }
    mapping[bt] = static_cast<int>(bs);
    source_used[bs] = 1;
  }
  return mapping;
}

}  // namespace bprom::vp
