// End-to-end BPROM pipeline tests (smoke scale).
#include <gtest/gtest.h>
#include "core/experiment.hpp"
namespace bprom {
namespace {

core::ExperimentScale tiny_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 200;
  s.suspicious_epochs = 4;
  s.population_per_side = 2;
  s.shadows_per_side = 2;
  s.shadow_epochs = 4;
  s.prompt_epochs = 2;
  s.blackbox_evals = 80;
  s.query_samples = 8;
  s.forest_trees = 40;
  return s;
}

TEST(Bprom, FitAndInspectSmoke) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1, 1000, 400);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2, 600, 300);
  auto scale = tiny_scale();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);
  EXPECT_TRUE(detector.fitted());
  const auto& diag = detector.diagnostics();
  EXPECT_EQ(diag.clean_shadow_prompted_accuracy.size(), 2u);
  EXPECT_EQ(diag.backdoor_shadow_prompted_accuracy.size(), 2u);
  EXPECT_EQ(diag.meta_features.size(), 4u);

  auto cln = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 91, scale);
  nn::BlackBoxAdapter box(*cln.model);
  auto verdict = detector.inspect(box);
  EXPECT_GE(verdict.score, 0.0);
  EXPECT_LE(verdict.score, 1.0);
  EXPECT_GE(verdict.prompted_accuracy, 0.0);
  EXPECT_LE(verdict.prompted_accuracy, 1.0);
  EXPECT_GT(verdict.queries, 0u);
}

TEST(Bprom, BlackBoxDisciplineQueriesCounted) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 3, 600, 300);
  auto scale = tiny_scale();
  auto cln = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 92, scale);
  nn::BlackBoxAdapter box(*cln.model);
  EXPECT_EQ(box.query_count(), 0u);
  nn::Tensor batch({4, 3, 16, 16}, 0.5F);
  box.predict_proba(batch);
  EXPECT_EQ(box.query_count(), 4u);
}

TEST(Bprom, PopulationScoringShapes) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 4, 1000, 400);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 5, 600, 300);
  auto scale = tiny_scale();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);
  auto pop = core::build_population(src, atk, nn::ArchKind::kResNet18Mini,
                                    2, 40, scale);
  EXPECT_EQ(pop.size(), 4u);
  auto scores = core::score_population(detector, pop);
  EXPECT_EQ(scores.scores.size(), 4u);
  const double auroc = scores.auroc();
  EXPECT_GE(auroc, 0.0);
  EXPECT_LE(auroc, 1.0);
}

TEST(Bprom, ExperimentScaleRespondsToEnv) {
  auto s = core::ExperimentScale::current();
  EXPECT_GT(s.suspicious_train, 0u);
  EXPECT_GT(s.shadows_per_side, 0u);
}

TEST(Bprom, TrainedBackdooredModelHasTriggers) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 6, 1500, 500);
  core::ExperimentScale scale = tiny_scale();
  scale.suspicious_train = 400;
  scale.suspicious_epochs = 6;
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 1);
  auto m = core::train_backdoored_model(src, atk, nn::ArchKind::kResNet18Mini,
                                        93, scale);
  EXPECT_GT(m.asr, 0.7);
  EXPECT_GT(m.clean_accuracy, 0.75);
}

}  // namespace
}  // namespace bprom
