// Tables 19-20: external dataset D_T changed to svhn-like.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  auto svhn = data::make_dataset(data::DatasetKind::kSvhn, 3);
  const auto arch = nn::ArchKind::kResNet18Mini;
  for (auto* src : {&env.gtsrb, &env.cifar10}) {
    auto detector = core::fit_detector(*src, svhn, 0.10, arch, 7, env.scale);
    std::vector<std::string> header = {"metric"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    std::vector<std::string> f1 = {"F1"};
    std::vector<std::string> au = {"AUROC"};
    double af = 0, aa = 0;
    for (const auto& cell : bprom_row(detector, *src, arch, 900, env.scale)) {
      f1.push_back(util::cell(cell.f1));
      au.push_back(util::cell(cell.auroc));
      af += cell.f1;
      aa += cell.auroc;
    }
    f1.push_back(util::cell(af / main_attacks().size()));
    au.push_back(util::cell(aa / main_attacks().size()));
    table.add_row(f1);
    table.add_row(au);
    std::printf("== Tables 19-20 (D_S=%s, D_T=svhn-like) ==\n", src->profile.name.c_str());
    table.print();
  }
  return 0;
}
