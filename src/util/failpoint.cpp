#include "util/failpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace bprom::util {

namespace detail {
// relaxed: justified in failpoint.hpp — arm/disarm visibility only.
std::atomic<std::uint32_t> g_armed_count{0};
}  // namespace detail

namespace {

/// Every failpoint site name compiled into the tree.  tools/bprom_lint
/// cross-checks BPROM_FAILPOINT(...) call sites against this table (and
/// vice versa), keyed on the marker comments — keep one name per line.
const char* const kRegistry[] = {
    // failpoint-registry-begin
    "io.read.open",           // Reader::from_file: fail the open
    "io.read.short",          // Reader::from_file: truncate the read
    "io.save.open",           // Writer::save_file: fail opening the temp file
    "io.save.write",          // Writer::save_file: fail/shorten the write
    "io.save.fsync.file",     // Writer::save_file: fail fsync of the temp file
    "io.save.rename",         // Writer::save_file: fail/crash at rename
    "io.save.fsync.dir",      // Writer::save_file: fail fsync of the parent dir
    "store.generation.write", // DetectorStore::bump_generation: fail the write
    "store.lock.crash",       // StoreLock: crash while holding the lock
    "store.publish.crash",    // AuditEngine::publish: between put and bump
    "net.connect",            // timeout-aware connect_to
    "net.send",               // timeout-aware send_all
    "net.recv",               // timeout-aware recv_some
    "net.recv.stall",         // timeout-aware recv_some: delay before reading
    // failpoint-registry-end
};

enum class TriggerKind : std::uint8_t { kAlways, kNth, kEveryK, kProb };

struct PointState {
  TriggerKind trigger = TriggerKind::kAlways;
  std::uint64_t n = 0;          // kNth: 1-based hit index; kEveryK: period
  double prob = 0.0;            // kProb
  Rng rng{0};                   // kProb: seeded, deterministic
  FailpointAction action = FailpointAction::kNone;
  std::uint64_t arg = 0;
  std::uint64_t hits = 0;       // evaluations while armed
  bool fired_once = false;      // kNth: already fired
};

Mutex g_mu;
// Arming happens a handful of times per process, never on a hot path, so a
// node-based ordered map is fine here.
std::map<std::string, PointState>& points() BPROM_REQUIRES(g_mu) {
  static std::map<std::string, PointState> m;
  return m;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_action(const std::string& text, PointState* st,
                  std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  if (text == "err") {
    st->action = FailpointAction::kError;
    return true;
  }
  if (text.rfind("short:", 0) == 0) {
    st->action = FailpointAction::kShort;
    if (!parse_u64(text.substr(6), &st->arg))
      return fail("bad short: byte count in '" + text + "'");
    return true;
  }
  if (text.rfind("delay:", 0) == 0) {
    st->action = FailpointAction::kDelay;
    if (!parse_u64(text.substr(6), &st->arg))
      return fail("bad delay: millisecond count in '" + text + "'");
    return true;
  }
  if (text.rfind("exit:", 0) == 0) {
    st->action = FailpointAction::kExit;
    if (!parse_u64(text.substr(5), &st->arg))
      return fail("bad exit: code in '" + text + "'");
    return true;
  }
  return fail("unknown action '" + text + "'");
}

bool parse_trigger(const std::string& text, PointState* st,
                   std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  if (text.rfind("every:", 0) == 0) {
    st->trigger = TriggerKind::kEveryK;
    if (!parse_u64(text.substr(6), &st->n) || st->n == 0)
      return fail("bad every: period in '" + text + "'");
    return true;
  }
  if (text.rfind("p:", 0) == 0) {
    const std::size_t colon = text.find(':', 2);
    if (colon == std::string::npos)
      return fail("p: trigger needs p:PROB:SEED in '" + text + "'");
    const std::string prob = text.substr(2, colon - 2);
    std::uint64_t seed = 0;
    if (!parse_u64(text.substr(colon + 1), &seed))
      return fail("bad p: seed in '" + text + "'");
    char* end = nullptr;
    st->prob = std::strtod(prob.c_str(), &end);
    if (end == prob.c_str() || *end != '\0' || st->prob < 0.0 ||
        st->prob > 1.0)
      return fail("bad p: probability in '" + text + "'");
    st->trigger = TriggerKind::kProb;
    st->rng = Rng(seed);
    return true;
  }
  st->trigger = TriggerKind::kNth;
  if (!parse_u64(text, &st->n) || st->n == 0)
    return fail("bad trigger '" + text + "' (want N, every:K, or p:P:S)");
  return true;
}

/// One `name=...` entry.
bool parse_entry(const std::string& entry,
                 std::map<std::string, PointState>* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0)
    return fail("entry '" + entry + "' is not name=action");
  const std::string name = entry.substr(0, eq);
  if (!failpoint_registered(name))
    return fail("unknown failpoint '" + name + "'");
  PointState st;
  std::string rhs = entry.substr(eq + 1);
  const std::size_t arrow = rhs.find("->");
  if (arrow != std::string::npos) {
    if (!parse_trigger(rhs.substr(0, arrow), &st, error)) return false;
    rhs = rhs.substr(arrow + 2);
  }
  if (!parse_action(rhs, &st, error)) return false;
  (*out)[name] = st;
  return true;
}

}  // namespace

bool failpoint_registered(const std::string& name) {
  for (const char* reg : kRegistry)
    if (name == reg) return true;
  return false;
}

std::vector<std::string> failpoint_names() {
  std::vector<std::string> names(std::begin(kRegistry), std::end(kRegistry));
  std::sort(names.begin(), names.end());
  return names;
}

bool failpoints_arm(const std::string& spec, std::string* error) {
  std::map<std::string, PointState> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    if (!entry.empty() && !parse_entry(entry, &parsed, error)) return false;
    start = end + 1;
  }
  MutexLock lock(g_mu);
  points() = std::move(parsed);
  // relaxed: justified in failpoint.hpp.
  detail::g_armed_count.store(
      static_cast<std::uint32_t>(points().size()), std::memory_order_relaxed);
  return true;
}

void failpoints_clear() {
  MutexLock lock(g_mu);
  points().clear();
  // relaxed: justified in failpoint.hpp.
  detail::g_armed_count.store(0, std::memory_order_relaxed);
}

std::uint64_t failpoint_hits(const std::string& name) {
  MutexLock lock(g_mu);
  const auto it = points().find(name);
  return it == points().end() ? 0 : it->second.hits;
}

FailpointHit failpoint_eval(const char* name) {
  FailpointHit hit;
  {
    MutexLock lock(g_mu);
    const auto it = points().find(name);
    if (it == points().end()) return hit;
    PointState& st = it->second;
    ++st.hits;
    bool fire = false;
    switch (st.trigger) {
      case TriggerKind::kAlways:
        fire = true;
        break;
      case TriggerKind::kNth:
        fire = !st.fired_once && st.hits == st.n;
        if (fire) st.fired_once = true;
        break;
      case TriggerKind::kEveryK:
        fire = st.hits % st.n == 0;
        break;
      case TriggerKind::kProb:
        fire = st.rng.bernoulli(st.prob);
        break;
    }
    if (!fire) return hit;
    hit.action = st.action;
    hit.arg = st.arg;
  }
  if (hit.action == FailpointAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    return FailpointHit{};  // delay is transparent to the site
  }
  if (hit.action == FailpointAction::kExit) {
    // Simulated crash: no atexit handlers, no flushing, no unwinding —
    // exactly what SIGKILL or a power cut leaves behind.
    _exit(static_cast<int>(hit.arg));
  }
  return hit;
}

void failpoints_arm_from_env() {
  static bool done = false;  // idempotence; races are benign (same spec)
  if (done) return;
  done = true;
  const char* spec = std::getenv("BPROM_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string error;
  if (!failpoints_arm(spec, &error)) {
    std::fprintf(stderr, "BPROM_FAILPOINTS: %s\n", error.c_str());
    std::abort();  // a typo'd scenario must not silently run fault-free
  }
}

namespace {
/// Arm from the environment as early as dynamic initialization allows.
/// Code needing a stronger guarantee calls failpoints_arm_from_env() itself.
const bool g_env_armed = (failpoints_arm_from_env(), true);
}  // namespace

}  // namespace bprom::util
