// MLaaS marketplace audit — the paper's §1 motivating scenario.
//
// A model marketplace serves N black-box classifiers (some backdoored with
// a mix of attacks).  The auditor screens every model with BPROM first
// (model-level, front-line), then applies the input-level STRIP detector
// only to flagged models — the deployment order §1 argues for.
//
// This example refits the detector in-process every run.  For the
// long-lived deployment — fit once, persist, and serve batched audits
// across process restarts — see examples/serve_audit.cpp, which drives the
// same marketplace through serve::DetectorStore + serve::AuditService.
#include <cstdio>
#include "core/experiment.hpp"
#include "defenses/evaluate.hpp"
#include "util/table.hpp"

int main() {
  using namespace bprom;
  auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);

  std::printf("== MLaaS audit: screening a model marketplace ==\n");
  // The marketplace: clean models plus an assortment of attacks.
  struct Listing {
    core::TrainedSuspicious model;
    std::string description;
  };
  std::vector<Listing> marketplace;
  std::size_t id = 0;
  for (int i = 0; i < 2; ++i) {
    marketplace.push_back({core::train_clean_model(
                               src, nn::ArchKind::kResNet18Mini, 800 + id++, scale),
                           "vendor upload (clean)"});
  }
  for (auto kind : {attacks::AttackKind::kBadNets, attacks::AttackKind::kWaNet,
                    attacks::AttackKind::kAdapBlend}) {
    auto atk = attacks::AttackConfig::defaults(kind, static_cast<int>(id % 10));
    marketplace.push_back({core::train_backdoored_model(
                               src, atk, nn::ArchKind::kResNet18Mini, 900 + id++, scale),
                           "vendor upload (" + attacks::attack_name(kind) + ")"});
  }

  std::printf("fitting BPROM detector (defender side, %zu+%zu shadows)...\n",
              scale.shadows_per_side, scale.shadows_per_side);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  std::printf("\n%-4s %-30s %-8s %-8s %s\n", "id", "listing", "score",
              "verdict", "follow-up");
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    auto& listing = marketplace[i];
    nn::BlackBoxAdapter box(*listing.model.model);
    auto verdict = detector.inspect(box);
    std::string follow = "-";
    if (verdict.backdoored) {
      // Flagged: deploy input-level detection per query (STRIP).
      util::Rng rng(40 + i);
      auto atk = listing.model.backdoored
                     ? listing.model.attack
                     : attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);
      auto eval = defenses::evaluate_input_level(
          defenses::DefenseKind::kStrip, *listing.model.model, src.test, atk,
          30, rng);
      follow = "STRIP per-input AUROC " + util::cell(eval.auroc);
    }
    std::printf("%-4zu %-30s %-8.3f %-8s %s\n", i, listing.description.c_str(),
                verdict.score, verdict.backdoored ? "BACKDOOR" : "clean",
                follow.c_str());
  }
  std::printf("\nGround truth: listings 0-1 clean; 2-4 backdoored.\n");
  return 0;
}
