#include "io/binary.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/failpoint.hpp"

namespace bprom::io {
namespace {

constexpr std::array<char, 4> kMagic = {'B', 'P', 'R', 'M'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

std::uint64_t load_le(const std::uint8_t* p, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

// --------------------------------------------------------------- Writer

void Writer::write_u8(std::uint8_t v) { payload_.push_back(v); }

void Writer::write_u32(std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::write_u64(std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::write_i32(std::int32_t v) {
  write_u32(static_cast<std::uint32_t>(v));
}

void Writer::write_f32(float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(bits);
}

void Writer::write_f64(double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void Writer::write_string(const std::string& s) {
  write_u64(s.size());
  for (char c : s) payload_.push_back(static_cast<std::uint8_t>(c));
}

void Writer::write_tag(const char (&tag)[5]) {
  for (std::size_t i = 0; i < 4; ++i) {
    payload_.push_back(static_cast<std::uint8_t>(tag[i]));
  }
}

void Writer::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  for (float x : v) write_f32(x);
}

void Writer::write_i32_vec(const std::vector<int>& v) {
  write_u64(v.size());
  for (int x : v) write_i32(x);
}

void Writer::write_u64_vec(const std::vector<std::size_t>& v) {
  write_u64(v.size());
  for (std::size_t x : v) write_u64(x);
}

void Writer::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

std::vector<std::uint8_t> Writer::finish() const {
  std::vector<std::uint8_t> out;
  out.reserve(payload_.size() + 20);
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(kFormatVersion >> (8 * i)));
  }
  const std::uint64_t len = payload_.size();
  for (std::size_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), payload_.begin(), payload_.end());
  const std::uint32_t crc = crc32(payload_.data(), payload_.size());
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

namespace {

/// RAII fd so every throw below closes cleanly.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// write(2) the whole buffer, retrying on EINTR / partial progress.
bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void Writer::save_file(const std::string& path) const {
  const auto bytes = finish();
  // Stage into a sibling temp file and rename into place: a concurrent
  // reader (e.g. a store resolve racing a publish) must never observe a
  // half-written container, and rename within one directory is atomic.
  //
  // Durability order matters: fsync the temp file BEFORE the rename (else a
  // crash can leave the final name pointing at zero-length or torn data on
  // journaled filesystems), and fsync the parent directory AFTER (else the
  // rename itself — the directory entry — can be lost on power cut even
  // though the bytes hit the platter).
  const std::string tmp = path + ".tmp";
  Fd out;
  if (auto hit = BPROM_FAILPOINT("io.save.open")) {
    (void)hit;
    throw IoError("injected open failure: " + tmp, ErrorKind::kIo);
  }
  out.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out.fd < 0)
    throw IoError("cannot open for writing: " + tmp, ErrorKind::kIo);
  std::size_t to_write = bytes.size();
  if (auto hit = BPROM_FAILPOINT("io.save.write")) {
    if (hit.action == util::FailpointAction::kShort) {
      // Write only the first `arg` bytes — a torn write — then report the
      // failure the real kernel would have surfaced.
      to_write = std::min<std::size_t>(to_write, hit.arg);
      (void)write_fully(out.fd, bytes.data(), to_write);
    }
    throw IoError("injected short write: " + tmp, ErrorKind::kIo);
  }
  if (!write_fully(out.fd, bytes.data(), to_write))
    throw IoError("short write: " + tmp, ErrorKind::kIo);
  if (auto hit = BPROM_FAILPOINT("io.save.fsync.file")) {
    (void)hit;
    throw IoError("injected fsync failure: " + tmp, ErrorKind::kIo);
  }
  if (::fsync(out.fd) != 0)
    throw IoError("fsync failed: " + tmp, ErrorKind::kIo);
  if (::close(out.fd) != 0) {
    out.fd = -1;
    throw IoError("close failed: " + tmp, ErrorKind::kIo);
  }
  out.fd = -1;
  if (auto hit = BPROM_FAILPOINT("io.save.rename")) {
    (void)hit;
    throw IoError("injected rename failure: " + tmp, ErrorKind::kIo);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("cannot move " + tmp + " into place: " +
                      std::string(std::strerror(errno)),
                  ErrorKind::kIo);
  }
  if (auto hit = BPROM_FAILPOINT("io.save.fsync.dir")) {
    (void)hit;
    throw IoError("injected directory fsync failure: " + path,
                  ErrorKind::kIo);
  }
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  Fd dir;
  dir.fd = ::open(parent.empty() ? "." : parent.c_str(),
                  O_RDONLY | O_DIRECTORY);
  if (dir.fd < 0 || ::fsync(dir.fd) != 0) {
    throw IoError("cannot fsync parent directory of " + path,
                  ErrorKind::kIo);
  }
}

// --------------------------------------------------------------- Reader

Reader::Reader(std::vector<std::uint8_t> bytes) {
  if (bytes.size() < 20) throw IoError("container truncated: no header");
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    throw IoError("bad magic: not a .bprom container");
  }
  const auto version = static_cast<std::uint32_t>(load_le(&bytes[4], 4));
  if (version != kFormatVersion) {
    // A newer container (from a newer build's store) is rejected cleanly so
    // callers can say "upgrade me" instead of crashing on garbage.
    const char* hint = version > kFormatVersion
                           ? " — written by a newer build than this one"
                           : "";
    throw IoError("unsupported format version " + std::to_string(version) +
                      " (this build supports " +
                      std::to_string(kFormatVersion) + ")" + hint,
                  ErrorKind::kVersionMismatch);
  }
  const std::uint64_t len = load_le(&bytes[8], 8);
  if (bytes.size() != 20 + len) {
    throw IoError("container truncated: payload length mismatch");
  }
  const auto stored_crc = static_cast<std::uint32_t>(load_le(&bytes[16 + len], 4));
  const std::uint32_t actual_crc = crc32(&bytes[16], len);
  if (stored_crc != actual_crc) throw IoError("payload CRC mismatch");
  payload_.assign(bytes.begin() + 16, bytes.begin() + 16 + static_cast<long>(len));
}

Reader Reader::from_file(const std::string& path) {
  if (auto hit = BPROM_FAILPOINT("io.read.open")) {
    (void)hit;
    throw IoError("injected open failure: " + path, ErrorKind::kIo);
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::error_code ec;
    const auto kind = std::filesystem::exists(path, ec) ? ErrorKind::kIo
                                                        : ErrorKind::kNotFound;
    throw IoError("cannot open for reading: " + path, kind);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw IoError("short read: " + path, ErrorKind::kIo);
  if (auto hit = BPROM_FAILPOINT("io.read.short")) {
    // Hand the parser a truncated view — it must produce a typed kCorrupt,
    // exactly as if the file itself had been torn.
    if (hit.action == util::FailpointAction::kShort &&
        bytes.size() > hit.arg) {
      bytes.resize(hit.arg);
    } else {
      throw IoError("injected read failure: " + path, ErrorKind::kIo);
    }
  }
  return Reader(std::move(bytes));
}

void Reader::need(std::size_t n) const {
  // Written as a subtraction so a huge `n` cannot wrap the comparison.
  if (n > payload_.size() - pos_) {
    throw IoError("payload truncated: need " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_));
  }
}

std::uint8_t Reader::read_u8() {
  need(1);
  return payload_[pos_++];
}

std::uint32_t Reader::read_u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(load_le(&payload_[pos_], 4));
  pos_ += 4;
  return v;
}

std::uint64_t Reader::read_u64() {
  need(8);
  const std::uint64_t v = load_le(&payload_[pos_], 8);
  pos_ += 8;
  return v;
}

std::int32_t Reader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

float Reader::read_f32() {
  const std::uint32_t bits = read_u32();
  float v = 0.0F;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Reader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::read_string() {
  const std::uint64_t n = read_u64();
  need(n);
  std::string s(payload_.begin() + static_cast<long>(pos_),
                payload_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return s;
}

void Reader::expect_tag(const char (&tag)[5]) {
  need(4);
  if (!std::equal(tag, tag + 4, payload_.begin() + static_cast<long>(pos_))) {
    throw IoError(std::string("chunk tag mismatch: expected '") + tag + "'");
  }
  pos_ += 4;
}

std::uint64_t Reader::read_count(std::size_t elem_size) {
  const std::uint64_t n = read_u64();
  // Guard the multiply so a corrupt length prefix cannot overflow or
  // trigger a huge allocation before the bounds check fires.
  if (n > remaining() / elem_size) {
    throw IoError("payload truncated: element count " + std::to_string(n) +
                  " exceeds remaining bytes");
  }
  return n;
}

std::vector<float> Reader::read_f32_vec() {
  const std::uint64_t n = read_count(4);
  std::vector<float> v(n);
  for (auto& x : v) x = read_f32();
  return v;
}

std::vector<int> Reader::read_i32_vec() {
  const std::uint64_t n = read_count(4);
  std::vector<int> v(n);
  for (auto& x : v) x = read_i32();
  return v;
}

std::vector<std::size_t> Reader::read_u64_vec() {
  const std::uint64_t n = read_count(8);
  std::vector<std::size_t> v(n);
  for (auto& x : v) x = static_cast<std::size_t>(read_u64());
  return v;
}

std::vector<double> Reader::read_f64_vec() {
  const std::uint64_t n = read_count(8);
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace bprom::io
