// `bprom::api::AuditEngine` — the public entry point for fitting, loading,
// and auditing BPROM detectors.
//
// The engine owns a directory-backed detector store and dispatches batched
// audits over a thread pool.  Detectors are published under versioned names
// ("marketplace@v1", "@v2", ...): publishing a refreshed fit rolls the bare
// name over atomically while audits already in flight finish on the version
// they resolved — a store handle is a shared_ptr, so an old version lives
// exactly as long as someone is still inspecting with it.
//
// Everything fallible returns `Status`/`Result<T>` (api/status.hpp); no
// exception and no abort crosses this boundary.  The lower-level
// `serve::AuditService` / `serve::DetectorStore` / `io::*_file` entry
// points are internal — new consumers should not reach below this header.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"
#include "io/binary.hpp"
#include "serve/detector_store.hpp"
#include "util/mpmc_ring.hpp"
#include "util/profiler.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace bprom::api {

/// Map an internal io failure onto the façade's typed codes.
Status status_from(const io::IoError& error);

struct EngineConfig {
  /// Backing directory of the versioned detector store (created if absent).
  std::string store_dir;
  /// Root seed the per-request inspection salts are split from.  The salt a
  /// request sees is a function of (seed, batch index) only, so batches are
  /// bit-identical for any thread count — and identical to the internal
  /// serve::AuditService with the same seed (its historical default, 97).
  std::uint64_t seed = 97;
  /// Pool audits and fits fan out on; nullptr = process-wide default pool
  /// (BPROM_THREADS).  Borrowed — must outlive the engine.
  util::ThreadPool* pool = nullptr;
  /// Bounded capacity of the async batch ring (rounded up to a power of
  /// two).  A full ring is backpressure: audit_async blocks until a worker
  /// frees a slot, so a flood of submissions degrades into queueing delay
  /// (visible as queue_wait in the profiler) instead of unbounded memory.
  std::size_t async_queue_capacity = 64;
  /// Dedicated serving workers draining the ring.  Each worker runs one
  /// batch at a time (the batch itself fans out on `pool`), so this is the
  /// cross-batch concurrency of the async path.
  std::size_t async_workers = 2;
  /// Run DetectorStore::recover() during construction: quarantine torn or
  /// corrupt artifacts, sweep leftover publish temp files, and repair the
  /// generation counter before the first request.  Off by default — opening
  /// a store with a deliberately-corrupt artifact must keep returning typed
  /// kCorruptArtifact from audits (existing behavior), not silently mutate
  /// the directory; recovery is an explicit operational choice.
  bool recover_on_start = false;
};

/// Exact running totals since construction (relaxed atomics; a snapshot,
/// not a transaction), plus the always-on profiler's latency counters.
struct EngineStats {
  std::uint64_t requests = 0;   ///< audit requests processed, ok or not
  std::uint64_t verdicts = 0;   ///< requests that produced a verdict
  std::uint64_t queries = 0;    ///< black-box queries spent, exact
  std::uint64_t rollovers = 0;  ///< publishes that superseded a live version
  std::uint64_t deadline_misses = 0;  ///< requests failed kDeadlineExceeded
  /// Cross-process store generation at snapshot time (counts publishes into
  /// the directory by every engine, not just this one).
  std::uint64_t store_generation = 0;
  /// Per-stage latency counters (resolve / inspect / request / queue_wait /
  /// queue_depth / batch): count, avg, min/max, and p50/p95/p99 — raw units
  /// nanoseconds for timers, items for queue_depth.
  util::ProfilerSnapshot profile;
};

class AuditEngine {
 public:
  /// Never throws: a store-directory failure is deferred into status() and
  /// every subsequent operation reports it.
  explicit AuditEngine(EngineConfig config);

  /// Drains the async ring and joins the serving workers: every batch
  /// accepted by audit_async() — running or still queued — completes and
  /// its future is fulfilled before the engine's memory goes away.
  ~AuditEngine();

  AuditEngine(const AuditEngine&) = delete;
  AuditEngine& operator=(const AuditEngine&) = delete;

  /// OK when the engine is usable; the construction failure otherwise.
  [[nodiscard]] const Status& status() const { return init_status_; }

  /// Fit a detector from the request's datasets and publish it under
  /// `request.name` as the next version of that name.
  Result<DetectorInfo> fit(const FitRequest& request);

  /// Publish an already-fitted detector as the next version of `name`
  /// ("name@vN" on disk) and atomically roll the bare name over to it.
  Result<DetectorInfo> publish(const std::string& name,
                               core::BpromDetector detector);

  /// Crash-recovery scan of the backing store (see
  /// serve::DetectorStore::recover): quarantines torn/corrupt artifacts and
  /// leftover temp files into `<store>/quarantine/` (never deleting),
  /// repairs the generation counter, and reports everything it did.  Safe
  /// against concurrent publishers (takes the publish mutex and the
  /// cross-process StoreLock); a healthy store comes back `clean()`.
  Result<serve::RecoveryReport> recover();

  /// Metadata of a published detector; loads (and caches) the artifact.
  /// Accepts bare names (newest version) and pinned "name@vN" forms.
  Result<DetectorInfo> info(const std::string& name);

  /// Every published (name, version) pair on disk, sorted.  Metadata that
  /// needs the artifact loaded (class counts) is zero here — use info().
  Result<std::vector<DetectorInfo>> list() const;

  /// In-process escape hatch: the live handle a name currently resolves to.
  /// The handle stays valid across rollovers — that is the rollover
  /// guarantee itself.
  Result<std::shared_ptr<const core::BpromDetector>> detector(
      const std::string& name);

  /// Audit a batch.  Per-request failures (unknown detector, null model,
  /// exhausted budget, missed deadline) come back as non-OK statuses in the
  /// matching response — the call itself never throws and responses keep
  /// batch order.  Each distinct detector reference is resolved once, on
  /// entry, so one batch sees one consistent version even mid-rollover.
  [[nodiscard]] std::vector<AuditResponse> audit(
      const std::vector<AuditRequest>& batch);

  /// Same semantics, off the calling thread: the batch is handed to the
  /// serving workers through a bounded lock-free MPMC ring and audited on
  /// the engine's pool.  Safe to call concurrently with publish() and from
  /// many threads at once; the batch audits whatever versions it resolves
  /// when a worker picks it up.  A full ring blocks the caller
  /// (backpressure) until a slot frees.  Deadlines anchor at submission,
  /// so ring wait counts against them.
  [[nodiscard]] std::future<std::vector<AuditResponse>> audit_async(
      std::vector<AuditRequest> batch);

  /// Completion delivered by callback instead of future.  Same queueing,
  /// backpressure, and deadline semantics as the future overload; `on_done`
  /// runs on a serving worker (or inline on the caller when the ring is
  /// already closed) exactly once, and MUST NOT throw — event-driven
  /// callers (the net front end) use it to release admission slots and
  /// drain barriers, so a lost invocation would wedge them.  If the batch
  /// itself dies exceptionally, the callback still fires with per-request
  /// kInternal statuses.
  using AuditCallback = std::function<void(std::vector<AuditResponse>)>;
  void audit_async(std::vector<AuditRequest> batch, AuditCallback on_done);

  [[nodiscard]] EngineStats stats() const;

 private:
  struct Resolved {
    std::shared_ptr<const core::BpromDetector> handle;
    DetectorInfo info;
  };

  /// Resolve "name" / "name@vN" to a live handle + metadata.
  Result<Resolved> resolve(const std::string& reference);
  /// Newest version of `base` this engine has published or resolved (the
  /// in-memory floor the disk scan tops up); 0 when unknown.
  [[nodiscard]] std::uint32_t latest_floor_locked(const std::string& base)
      const BPROM_REQUIRES(state_mu_);
  /// Shared batch loop; `batch_clock` anchors deadline_ms (started at
  /// submission by audit_async, at entry by the synchronous audit).
  std::vector<AuditResponse> audit_from(const std::vector<AuditRequest>& batch,
                                        util::Stopwatch batch_clock);
  /// Newest version of `base` on disk (0 when unpublished).  A bare legacy
  /// "<base>.bprom" container counts as version 1.
  [[nodiscard]] std::uint32_t latest_on_disk(const std::string& base) const;
  [[nodiscard]] util::ThreadPool* pool() const { return config_.pool; }

  EngineConfig config_;
  Status init_status_;
  /// Engaged iff init_status_.ok().
  std::optional<serve::DetectorStore> store_;

  /// Serializes publishes so two concurrent publishes cannot mint the same
  /// version number.  Always taken before state_mu_ (publish updates the
  /// rollover pointer at the end of its critical section) — the annotation
  /// lets clang prove no path inverts the order.
  util::Mutex publish_mu_ BPROM_ACQUIRED_BEFORE(state_mu_);
  /// Guards latest_: the in-memory rollover pointer (name -> newest
  /// version published or resolved by this engine).
  mutable util::Mutex state_mu_;
  std::map<std::string, std::uint32_t> latest_ BPROM_GUARDED_BY(state_mu_);

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> verdicts_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> rollovers_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};

  /// Always-on latency telemetry.  Mutable: stats() is logically const but
  /// a snapshot flips the profiler's epoch buffers.
  mutable util::Profiler profiler_;

  /// One queued async batch: the requests, its completion (a promise for
  /// the future overload, a callback for the callback overload — exactly
  /// one is live), and the submission clock deadlines anchor to.
  struct AsyncJob {
    std::vector<AuditRequest> batch;
    std::promise<std::vector<AuditResponse>> done;
    AuditCallback callback;
    util::Stopwatch submitted;
  };

  /// Worker loop: pop batches off the ring until it is closed and drained.
  void serve_loop();

  /// Bounded lock-free hand-off from audit_async() to the serving workers
  /// (replaces the PR 4 mutex+condvar pending counter).
  util::MpmcRing<AsyncJob> async_ring_;
  // Dedicated long-lived serving threads: routing them through the
  // work-assisting ThreadPool would deadlock the pool (workers block in
  // pop_wait), and they never touch batch-order-dependent math.
  // bprom-lint: allow(raw-thread)
  std::vector<std::thread> serve_workers_;
};

}  // namespace bprom::api
