#include "serve/audit_service.hpp"

#include <exception>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace bprom::serve {

std::vector<std::uint64_t> split_request_salts(std::uint64_t seed,
                                               std::size_t n) {
  util::Rng root(seed);
  std::vector<std::uint64_t> salts(n);
  for (std::size_t i = 0; i < n; ++i) salts[i] = root.split(i + 1).next_u64();
  return salts;
}

AuditService::AuditService(std::shared_ptr<const core::BpromDetector> detector,
                           AuditServiceConfig config)
    : detector_(std::move(detector)), config_(config) {}

AuditService::AuditService(DetectorStore& store, const std::string& name,
                           AuditServiceConfig config)
    : AuditService(store.get(name), config) {}

std::vector<AuditResponse> AuditService::audit(
    const std::vector<AuditRequest>& batch) const {
  const std::size_t n = batch.size();
  std::vector<AuditResponse> responses(n);

  const std::vector<std::uint64_t> salts = split_request_salts(config_.seed, n);

  util::parallel_for(n, [&](std::size_t i) {
    AuditResponse& response = responses[i];
    response.model_id = batch[i].model_id;
    util::Stopwatch watch;
    // Validate up front: the inspect() asserts are compiled out in Release
    // builds, and one malformed request must not take the batch down.
    if (batch[i].model == nullptr) {
      response.error = "null model";
    } else if (!detector_->fitted()) {
      response.error = "detector not fitted";
    } else if (batch[i].model->num_classes() != detector_->source_classes()) {
      response.error = "model class count does not match the detector";
    } else {
      try {
        response.verdict = detector_->inspect(*batch[i].model, salts[i]);
        response.ok = true;
      } catch (const std::exception& e) {
        response.error = e.what();
      }
    }
    response.seconds = watch.seconds();
  }, config_.pool);
  return responses;
}

}  // namespace bprom::serve
