#include "vp/prompt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/ops.hpp"
#include "util/scratch.hpp"

namespace bprom::vp {
namespace {

float logistic(float v) { return 1.0F / (1.0F + std::exp(-v)); }

}  // namespace

VisualPrompt::VisualPrompt(ImageShape canvas, PromptMode mode)
    : canvas_(canvas),
      mode_(mode),
      inner_h_(canvas.height / 2),
      inner_w_(canvas.width / 2),
      top_((canvas.height - inner_h_) / 2),
      left_((canvas.width - inner_w_) / 2) {
  if (mode_ == PromptMode::kAdditiveCoarse) {
    // Precompute bilinear upsample weights from the kGrid x kGrid node grid
    // to the full canvas (per spatial position; channels share geometry).
    const std::size_t hw = canvas_.height * canvas_.width;
    coarse_weight_.assign(hw * kGrid * kGrid, 0.0F);
    for (std::size_t y = 0; y < canvas_.height; ++y) {
      for (std::size_t x = 0; x < canvas_.width; ++x) {
        const float gy = static_cast<float>(kGrid - 1) *
                         static_cast<float>(y) /
                         static_cast<float>(canvas_.height - 1);
        const float gx = static_cast<float>(kGrid - 1) *
                         static_cast<float>(x) /
                         static_cast<float>(canvas_.width - 1);
        const auto y0 = static_cast<std::size_t>(gy);
        const auto x0 = static_cast<std::size_t>(gx);
        const std::size_t y1 = std::min(y0 + 1, kGrid - 1);
        const std::size_t x1 = std::min(x0 + 1, kGrid - 1);
        const float fy = gy - static_cast<float>(y0);
        const float fx = gx - static_cast<float>(x0);
        float* w = &coarse_weight_[(y * canvas_.width + x) * kGrid * kGrid];
        w[y0 * kGrid + x0] += (1 - fy) * (1 - fx);
        w[y1 * kGrid + x0] += fy * (1 - fx);
        w[y0 * kGrid + x1] += (1 - fy) * fx;
        w[y1 * kGrid + x1] += fy * fx;
      }
    }
    theta_.assign(canvas_.channels * kGrid * kGrid, 0.0F);
    return;
  }
  for (std::size_t c = 0; c < canvas_.channels; ++c) {
    for (std::size_t y = 0; y < canvas_.height; ++y) {
      for (std::size_t x = 0; x < canvas_.width; ++x) {
        if (mode_ == PromptMode::kAdditive || is_border(y, x)) {
          border_pos_.push_back((c * canvas_.height + y) * canvas_.width + x);
        }
      }
    }
  }
  theta_.assign(border_pos_.size(), 0.0F);
}

bool VisualPrompt::is_border(std::size_t y, std::size_t x) const {
  return y < top_ || y >= top_ + inner_h_ || x < left_ ||
         x >= left_ + inner_w_;
}

Tensor VisualPrompt::apply(const Tensor& target) const {
  assert(target.rank() == 4 && target.dim(1) == canvas_.channels);
  // Downscale if the target arrives at full canvas resolution.
  Tensor small = (target.dim(2) == inner_h_ && target.dim(3) == inner_w_)
                     ? target
                     : data::downscale2x(target);
  assert(small.dim(2) == inner_h_ && small.dim(3) == inner_w_);

  const std::size_t n = small.dim(0);
  Tensor canvas({n, canvas_.channels, canvas_.height, canvas_.width});
  const std::size_t plane = canvas_.height * canvas_.width * canvas_.channels;
  if (mode_ == PromptMode::kBorder) {
    // Border fill (same for every sample) + embedded content.  The
    // squashed field lives in the thread's scratch arena: apply() runs once
    // per optimizer evaluation, so in steady state this allocates nothing.
    // No pool re-entry happens between here and the last read below.
    float* squashed = util::Scratch::tls().buffer<float>(
        util::Scratch::kPromptField, theta_.size());
    for (std::size_t i = 0; i < theta_.size(); ++i) {
      squashed[i] = logistic(theta_[i]);
    }
    for (std::size_t b = 0; b < n; ++b) {
      float* img = canvas.data() + b * plane;
      for (std::size_t i = 0; i < border_pos_.size(); ++i) {
        img[border_pos_[i]] = squashed[i];
      }
      for (std::size_t c = 0; c < canvas_.channels; ++c) {
        for (std::size_t y = 0; y < inner_h_; ++y) {
          for (std::size_t x = 0; x < inner_w_; ++x) {
            img[(c * canvas_.height + top_ + y) * canvas_.width + left_ + x] =
                small.at4(b, c, y, x);
          }
        }
      }
    }
    return canvas;
  }
  // Additive modes: gray base, embedded content, then the perturbation
  // field added everywhere through a tanh squash, clipped to [0, 1].
  const std::size_t hw = canvas_.height * canvas_.width;
  float* delta = nullptr;  // per-pixel additive field (coarse mode)
  if (mode_ == PromptMode::kAdditiveCoarse) {
    // Scratch-backed like the border fill above (same slot — the two
    // fields never coexist within one call).
    delta = util::Scratch::tls().buffer<float>(util::Scratch::kPromptField,
                                               canvas_.channels * hw);
    for (std::size_t c = 0; c < canvas_.channels; ++c) {
      const float* tc = &theta_[c * kGrid * kGrid];
      for (std::size_t p = 0; p < hw; ++p) {
        const float* w = &coarse_weight_[p * kGrid * kGrid];
        float acc = 0.0F;
        // ordered: fixed ascending grid index, single-threaded render.
        for (std::size_t g = 0; g < kGrid * kGrid; ++g) acc += w[g] * tc[g];
        delta[c * hw + p] = std::tanh(acc);
      }
    }
  }
  for (std::size_t b = 0; b < n; ++b) {
    float* img = canvas.data() + b * plane;
    for (std::size_t i = 0; i < plane; ++i) img[i] = 0.5F;
    for (std::size_t c = 0; c < canvas_.channels; ++c) {
      for (std::size_t y = 0; y < inner_h_; ++y) {
        for (std::size_t x = 0; x < inner_w_; ++x) {
          img[(c * canvas_.height + top_ + y) * canvas_.width + left_ + x] =
              small.at4(b, c, y, x);
        }
      }
    }
    if (mode_ == PromptMode::kAdditiveCoarse) {
      for (std::size_t i = 0; i < plane; ++i) {
        img[i] = std::clamp(img[i] + delta[i], 0.0F, 1.0F);
      }
    } else {
      for (std::size_t i = 0; i < border_pos_.size(); ++i) {
        float& pix = img[border_pos_[i]];
        pix = std::clamp(pix + std::tanh(theta_[i]), 0.0F, 1.0F);
      }
    }
  }
  return canvas;
}

std::vector<float> VisualPrompt::gradient(const Tensor& dcanvas) const {
  assert(dcanvas.rank() == 4);
  const std::size_t n = dcanvas.dim(0);
  const std::size_t plane =
      canvas_.height * canvas_.width * canvas_.channels;
  std::vector<float> grad(theta_.size(), 0.0F);
  if (mode_ == PromptMode::kAdditiveCoarse) {
    const std::size_t hw = canvas_.height * canvas_.width;
    for (std::size_t c = 0; c < canvas_.channels; ++c) {
      const float* tc = &theta_[c * kGrid * kGrid];
      float* gc = &grad[c * kGrid * kGrid];
      for (std::size_t p = 0; p < hw; ++p) {
        const float* w = &coarse_weight_[p * kGrid * kGrid];
        float pre = 0.0F;
        // ordered: same ascending grid walk as the forward render.
        for (std::size_t g = 0; g < kGrid * kGrid; ++g) pre += w[g] * tc[g];
        const float t = std::tanh(pre);
        const float dsquash = 1.0F - t * t;  // clip straight-through
        float dpix = 0.0F;
        // ordered: ascending batch index, single-threaded grad fold.
        for (std::size_t b = 0; b < n; ++b) {
          dpix += dcanvas.data()[b * plane + c * hw + p];
        }
        const float dpre = dpix * dsquash;
        for (std::size_t g = 0; g < kGrid * kGrid; ++g) {
          gc[g] += dpre * w[g];
        }
      }
    }
    return grad;
  }
  for (std::size_t i = 0; i < theta_.size(); ++i) {
    float dsquash = 0.0F;
    if (mode_ == PromptMode::kBorder) {
      const float s = logistic(theta_[i]);
      dsquash = s * (1.0F - s);
    } else {
      const float t = std::tanh(theta_[i]);
      dsquash = 1.0F - t * t;  // clip treated straight-through
    }
    float acc = 0.0F;
    // ordered: ascending batch index, single-threaded grad fold.
    for (std::size_t b = 0; b < n; ++b) {
      acc += dcanvas.data()[b * plane + border_pos_[i]];
    }
    grad[i] = acc * dsquash;
  }
  return grad;
}

void VisualPrompt::set_theta(const std::vector<float>& theta) {
  assert(theta.size() == theta_.size());
  theta_ = theta;
}

void VisualPrompt::set_theta(const std::vector<double>& theta) {
  assert(theta.size() == theta_.size());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    theta_[i] = static_cast<float>(theta[i]);
  }
}

std::vector<double> VisualPrompt::theta_as_double() const {
  return std::vector<double>(theta_.begin(), theta_.end());
}

}  // namespace bprom::vp
