#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace bprom::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto hline = [&] {
    out << '+';
    for (auto w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cellv = c < row.size() ? row[c] : std::string();
      out << ' ' << cellv << std::string(width[c] - cellv.size() + 1, ' ')
          << '|';
    }
    out << '\n';
  };
  hline();
  emit(header_);
  hline();
  for (const auto& row : rows_) emit(row);
  hline();
  return out.str();
}

void TablePrinter::print() const { std::cout << str() << std::flush; }

std::string cell(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string cell(int v) { return std::to_string(v); }
std::string cell(std::size_t v) { return std::to_string(v); }

}  // namespace bprom::util
