#include "nn/model.hpp"

#include <cassert>

#include "nn/loss.hpp"

namespace bprom::nn {

Model::Model(std::unique_ptr<Sequential> backbone,
             std::unique_ptr<Linear> head, ImageShape input,
             std::size_t classes)
    : backbone_(std::move(backbone)),
      head_(std::move(head)),
      input_(input),
      classes_(classes) {
  assert(head_->out_features() == classes_);
}

Tensor Model::logits(const Tensor& images, bool train) {
  Tensor f = backbone_->forward(images, train);
  return head_->forward(std::move(f), train);
}

Tensor Model::features(const Tensor& images) {
  return backbone_->forward(images, /*train=*/false);
}

Tensor Model::predict_proba(const Tensor& images) {
  return softmax(logits(images, /*train=*/false));
}

std::vector<int> Model::predict(const Tensor& images) {
  Tensor l = logits(images, /*train=*/false);
  const std::size_t n = l.dim(0);
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = l.data() + i * classes_;
    std::size_t arg = 0;
    for (std::size_t j = 1; j < classes_; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    out[i] = static_cast<int>(arg);
  }
  return out;
}

double Model::accuracy(const Tensor& images, const std::vector<int>& labels) {
  const auto preds = predict(images);
  assert(preds.size() == labels.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(preds.size());
}

Tensor Model::backward(const Tensor& dlogits) {
  Tensor g = head_->backward(dlogits);
  return backbone_->backward(std::move(g));
}

std::vector<Parameter*> Model::parameters() {
  auto params = backbone_->parameters();
  for (auto* p : head_->parameters()) params.push_back(p);
  return params;
}

std::vector<std::vector<float>*> Model::state_buffers() {
  auto buffers = backbone_->state();
  for (auto* s : head_->state()) buffers.push_back(s);
  return buffers;
}

std::unique_ptr<Model> Model::clone() const {
  auto backbone = std::unique_ptr<Sequential>(
      static_cast<Sequential*>(backbone_->clone().release()));
  auto head =
      std::unique_ptr<Linear>(static_cast<Linear*>(head_->clone().release()));
  auto copy = std::make_unique<Model>(std::move(backbone), std::move(head),
                                      input_, classes_);
  copy->arch_ = arch_;
  return copy;
}

std::vector<float> Model::save_parameters() {
  std::vector<float> blob;
  for (auto* p : parameters()) {
    blob.insert(blob.end(), p->value.vec().begin(), p->value.vec().end());
  }
  for (auto* s : state_buffers()) {
    blob.insert(blob.end(), s->begin(), s->end());
  }
  return blob;
}

void Model::load_parameters(const std::vector<float>& blob) {
  std::size_t offset = 0;
  for (auto* p : parameters()) {
    assert(offset + p->value.size() <= blob.size());
    std::copy(blob.begin() + static_cast<long>(offset),
              blob.begin() + static_cast<long>(offset + p->value.size()),
              p->value.vec().begin());
    offset += p->value.size();
  }
  for (auto* s : state_buffers()) {
    assert(offset + s->size() <= blob.size());
    std::copy(blob.begin() + static_cast<long>(offset),
              blob.begin() + static_cast<long>(offset + s->size()),
              s->begin());
    offset += s->size();
  }
  assert(offset == blob.size());
}

}  // namespace bprom::nn
