#include "tensor/im2col.hpp"

#include <cassert>

namespace bprom::tensor {

Tensor im2col(const Tensor& input, const ConvGeometry& g) {
  assert(input.rank() == 4);
  const std::size_t n = input.dim(0);
  assert(input.dim(1) == g.in_c && input.dim(2) == g.in_h &&
         input.dim(3) == g.in_w);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  Tensor cols({n * oh * ow, g.patch_size()});
  float* out = cols.data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t c = 0; c < g.in_c; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long iy =
                static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long ix = static_cast<long>(x * g.stride + kx) -
                              static_cast<long>(g.pad);
              float v = 0.0F;
              if (iy >= 0 && iy < static_cast<long>(g.in_h) && ix >= 0 &&
                  ix < static_cast<long>(g.in_w)) {
                v = input.at4(b, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix));
              }
              *out++ = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvGeometry& g, std::size_t batch) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  assert(cols.dim(0) == batch * oh * ow && cols.dim(1) == g.patch_size());
  Tensor img({batch, g.in_c, g.in_h, g.in_w});
  const float* in = cols.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t c = 0; c < g.in_c; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long iy =
                static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long ix = static_cast<long>(x * g.stride + kx) -
                              static_cast<long>(g.pad);
              const float v = *in++;
              if (iy >= 0 && iy < static_cast<long>(g.in_h) && ix >= 0 &&
                  ix < static_cast<long>(g.in_w)) {
                img.at4(b, c, static_cast<std::size_t>(iy),
                        static_cast<std::size_t>(ix)) += v;
              }
            }
          }
        }
      }
    }
  }
  return img;
}

}  // namespace bprom::tensor
