// Dense row-major double matrix for the analysis-side math (PCA, spectral
// defenses, CMA-ES covariance).  The training framework uses float tensors
// (src/tensor); analysis code prefers double precision because eigen/SVD
// conditioning matters more than throughput there.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bprom::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> multiply(
      const std::vector<double>& v) const;

  Matrix& add_scaled(const Matrix& rhs, double scale);
  Matrix& scale(double s);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  /// Row view as a vector copy.
  [[nodiscard]] std::vector<double> row(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean helpers used across defenses.
double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm(const std::vector<double>& a);
double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace bprom::linalg
