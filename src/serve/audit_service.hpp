// INTERNAL batched audit loop: the MLaaS-marketplace deployment of BPROM.
//
// Since the `bprom::api` façade landed, this is an implementation-layer
// type — external consumers (examples, benches, tools) should use
// api::AuditEngine, which adds versioned named detectors with rollover,
// typed Status errors, per-request budgets/deadlines, and async batches
// while keeping this type's determinism contract.
//
// A batch of suspicious black-box models fans out over the thread pool;
// every request is inspected independently (the detector is const and
// thread-safe, and the prompt ensemble inside inspect() runs on per-thread
// model replicas).  Request Rng salts are pre-split from the service seed
// on the calling thread, so a batch returns bit-identical verdicts for any
// thread count — and for the serial loop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bprom.hpp"
#include "serve/detector_store.hpp"
#include "util/thread_pool.hpp"

namespace bprom::serve {

/// Per-request inspection salts, split off sequentially from `seed`: the
/// salt a request sees is a function of (seed, batch index) only, never of
/// thread scheduling.  The single definition shared by AuditService and
/// api::AuditEngine — it is what keeps the two surfaces bit-identical.
std::vector<std::uint64_t> split_request_salts(std::uint64_t seed,
                                               std::size_t n);

struct AuditRequest {
  /// Caller-chosen identifier echoed back in the response.
  std::string model_id;
  /// Borrowed; must outlive the audit() call.
  const nn::BlackBoxModel* model = nullptr;
};

struct AuditResponse {
  std::string model_id;
  bool ok = false;
  /// Failure description when !ok (verdict is default-constructed then).
  std::string error;
  core::Verdict verdict;
  /// Wall-clock inspection time for this request.
  double seconds = 0.0;
};

struct AuditServiceConfig {
  /// Root seed the per-request prompt-ensemble salts are split from.
  std::uint64_t seed = 97;
  /// Pool the batch fans out on; nullptr = process-wide pool.  Borrowed.
  util::ThreadPool* pool = nullptr;
};

class AuditService {
 public:
  AuditService(std::shared_ptr<const core::BpromDetector> detector,
               AuditServiceConfig config = {});

  /// Convenience: serve the named detector out of a store.
  AuditService(DetectorStore& store, const std::string& name,
               AuditServiceConfig config = {});

  /// Inspect every request concurrently; responses keep batch order.
  /// Individual failures (null model, class-count mismatch) come back as
  /// !ok responses instead of aborting the batch.
  [[nodiscard]] std::vector<AuditResponse> audit(
      const std::vector<AuditRequest>& batch) const;

  [[nodiscard]] const core::BpromDetector& detector() const {
    return *detector_;
  }

 private:
  std::shared_ptr<const core::BpromDetector> detector_;
  AuditServiceConfig config_;
};

}  // namespace bprom::serve
