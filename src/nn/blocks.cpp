#include "nn/blocks.hpp"

namespace bprom::nn {

ResidualBlock::ResidualBlock(std::size_t in_c, std::size_t out_c,
                             std::size_t stride, util::Rng& rng)
    : conv1_(in_c, out_c, 3, stride, 1, rng),
      bn1_(out_c),
      conv2_(out_c, out_c, 3, 1, 1, rng),
      bn2_(out_c) {
  if (in_c != out_c || stride != 1) {
    proj_ = std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_c);
  }
}

ResidualBlock::ResidualBlock(const ResidualBlock& other)
    : conv1_(other.conv1_),
      bn1_(other.bn1_),
      relu1_(other.relu1_),
      conv2_(other.conv2_),
      bn2_(other.bn2_),
      proj_(other.proj_ ? std::make_unique<Conv2d>(*other.proj_) : nullptr),
      proj_bn_(other.proj_bn_ ? std::make_unique<BatchNorm2d>(*other.proj_bn_)
                              : nullptr),
      relu_out_(other.relu_out_),
      skip_input_(other.skip_input_) {}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  skip_input_ = x;
  Tensor h = conv1_.forward(x, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = conv2_.forward(h, train);
  h = bn2_.forward(h, train);
  Tensor skip =
      proj_ ? proj_bn_->forward(proj_->forward(x, train), train) : x;
  h.add(skip);
  return relu_out_.forward(h, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  // Skip path.
  Tensor dskip = g;
  if (proj_) {
    dskip = proj_->backward(proj_bn_->backward(dskip));
  }
  // Main path.
  Tensor dmain = bn2_.backward(g);
  dmain = conv2_.backward(dmain);
  dmain = relu1_.backward(dmain);
  dmain = bn1_.backward(dmain);
  dmain = conv1_.backward(dmain);
  dmain.add(dskip);
  return dmain;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> params;
  for (auto* layer : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_,
                                                   &bn2_}) {
    for (auto* p : layer->parameters()) params.push_back(p);
  }
  if (proj_) {
    for (auto* p : proj_->parameters()) params.push_back(p);
    for (auto* p : proj_bn_->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::vector<float>*> ResidualBlock::state() {
  std::vector<std::vector<float>*> buffers;
  for (auto* s : bn1_.state()) buffers.push_back(s);
  for (auto* s : bn2_.state()) buffers.push_back(s);
  if (proj_bn_) {
    for (auto* s : proj_bn_->state()) buffers.push_back(s);
  }
  return buffers;
}

DepthwiseSeparableBlock::DepthwiseSeparableBlock(std::size_t in_c,
                                                 std::size_t out_c,
                                                 std::size_t stride,
                                                 util::Rng& rng)
    : has_skip_(in_c == out_c && stride == 1),
      dw_(in_c, 3, stride, 1, rng),
      bn1_(in_c),
      pw_(in_c, out_c, 1, 1, 0, rng),
      bn2_(out_c) {}

Tensor DepthwiseSeparableBlock::forward(const Tensor& x, bool train) {
  skip_input_ = x;
  Tensor h = dw_.forward(x, train);
  h = bn1_.forward(h, train);
  h = relu1_.forward(h, train);
  h = pw_.forward(h, train);
  h = bn2_.forward(h, train);
  if (has_skip_) h.add(x);
  return relu_out_.forward(h, train);
}

Tensor DepthwiseSeparableBlock::backward(const Tensor& grad_out) {
  Tensor g = relu_out_.backward(grad_out);
  Tensor dskip;
  if (has_skip_) dskip = g;
  Tensor d = bn2_.backward(g);
  d = pw_.backward(d);
  d = relu1_.backward(d);
  d = bn1_.backward(d);
  d = dw_.backward(d);
  if (has_skip_) d.add(dskip);
  return d;
}

std::vector<Parameter*> DepthwiseSeparableBlock::parameters() {
  std::vector<Parameter*> params;
  for (auto* layer :
       std::initializer_list<Layer*>{&dw_, &bn1_, &pw_, &bn2_}) {
    for (auto* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::vector<float>*> DepthwiseSeparableBlock::state() {
  std::vector<std::vector<float>*> buffers;
  for (auto* s : bn1_.state()) buffers.push_back(s);
  for (auto* s : bn2_.state()) buffers.push_back(s);
  return buffers;
}

}  // namespace bprom::nn
