// Blocked GEMM kernel tests: bitwise agreement with the reference over
// edge-tile shapes and every transpose/accumulate variant, double-precision
// sanity on K spans beyond one KC panel, and bitwise thread-count
// invariance under ScopedPoolOverride pools.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tensor/gemm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bprom::tensor {
namespace {

std::vector<float> randn(std::size_t count, util::Rng& rng) {
  std::vector<float> v(count);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Shapes that straddle every tile boundary: scalar, sub-tile, MR-1/MR/MR+1,
// NR-1/NR/NR+1, and one spilling past the MC/NC macro-tile edges.
const std::size_t kEdgeSizes[] = {1, 3, kGemmMr - 1, kGemmMr, kGemmMr + 1,
                                  kGemmNrF32 - 1, kGemmNrF32,
                                  kGemmNrF32 + 1, kGemmMc + 5};

TEST(Gemm, MatchesReferenceBitwiseOverEdgeTileShapes) {
  util::Rng rng(17);
  for (const std::size_t m : kEdgeSizes) {
    for (const std::size_t n : kEdgeSizes) {
      for (const std::size_t k : kEdgeSizes) {
        for (const Trans ta : {Trans::kNo, Trans::kYes}) {
          for (const Trans tb : {Trans::kNo, Trans::kYes}) {
            const std::size_t lda = ta == Trans::kNo ? k : m;
            const std::size_t ldb = tb == Trans::kNo ? n : k;
            const auto a = randn(m * k, rng);
            const auto b = randn(k * n, rng);
            std::vector<float> c(m * n);
            std::vector<float> want(m * n);
            gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c.data(), n,
                 /*accumulate=*/false);
            gemm_reference(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                           want.data(), n, /*accumulate=*/false);
            ASSERT_EQ(c, want) << "m=" << m << " n=" << n << " k=" << k
                               << " ta=" << (ta == Trans::kYes)
                               << " tb=" << (tb == Trans::kYes);
          }
        }
      }
    }
  }
}

TEST(Gemm, AccumulateVariantFoldsOntoExistingC) {
  util::Rng rng(23);
  const std::size_t m = kGemmMr + 2;
  const std::size_t n = kGemmNrF32 + 3;
  const std::size_t k = 29;
  const auto a = randn(m * k, rng);
  const auto b = randn(k * n, rng);
  const auto seed = randn(m * n, rng);
  std::vector<float> c = seed;
  std::vector<float> want = seed;
  gemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(),
       n, /*accumulate=*/true);
  gemm_reference(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
                 want.data(), n, /*accumulate=*/true);
  EXPECT_EQ(c, want);
  // And the non-accumulating call overwrites the seeded garbage entirely.
  std::vector<float> fresh(m * n, 0.0F);
  gemm_reference(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
                 fresh.data(), n, /*accumulate=*/false);
  gemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(),
       n, /*accumulate=*/false);
  EXPECT_EQ(c, fresh);
}

TEST(Gemm, MultiPanelKMatchesReferenceBitwise) {
  // K > kGemmKc exercises the per-panel fold into C; the reference replays
  // the same panel grouping, so agreement stays bitwise.
  util::Rng rng(29);
  const std::size_t m = 7;
  const std::size_t n = 19;
  const std::size_t k = kGemmKc + kGemmKc / 2;
  const auto a = randn(m * k, rng);
  const auto b = randn(k * n, rng);
  std::vector<float> c(m * n);
  std::vector<float> want(m * n);
  gemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, c.data(),
       n, false);
  gemm_reference(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
                 want.data(), n, false);
  EXPECT_EQ(c, want);
}

TEST(Gemm, DoubleKernelMatchesReferenceBitwise) {
  util::Rng rng(31);
  const std::size_t m = kGemmMr + 1;
  const std::size_t n = kGemmNrF64 + 1;
  const std::size_t k = 43;
  std::vector<double> a(m * k);
  std::vector<double> b(k * n);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      const std::size_t lda = ta == Trans::kNo ? k : m;
      const std::size_t ldb = tb == Trans::kNo ? n : k;
      std::vector<double> c(m * n);
      std::vector<double> want(m * n);
      gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c.data(), n,
           false);
      gemm_reference(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                     want.data(), n, false);
      ASSERT_EQ(c, want) << "ta=" << (ta == Trans::kYes)
                         << " tb=" << (tb == Trans::kYes);
    }
  }
}

TEST(Gemm, ZeroKZeroesOrPreservesC) {
  std::vector<float> c = {1.0F, 2.0F, 3.0F, 4.0F};
  gemm(Trans::kNo, Trans::kNo, 2, 2, 0, nullptr, 1, nullptr, 2, c.data(), 2,
       /*accumulate=*/true);
  EXPECT_EQ(c, (std::vector<float>{1.0F, 2.0F, 3.0F, 4.0F}));
  gemm(Trans::kNo, Trans::kNo, 2, 2, 0, nullptr, 1, nullptr, 2, c.data(), 2,
       /*accumulate=*/false);
  EXPECT_EQ(c, (std::vector<float>{0.0F, 0.0F, 0.0F, 0.0F}));
}

TEST(Gemm, BitIdenticalAcrossThreadCounts) {
  // Large enough that the macro-tile grid actually fans out over the pool
  // (several row and column tiles, multi-panel K).
  util::Rng rng(37);
  const std::size_t m = 2 * kGemmMc + 7;
  const std::size_t n = kGemmNc + 11;
  const std::size_t k = kGemmKc + 33;
  const auto a = randn(m * k, rng);
  const auto b = randn(k * n, rng);

  std::vector<std::vector<float>> runs;
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    util::ThreadPool pool(threads);
    util::ScopedPoolOverride overridden(pool);
    std::vector<float> c(m * n);
    gemm(Trans::kNo, Trans::kYes, m, n, k, a.data(), k, b.data(), k,
         c.data(), n, /*accumulate=*/false);
    runs.push_back(std::move(c));
  }
  EXPECT_EQ(runs[0], runs[1]) << "1 vs 2 threads";
  EXPECT_EQ(runs[0], runs[2]) << "1 vs 8 threads";

  // The parallel tile walk also matches the single-thread reference.
  std::vector<float> want(m * n);
  gemm_reference(Trans::kNo, Trans::kYes, m, n, k, a.data(), k, b.data(), k,
                 want.data(), n, false);
  EXPECT_EQ(runs[0], want);
}

}  // namespace
}  // namespace bprom::tensor
