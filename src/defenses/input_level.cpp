#include "defenses/input_level.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/stats.hpp"
#include "nn/loss.hpp"

namespace bprom::defenses {
namespace {

Tensor single(const Tensor& batch, std::size_t i) {
  const std::size_t sample = batch.size() / batch.dim(0);
  std::vector<std::size_t> shape = batch.shape();
  shape[0] = 1;
  Tensor out(shape);
  std::copy(batch.data() + i * sample, batch.data() + (i + 1) * sample,
            out.data());
  return out;
}

int argmax_row(const float* row, std::size_t k) {
  std::size_t arg = 0;
  for (std::size_t j = 1; j < k; ++j) {
    if (row[j] > row[arg]) arg = j;
  }
  return static_cast<int>(arg);
}

}  // namespace

std::vector<double> strip_scores(nn::Model& model, const Tensor& inputs,
                                 const LabeledData& clean_reference,
                                 util::Rng& rng, std::size_t overlays) {
  const std::size_t n = inputs.dim(0);
  const std::size_t k = model.num_classes();
  const std::size_t sample = inputs.size() / n;
  const std::size_t ref_n = clean_reference.size();
  assert(ref_n > 0);

  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Build the superimposed batch for input i.
    std::vector<std::size_t> shape = inputs.shape();
    shape[0] = overlays;
    Tensor blended(shape);
    for (std::size_t o = 0; o < overlays; ++o) {
      const std::size_t r = rng.uniform_index(ref_n);
      const float* a = inputs.data() + i * sample;
      const float* b = clean_reference.images.data() + r * sample;
      float* dst = blended.data() + o * sample;
      for (std::size_t p = 0; p < sample; ++p) {
        dst[p] = 0.5F * a[p] + 0.5F * b[p];
      }
    }
    Tensor probs = model.predict_proba(blended);
    double mean_entropy = 0.0;
    for (std::size_t o = 0; o < overlays; ++o) {
      std::vector<double> row(k);
      for (std::size_t j = 0; j < k; ++j) {
        row[j] = probs.data()[o * k + j];
      }
      mean_entropy += linalg::entropy(row);
    }
    scores[i] = -mean_entropy / static_cast<double>(overlays);
  }
  return scores;
}

std::vector<double> sentinet_scores(nn::Model& model, const Tensor& inputs,
                                    const LabeledData& clean_reference,
                                    std::size_t occluder,
                                    std::size_t transplant_targets) {
  const std::size_t n = inputs.dim(0);
  const std::size_t c = inputs.dim(1);
  const std::size_t h = inputs.dim(2);
  const std::size_t w = inputs.dim(3);
  const std::size_t sample = inputs.size() / n;
  const std::size_t k = model.num_classes();
  std::vector<double> scores(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    Tensor base = single(inputs, i);
    Tensor base_probs = model.predict_proba(base);
    const int pred = argmax_row(base_probs.data(), k);

    // Occlusion sensitivity: find the grid cell whose occlusion drops the
    // predicted-class confidence the most.
    double best_drop = -1.0;
    std::size_t best_y = 0;
    std::size_t best_x = 0;
    for (std::size_t oy = 0; oy + occluder <= h; oy += occluder) {
      for (std::size_t ox = 0; ox + occluder <= w; ox += occluder) {
        Tensor occluded = base;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t y = 0; y < occluder; ++y) {
            for (std::size_t x = 0; x < occluder; ++x) {
              occluded.at4(0, ch, oy + y, ox + x) = 0.5F;
            }
          }
        }
        Tensor probs = model.predict_proba(occluded);
        const double drop =
            base_probs.data()[static_cast<std::size_t>(pred)] -
            probs.data()[static_cast<std::size_t>(pred)];
        if (drop > best_drop) {
          best_drop = drop;
          best_y = oy;
          best_x = ox;
        }
      }
    }

    // Transplant the critical region onto held-out clean images.
    const std::size_t m =
        std::min(transplant_targets, clean_reference.size());
    std::size_t fooled = 0;
    for (std::size_t t = 0; t < m; ++t) {
      Tensor host = single(clean_reference.images, t);
      for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t y = 0; y < occluder; ++y) {
          for (std::size_t x = 0; x < occluder; ++x) {
            host.at4(0, ch, best_y + y, best_x + x) =
                inputs.data()[i * sample +
                              (ch * h + best_y + y) * w + best_x + x];
          }
        }
      }
      Tensor probs = model.predict_proba(host);
      if (argmax_row(probs.data(), k) == pred) ++fooled;
    }
    scores[i] = static_cast<double>(fooled) / static_cast<double>(m);
  }
  return scores;
}

std::vector<double> frequency_scores(const Tensor& inputs) {
  const std::size_t n = inputs.dim(0);
  const std::size_t c = inputs.dim(1);
  const std::size_t h = inputs.dim(2);
  const std::size_t w = inputs.dim(3);
  std::vector<double> scores(n, 0.0);
  // Separable DCT-II basis.
  auto dct_basis = [&](std::size_t u, std::size_t x, std::size_t len) {
    return std::cos(3.14159265358979 * (static_cast<double>(x) + 0.5) *
                    static_cast<double>(u) / static_cast<double>(len));
  };
  for (std::size_t i = 0; i < n; ++i) {
    double high = 0.0;
    double total = 1e-12;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t u = 0; u < h; ++u) {
        for (std::size_t v = 0; v < w; ++v) {
          double coef = 0.0;
          for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
              coef += static_cast<double>(inputs.at4(i, ch, y, x)) *
                      dct_basis(u, y, h) * dct_basis(v, x, w);
            }
          }
          const double energy = coef * coef;
          total += energy;
          if (u + v >= (h + w) / 2) high += energy;
        }
      }
    }
    scores[i] = high / total;
  }
  return scores;
}

std::vector<double> scaleup_scores(nn::Model& model, const Tensor& inputs) {
  const std::size_t n = inputs.dim(0);
  const std::size_t k = model.num_classes();
  const std::size_t sample = inputs.size() / n;

  Tensor base_probs = model.predict_proba(inputs);
  std::vector<int> base_pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_pred[i] = argmax_row(base_probs.data() + i * k, k);
  }

  std::vector<double> consistent(n, 0.0);
  constexpr int kScales[] = {2, 3, 4, 5};
  for (int s : kScales) {
    Tensor scaled(inputs.shape());
    for (std::size_t p = 0; p < inputs.size(); ++p) {
      scaled.vec()[p] =
          std::clamp(inputs.vec()[p] * static_cast<float>(s), 0.0F, 1.0F);
    }
    Tensor probs = model.predict_proba(scaled);
    for (std::size_t i = 0; i < n; ++i) {
      if (argmax_row(probs.data() + i * k, k) == base_pred[i]) {
        consistent[i] += 1.0;
      }
    }
  }
  (void)sample;
  for (auto& v : consistent) v /= 4.0;
  return consistent;
}

std::vector<double> teco_scores(nn::Model& model, const Tensor& inputs,
                                util::Rng& rng) {
  const std::size_t n = inputs.dim(0);
  const std::size_t k = model.num_classes();
  const std::size_t c = inputs.dim(1);
  const std::size_t h = inputs.dim(2);
  const std::size_t w = inputs.dim(3);

  Tensor base_probs = model.predict_proba(inputs);
  std::vector<int> base_pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_pred[i] = argmax_row(base_probs.data() + i * k, k);
  }

  constexpr std::size_t kSeverities = 4;
  constexpr std::size_t kFamilies = 3;  // noise, blur, quantize
  // first_flip[f][i] = severity (1..S) at which prediction first flips,
  // S + 1 when it never flips.
  std::vector<std::vector<double>> first_flip(
      kFamilies, std::vector<double>(n, kSeverities + 1));

  for (std::size_t fam = 0; fam < kFamilies; ++fam) {
    for (std::size_t sev = 1; sev <= kSeverities; ++sev) {
      Tensor corrupted = inputs;
      const double strength = static_cast<double>(sev);
      if (fam == 0) {
        // Gaussian noise.
        for (auto& v : corrupted.vec()) {
          v = std::clamp(
              v + static_cast<float>(rng.normal(0.0, 0.05 * strength)), 0.0F,
              1.0F);
        }
      } else if (fam == 1) {
        // Box blur with growing radius (1 pass per severity).
        for (std::size_t pass = 0; pass < sev; ++pass) {
          Tensor blurred = corrupted;
          for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t ch = 0; ch < c; ++ch) {
              for (std::size_t y = 1; y + 1 < h; ++y) {
                for (std::size_t x = 1; x + 1 < w; ++x) {
                  float acc = 0.0F;
                  // ordered: fixed 3x3 stencil walk, dy-major.
                  for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                      acc += corrupted.at4(
                          b, ch, static_cast<std::size_t>(static_cast<int>(y) + dy),
                          static_cast<std::size_t>(static_cast<int>(x) + dx));
                    }
                  }
                  blurred.at4(b, ch, y, x) = acc / 9.0F;
                }
              }
            }
          }
          corrupted = blurred;
        }
      } else {
        // Quantization: fewer levels at higher severity.
        const float levels = 8.0F / static_cast<float>(sev);
        for (auto& v : corrupted.vec()) {
          v = std::clamp(std::round(v * levels) / levels, 0.0F, 1.0F);
        }
      }
      Tensor probs = model.predict_proba(corrupted);
      for (std::size_t i = 0; i < n; ++i) {
        if (first_flip[fam][i] > kSeverities &&
            argmax_row(probs.data() + i * k, k) != base_pred[i]) {
          first_flip[fam][i] = static_cast<double>(sev);
        }
      }
    }
  }

  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> flips(kFamilies);
    for (std::size_t fam = 0; fam < kFamilies; ++fam) {
      flips[fam] = first_flip[fam][i];
    }
    scores[i] = linalg::stddev(flips);
  }
  return scores;
}

std::vector<double> ted_scores(nn::Model& model, const Tensor& inputs,
                               const LabeledData& clean_reference,
                               std::size_t k_neighbours) {
  const std::size_t n = inputs.dim(0);
  const std::size_t k = model.num_classes();
  Tensor input_features = model.features(inputs);
  Tensor input_probs = model.predict_proba(inputs);
  Tensor ref_features = model.features(clean_reference.images);
  const auto ref_pred = model.predict(clean_reference.images);

  const std::size_t d = input_features.dim(1);
  const std::size_t ref_n = clean_reference.size();
  const std::size_t kk = std::min(k_neighbours, ref_n);

  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int pred = argmax_row(input_probs.data() + i * k, k);
    // Distances to reference features.
    std::vector<std::pair<double, std::size_t>> dist(ref_n);
    for (std::size_t r = 0; r < ref_n; ++r) {
      double acc = 0.0;
      // ordered: ascending feature index, per reference row.
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = input_features.data()[i * d + j] -
                            ref_features.data()[r * d + j];
        acc += diff * diff;  // ordered: see above
      }
      dist[r] = {acc, r};
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(kk),
                      dist.end());
    // Disagreement between feature-space neighbours' predictions and the
    // model's final prediction: triggered inputs land in the target-class
    // logit region while their features sit near their true class.
    std::size_t disagree = 0;
    for (std::size_t j = 0; j < kk; ++j) {
      if (ref_pred[dist[j].second] != pred) ++disagree;
    }
    scores[i] = static_cast<double>(disagree) / static_cast<double>(kk);
  }
  return scores;
}

std::vector<double> cd_scores(nn::Model& model, const Tensor& inputs,
                              std::size_t occluder) {
  const std::size_t n = inputs.dim(0);
  const std::size_t c = inputs.dim(1);
  const std::size_t h = inputs.dim(2);
  const std::size_t w = inputs.dim(3);
  const std::size_t k = model.num_classes();

  std::vector<double> scores(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor base = single(inputs, i);
    Tensor base_probs = model.predict_proba(base);
    const int pred = argmax_row(base_probs.data(), k);
    // Count grid cells that individually suffice to keep the prediction
    // when everything else is grayed out; trigger samples need very few.
    std::size_t sufficient = 0;
    std::size_t cells = 0;
    for (std::size_t oy = 0; oy + occluder <= h; oy += occluder) {
      for (std::size_t ox = 0; ox + occluder <= w; ox += occluder) {
        ++cells;
        Tensor masked(base.shape(), 0.5F);
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t y = 0; y < occluder; ++y) {
            for (std::size_t x = 0; x < occluder; ++x) {
              masked.at4(0, ch, oy + y, ox + x) =
                  base.at4(0, ch, oy + y, ox + x);
            }
          }
        }
        Tensor probs = model.predict_proba(masked);
        if (argmax_row(probs.data(), k) == pred) ++sufficient;
      }
    }
    // Small cognitive pattern => a single cell already carries the class.
    scores[i] = static_cast<double>(sufficient) / static_cast<double>(cells);
  }
  return scores;
}

std::vector<double> confidence_scores(nn::Model& model, const Tensor& inputs) {
  const std::size_t n = inputs.dim(0);
  const std::size_t k = model.num_classes();
  Tensor probs = model.predict_proba(inputs);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = probs.data() + i * k;
    scores[i] = row[argmax_row(row, k)];
  }
  return scores;
}

}  // namespace bprom::defenses
