#include "metrics/roc.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace bprom::metrics {

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  assert(scores.size() == labels.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t pos = 0;
  for (int l : labels) pos += static_cast<std::size_t>(l == 1);
  const std::size_t neg = labels.size() - pos;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, 1e300});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      if (labels[order[i]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    curve.push_back(
        {neg > 0 ? static_cast<double>(fp) / static_cast<double>(neg) : 0.0,
         pos > 0 ? static_cast<double>(tp) / static_cast<double>(pos) : 0.0,
         threshold});
  }
  return curve;
}

double auroc(const std::vector<double>& scores,
             const std::vector<int>& labels) {
  assert(scores.size() == labels.size());
  double wins = 0.0;
  std::size_t pos = 0;
  std::size_t neg = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1) continue;
    ++pos;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] == 1) continue;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  for (int l : labels) neg += static_cast<std::size_t>(l != 1);
  if (pos == 0 || neg == 0) return 0.5;
  return wins / (static_cast<double>(pos) * static_cast<double>(neg));
}

BinaryReport binary_report(const std::vector<double>& scores,
                           const std::vector<int>& labels, double threshold) {
  assert(scores.size() == labels.size());
  BinaryReport r;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    const bool truth = labels[i] == 1;
    if (pred && truth) {
      ++r.tp;
    } else if (pred && !truth) {
      ++r.fp;
    } else if (!pred && truth) {
      ++r.fn;
    } else {
      ++r.tn;
    }
  }
  const double tp = static_cast<double>(r.tp);
  r.precision = r.tp + r.fp > 0 ? tp / static_cast<double>(r.tp + r.fp) : 0.0;
  r.recall = r.tp + r.fn > 0 ? tp / static_cast<double>(r.tp + r.fn) : 0.0;
  r.f1 = r.precision + r.recall > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  r.accuracy = scores.empty()
                   ? 0.0
                   : static_cast<double>(r.tp + r.tn) /
                         static_cast<double>(scores.size());
  return r;
}

double best_f1(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  double best = 0.0;
  std::vector<double> thresholds = scores;
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  for (double t : thresholds) {
    best = std::max(best, binary_report(scores, labels, t).f1);
  }
  return best;
}

}  // namespace bprom::metrics
