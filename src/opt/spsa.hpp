// SPSA (simultaneous perturbation stochastic approximation) — the cheap
// two-query-per-step black-box baseline used in the prompt-optimizer
// ablation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace bprom::opt {

struct SpsaConfig {
  double a = 0.2;      // step-size numerator
  double c = 0.1;      // perturbation size
  double alpha = 0.602;
  double gamma = 0.101;
  std::size_t max_evaluations = 2000;
  std::uint64_t seed = 17;
};

struct SpsaResult {
  std::vector<double> best_x;
  double best_f = 0.0;
  std::size_t evaluations = 0;
};

/// Receives every point one SPSA step needs at once — the initial {x0},
/// then {x+, x-} per iteration — and returns the objective value for each.
/// Lets the caller evaluate the pair on two model replicas in parallel.
using SpsaBatchObjective = std::function<std::vector<double>(
    const std::vector<std::vector<double>>&)>;

SpsaResult spsa_minimize(
    const SpsaConfig& config, std::vector<double> x0,
    const std::function<double(const std::vector<double>&)>& objective);

/// Batched-objective overload.  With a zero evaluation budget nothing is
/// evaluated and the result reports best_f = +huge, evaluations = 0 (never
/// a fabricated perfect loss).
SpsaResult spsa_minimize(const SpsaConfig& config, std::vector<double> x0,
                         const SpsaBatchObjective& batch_objective);

}  // namespace bprom::opt
