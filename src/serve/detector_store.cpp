#include "serve/detector_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "io/serialize.hpp"

namespace bprom::serve {

namespace fs = std::filesystem;

StoreLock::StoreLock(const std::string& directory)
    : path_((fs::path(directory) / kLockName).string()) {
  for (unsigned spins = 0;; ++spins) {
    // O_EXCL is the whole mechanism: exactly one creator wins, atomically,
    // across processes.
    const int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      // Best-effort breadcrumb for humans inspecting a contended store.
      char pid[32];
      const int len = std::snprintf(pid, sizeof(pid), "%ld\n",
                                    static_cast<long>(::getpid()));
      if (len > 0) {
        [[maybe_unused]] const auto ignored =
            ::write(fd, pid, static_cast<std::size_t>(len));
      }
      ::close(fd);
      return;
    }
    if (errno != EEXIST) {
      throw io::IoError("cannot create publish lock " + path_,
                        io::ErrorKind::kIo);
    }
    // Held by someone else.  Break it only when it is provably debris: a
    // publish spans one directory scan plus one container write, so a lock
    // older than kStaleAfterSeconds belongs to a crashed writer.
    std::error_code ec;
    const auto mtime = fs::last_write_time(path_, ec);
    if (!ec) {
      const auto age = std::chrono::duration<double>(
          fs::file_time_type::clock::now() - mtime);
      if (age.count() > kStaleAfterSeconds) {
        fs::remove(path_, ec);  // racing breakers are fine: O_EXCL re-decides
        continue;
      }
    }
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

StoreLock::~StoreLock() {
  std::error_code ec;
  fs::remove(path_, ec);
}

DetectorStore::DetectorStore(std::string directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw io::IoError("cannot create store directory " + dir_ + ": " +
                          ec.message(),
                      io::ErrorKind::kIo);
  }
}

std::string DetectorStore::path_for(const std::string& name) const {
  return (fs::path(dir_) / (name + io::kFileExtension)).string();
}

std::shared_ptr<const core::BpromDetector> DetectorStore::put(
    const std::string& name, core::BpromDetector detector) {
  io::save_detector_file(path_for(name), detector);
  auto handle =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  util::MutexLock lock(mu_);
  cache_[name] = handle;
  return handle;
}

std::shared_ptr<const core::BpromDetector> DetectorStore::cached_locked(
    const std::string& name) const {
  auto it = cache_.find(name);
  return it != cache_.end() ? it->second : nullptr;
}

std::shared_ptr<const core::BpromDetector> DetectorStore::get(
    const std::string& name, util::ThreadPool* pool_for_loaded) {
  {
    util::MutexLock lock(mu_);
    if (auto hit = cached_locked(name)) return hit;
  }
  // Load outside the lock so a slow disk read does not serialize unrelated
  // lookups; first insertion wins if two threads race on the same name
  // (emplace never overwrites, so the loser adopts the winner's handle and
  // its own load is discarded — both threads hand out one shared detector).
  core::BpromDetector detector = io::load_detector_file(path_for(name));
  detector.set_pool(pool_for_loaded);
  auto loaded =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  util::MutexLock lock(mu_);
  return cache_.emplace(name, std::move(loaded)).first->second;
}

bool DetectorStore::contains(const std::string& name) const {
  {
    util::MutexLock lock(mu_);
    if (cached_locked(name) != nullptr) return true;
  }
  std::error_code ec;
  return fs::exists(path_for(name), ec);
}

std::vector<std::string> DetectorStore::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == io::kFileExtension) {
      names.push_back(p.stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void DetectorStore::evict(const std::string& name) {
  util::MutexLock lock(mu_);
  cache_.erase(name);
}

std::uint64_t DetectorStore::generation() const {
  std::ifstream in((fs::path(dir_) / ".generation").string());
  std::uint64_t gen = 0;
  if (in >> gen) return gen;
  return 0;
}

std::uint64_t DetectorStore::bump_generation() {
  const std::uint64_t next = generation() + 1;
  const std::string path = (fs::path(dir_) / ".generation").string();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw io::IoError("cannot write store generation " + tmp,
                        io::ErrorKind::kIo);
    }
    out << next << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw io::IoError("cannot move " + tmp + " into place: " + ec.message(),
                      io::ErrorKind::kIo);
  }
  return next;
}

}  // namespace bprom::serve
