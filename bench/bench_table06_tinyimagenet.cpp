// Table 6: AUROC on tiny-imagenet-like, ResNet18Mini + MobileNetV2Mini.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  auto tiny = data::make_dataset(data::DatasetKind::kTinyImageNet, 1);
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  for (auto arch : {nn::ArchKind::kResNet18Mini, nn::ArchKind::kMobileNetV2Mini}) {
    std::vector<std::string> header = {"defense"};
    for (auto a : kinds) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    for (auto d : {defenses::DefenseKind::kStrip, defenses::DefenseKind::kScan,
                   defenses::DefenseKind::kScaleUp, defenses::DefenseKind::kCd,
                   defenses::DefenseKind::kMmBd}) {
      std::vector<std::string> row = {defenses::defense_name(d)};
      double avg = 0;
      for (auto a : kinds) {
        auto eval = baseline_cell(d, tiny, a, arch, 210 + (int)a, env.scale);
        row.push_back(util::cell(eval.auroc));
        avg += eval.auroc;
      }
      row.push_back(util::cell(avg / kinds.size()));
      table.add_row(row);
    }
    auto detector = core::fit_detector(tiny, env.stl10, 0.10, arch, 7, env.scale);
    std::vector<std::string> row = {"BPROM (10%)"};
    double avg = 0;
    for (const auto& cell :
         bprom_row(detector, tiny, arch, 350, env.scale, kinds)) {
      row.push_back(util::cell(cell.auroc));
      avg += cell.auroc;
    }
    row.push_back(util::cell(avg / kinds.size()));
    table.add_row(row);
    std::printf("== Table 6 (tiny-imagenet-like, %s): AUROC ==\n", nn::arch_name(arch).c_str());
    table.print();
  }
  return 0;
}
