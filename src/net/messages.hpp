// Typed wire messages of the BPROM network protocol.
//
// Each message body is an `src/io` chunk stream (4-char tag + fields), so
// decoding inherits the container machinery's discipline: tag mismatches,
// truncation, and out-of-range fields all raise io::IoError, which the
// transport maps onto the same typed api::Status codes `.bprom` artifacts
// produce.  Every message opens with the `struct_version` of the api value
// type it carries — a decoder that meets a newer version than it knows
// refuses with ErrorKind::kVersionMismatch (-> Status::kVersionMismatch)
// instead of misreading appended fields.
//
// The audit request is the one message with real payload: the suspicious
// model itself rides along as a serialized nn::Model chunk (the black box
// the client wants audited has to reach the detector somehow, and shipping
// the weights is the marketplace deployment — the server wraps them in an
// owning BlackBoxAdapter and queries them locally).  A save->load round
// trip is byte-exact, so a verdict on the uploaded copy is bit-identical
// to a verdict on the original.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/engine.hpp"
#include "api/status.hpp"
#include "api/types.hpp"
#include "io/binary.hpp"
#include "nn/model.hpp"

namespace bprom::net {

inline constexpr std::uint32_t kStatsResponseVersion = 1;
inline constexpr std::uint32_t kErrorMsgVersion = 1;
inline constexpr std::uint32_t kShutdownMsgVersion = 1;

// Chunk tags (one per message type; decode verifies).
inline constexpr char kTagAuditRequest[5] = "NREQ";
inline constexpr char kTagAuditResponse[5] = "NRSP";
inline constexpr char kTagStatsRequest[5] = "NSTQ";
inline constexpr char kTagStatsResponse[5] = "NSTS";
inline constexpr char kTagInfoRequest[5] = "NINQ";
inline constexpr char kTagInfoResponse[5] = "NINS";
inline constexpr char kTagError[5] = "NERR";
inline constexpr char kTagShutdownRequest[5] = "NSHQ";
inline constexpr char kTagShutdownResponse[5] = "NSHS";

/// One audit request as decoded on the server: the api::AuditRequest scalar
/// fields plus the uploaded model, owned.
struct AuditRequestMsg {
  std::uint32_t struct_version = api::kAuditRequestVersion;
  std::string model_id;
  std::string detector;
  std::uint64_t query_budget = api::kUnlimitedQueries;
  std::uint64_t deadline_ms = 0;
  /// The uploaded suspicious model (decode side; encode borrows instead).
  std::unique_ptr<nn::Model> model;
};

/// Encode an audit request; `model` is serialized inline (non-const because
/// nn::Model::save walks mutable layer state).
void encode_audit_request(io::Writer& writer, const AuditRequestMsg& msg,
                          nn::Model& model);
/// Throws io::IoError on malformed/truncated/newer-versioned input.
AuditRequestMsg decode_audit_request(io::Reader& reader);

/// api::AuditResponse, wire form (same fields, same struct_version).
struct AuditResponseMsg {
  std::uint32_t struct_version = api::kAuditResponseVersion;
  std::string model_id;
  std::string detector_version;
  api::Status status;
  core::Verdict verdict;
  double seconds = 0.0;
};

void encode_audit_response(io::Writer& writer, const AuditResponseMsg& msg);
AuditResponseMsg decode_audit_response(io::Reader& reader);

/// Build the wire response from the engine's in-process response.
AuditResponseMsg to_wire(const api::AuditResponse& response);

/// Server-side transport/admission counters folded into the stats message:
/// what the engine cannot see — connections, wire bytes, and the typed
/// rejections the admission layer issued before requests reached it.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_idle_closed = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t rejected_in_flight = 0;       ///< per-connection cap
  std::uint64_t rejected_total_in_flight = 0; ///< server-wide cap
  std::uint64_t rejected_request_budget = 0;  ///< per-connection requests
  std::uint64_t rejected_byte_budget = 0;     ///< per-connection bytes
  std::uint64_t rejected_protocol = 0;        ///< malformed/corrupt frames
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

/// The `/stats` payload: EngineStats (counters + profiler percentiles)
/// plus the transport's own counters.
struct StatsResponseMsg {
  std::uint32_t struct_version = kStatsResponseVersion;
  api::EngineStats engine;
  ServerCounters server;
};

void encode_stats_request(io::Writer& writer);
void decode_stats_request(io::Reader& reader);

void encode_stats_response(io::Writer& writer, const StatsResponseMsg& msg);
StatsResponseMsg decode_stats_response(io::Reader& reader);

/// Detector metadata lookup by name ("market" or pinned "market@vN").
struct InfoRequestMsg {
  std::uint32_t struct_version = api::kDetectorInfoVersion;
  std::string detector;
};

void encode_info_request(io::Writer& writer, const InfoRequestMsg& msg);
InfoRequestMsg decode_info_request(io::Reader& reader);

struct InfoResponseMsg {
  std::uint32_t struct_version = api::kDetectorInfoVersion;
  api::Status status;
  api::DetectorInfo info;
};

void encode_info_response(io::Writer& writer, const InfoResponseMsg& msg);
InfoResponseMsg decode_info_response(io::Reader& reader);

/// Typed failure for a frame whose request could not be decoded far enough
/// to produce the matching response type (admission rejections included).
/// The frame header's echoed request id attributes it to the caller's
/// pending call.
struct ErrorMsg {
  std::uint32_t struct_version = kErrorMsgVersion;
  api::Status status;
};

void encode_error(io::Writer& writer, const ErrorMsg& msg);
ErrorMsg decode_error(io::Reader& reader);

/// Ask the server to drain gracefully: stop accepting connections, let
/// in-flight audits finish and their responses flush, then close.  The
/// response acknowledges that the drain began (the connection closes once
/// its own queue empties).
struct ShutdownRequestMsg {
  std::uint32_t struct_version = kShutdownMsgVersion;
};

void encode_shutdown_request(io::Writer& writer);
void decode_shutdown_request(io::Reader& reader);

struct ShutdownResponseMsg {
  std::uint32_t struct_version = kShutdownMsgVersion;
  api::Status status;
};

void encode_shutdown_response(io::Writer& writer,
                              const ShutdownResponseMsg& msg);
ShutdownResponseMsg decode_shutdown_response(io::Reader& reader);

/// Map decode failures onto the façade's typed codes (same mapping as
/// api::status_from, re-exported here so transport code reads naturally).
api::Status status_from_io(const io::IoError& error);

}  // namespace bprom::net
