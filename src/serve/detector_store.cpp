#include "serve/detector_store.hpp"

#include <algorithm>
#include <filesystem>

#include "io/serialize.hpp"

namespace bprom::serve {

namespace fs = std::filesystem;

DetectorStore::DetectorStore(std::string directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw io::IoError("cannot create store directory " + dir_ + ": " +
                          ec.message(),
                      io::ErrorKind::kIo);
  }
}

std::string DetectorStore::path_for(const std::string& name) const {
  return (fs::path(dir_) / (name + io::kFileExtension)).string();
}

std::shared_ptr<const core::BpromDetector> DetectorStore::put(
    const std::string& name, core::BpromDetector detector) {
  io::save_detector_file(path_for(name), detector);
  auto handle =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[name] = handle;
  return handle;
}

std::shared_ptr<const core::BpromDetector> DetectorStore::get(
    const std::string& name, util::ThreadPool* pool_for_loaded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end()) return it->second;
  }
  // Load outside the lock so a slow disk read does not serialize unrelated
  // lookups; first insertion wins if two threads race on the same name.
  core::BpromDetector detector = io::load_detector_file(path_for(name));
  detector.set_pool(pool_for_loaded);
  auto loaded =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.emplace(name, std::move(loaded)).first->second;
}

bool DetectorStore::contains(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.count(name) > 0) return true;
  }
  std::error_code ec;
  return fs::exists(path_for(name), ec);
}

std::vector<std::string> DetectorStore::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == io::kFileExtension) {
      names.push_back(p.stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void DetectorStore::evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(name);
}

}  // namespace bprom::serve
