#include "nn/trainer.hpp"

#include <algorithm>
#include <cassert>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace bprom::nn {
namespace {

LabeledData gather(const LabeledData& data,
                   const std::vector<std::size_t>& idx, std::size_t begin,
                   std::size_t end) {
  const std::size_t sample = data.images.size() / data.size();
  std::vector<std::size_t> shape = data.images.shape();
  shape[0] = end - begin;
  LabeledData batch;
  batch.images = Tensor(shape);
  batch.labels.resize(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t src = idx[i];
    std::copy(data.images.data() + src * sample,
              data.images.data() + (src + 1) * sample,
              batch.images.data() + (i - begin) * sample);
    batch.labels[i - begin] = data.labels[src];
  }
  return batch;
}

}  // namespace

TrainHistory train_classifier(Model& model, const LabeledData& data,
                              const TrainConfig& config) {
  assert(data.size() > 0);
  util::Rng rng(config.seed);
  Sgd opt(model.parameters(), config.lr, config.momentum,
          config.weight_decay);
  TrainHistory history;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto idx = rng.permutation(data.size());
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
    for (std::size_t begin = 0; begin < data.size();
         begin += config.batch_size) {
      const std::size_t end =
          std::min(begin + config.batch_size, data.size());
      LabeledData batch = gather(data, idx, begin, end);
      opt.zero_grad();
      Tensor logits = model.logits(batch.images, /*train=*/true);
      LossResult loss = cross_entropy(logits, batch.labels);
      model.backward(loss.dlogits);
      opt.step();
      loss_sum += loss.loss * static_cast<double>(end - begin);
      correct += loss.correct;
      seen += end - begin;
    }
    history.epoch_loss.push_back(loss_sum / static_cast<double>(seen));
    history.epoch_accuracy.push_back(static_cast<double>(correct) /
                                     static_cast<double>(seen));
    opt.set_lr(opt.lr() * config.lr_decay);
  }
  return history;
}

double evaluate_accuracy(Model& model, const LabeledData& data,
                         std::size_t batch_size) {
  if (data.size() == 0) return 0.0;
  const std::size_t sample = data.images.size() / data.size();
  std::size_t hits = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, data.size());
    std::vector<std::size_t> shape = data.images.shape();
    shape[0] = end - begin;
    Tensor batch(shape);
    std::copy(data.images.data() + begin * sample,
              data.images.data() + end * sample, batch.data());
    const auto preds = model.predict(batch);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == data.labels[begin + i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace bprom::nn
