// Table 23: AUROC vs reserved clean set size (1/5/10 %).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> header = {"D_S size"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    for (double frac : {0.10, 0.05, 0.01}) {
      auto detector = core::fit_detector(*src, env.stl10, frac, arch, 7, env.scale);
      std::vector<std::string> row = {util::cell(100 * frac, 0) + "%"};
      double avg = 0;
      for (auto a : main_attacks()) {
        auto cell = bprom_cell(detector, *src, a, arch, 1100 + (int)a, env.scale);
        row.push_back(util::cell(cell.auroc));
        avg += cell.auroc;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    std::printf("== Table 23 (%s): reserved-clean-size sweep ==\n", src->profile.name.c_str());
    table.print();
  }
  return 0;
}
