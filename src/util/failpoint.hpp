// Deterministic, always-compiled fault injection.
//
// A failpoint is a named hook compiled into a production code path.  When
// disarmed (the default, and the only state production ever runs in) a
// site costs exactly one relaxed atomic load — no branch into the registry,
// no allocation, no lock.  Tests and the fault-injection CI job arm sites
// through the `BPROM_FAILPOINTS` environment variable (or directly via
// `failpoints_arm`) to force the error paths that real disks, networks,
// and crashes produce: short writes, failed fsyncs, stalled peers, and
// process death at a precise instruction boundary.
//
// Spec grammar (entries separated by ';' or ','):
//
//   BPROM_FAILPOINTS="<name>=<action>;<name>=<trigger>-><action>;..."
//
//   trigger:  N            fire once, on the Nth hit (1-based)
//             every:K      fire on every Kth hit
//             p:PROB:SEED  fire with probability PROB, seeded (deterministic)
//             (omitted)    fire on every hit
//   action:   err          site reports an injected error
//             short:BYTES  site truncates the operation to BYTES bytes
//             delay:MS     sleep MS milliseconds, then continue normally
//             exit:CODE    _exit(CODE) — simulated crash, no cleanup
//
// Example: crash the publisher the first time it reaches the rename step,
// and make every third network recv fail:
//
//   BPROM_FAILPOINTS="io.save.rename=1->exit:43;net.recv=every:3->err"
//
// Every site name must appear in the registry table in failpoint.cpp
// (between the failpoint-registry markers); `tools/bprom_lint` enforces
// that sites and registry stay in sync so armed scenarios cannot rot.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bprom::util {

/// What an armed failpoint asks the site to do.  kDelay and kExit are
/// handled inside failpoint_eval (sleep / _exit); sites only ever observe
/// kNone, kError, and kShort.
enum class FailpointAction : std::uint8_t {
  kNone = 0,   ///< not armed or trigger not satisfied — proceed normally
  kError,      ///< report an injected I/O or transport error
  kShort,      ///< truncate the operation to `arg` bytes
  kDelay,      ///< (internal) sleep `arg` milliseconds
  kExit,       ///< (internal) _exit(arg)
};

/// Result of evaluating a failpoint at a site.
struct FailpointHit {
  FailpointAction action = FailpointAction::kNone;
  std::uint64_t arg = 0;  ///< bytes for kShort, ms for kDelay, code for kExit

  explicit operator bool() const { return action != FailpointAction::kNone; }
};

namespace detail {
/// Count of currently-armed failpoints.  Constant-initialized so the fast
/// path is valid before any dynamic initializer runs.
// relaxed: monotone arm/disarm flag — sites that race an arming call may
// miss the first few hits, which is acceptable for fault injection; the
// slow path takes a mutex and synchronizes fully.
extern std::atomic<std::uint32_t> g_armed_count;
}  // namespace detail

/// True iff any failpoint is armed.  The only cost a disarmed site pays.
inline bool failpoints_enabled() {
  // relaxed: see g_armed_count — no ordering needed on the disarmed path.
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Slow path: look up `name`, advance its trigger, and return the action
/// the site must take.  kDelay sleeps internally and returns kNone; kExit
/// calls _exit and never returns.
FailpointHit failpoint_eval(const char* name);

/// The hook macro.  Disarmed cost: one relaxed load, no call.
#define BPROM_FAILPOINT(name)                         \
  (::bprom::util::failpoints_enabled()                \
       ? ::bprom::util::failpoint_eval(name)          \
       : ::bprom::util::FailpointHit{})

/// Arm failpoints from a spec string (grammar above).  Replaces the armed
/// set.  Returns false and fills `*error` (if non-null) on any parse or
/// unknown-name problem — callers must treat that as fatal, because a
/// typo'd scenario silently running fault-free defeats the point.
bool failpoints_arm(const std::string& spec, std::string* error);

/// Disarm everything and reset hit counters.
void failpoints_clear();

/// Total times the named site was evaluated while armed (diagnostics).
std::uint64_t failpoint_hits(const std::string& name);

/// True iff `name` is in the compiled-in registry.
bool failpoint_registered(const std::string& name);

/// All registered failpoint names, sorted.
std::vector<std::string> failpoint_names();

/// Arm from the BPROM_FAILPOINTS environment variable, if set.  Idempotent
/// (re-entry with the same env is a no-op).  Called from a dynamic
/// initializer in failpoint.cpp, but cross-TU initialization order is
/// unspecified, so code that must observe env arming before main() (the
/// crash-matrix child hook) calls this explicitly.  Aborts the process on
/// a malformed spec — a typo'd scenario must fail loudly, not pass
/// fault-free.
void failpoints_arm_from_env();

}  // namespace bprom::util
