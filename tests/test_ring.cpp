// MpmcRing: the bounded lock-free batch hand-off of the serving path.
// Ordering, wraparound, backpressure, close/drain semantics, and a
// multi-producer/multi-consumer stress run (the suite CI also builds under
// ThreadSanitizer).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "util/mpmc_ring.hpp"

namespace bprom {
namespace {

using util::MpmcRing;

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(0).capacity(), 2U);
  EXPECT_EQ(MpmcRing<int>(2).capacity(), 2U);
  EXPECT_EQ(MpmcRing<int>(3).capacity(), 4U);
  EXPECT_EQ(MpmcRing<int>(64).capacity(), 64U);
  EXPECT_EQ(MpmcRing<int>(65).capacity(), 128U);
}

TEST(MpmcRing, FifoOrderSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(MpmcRing, WraparoundReusesCellsCorrectly) {
  MpmcRing<std::uint64_t> ring(4);
  // Many laps around a tiny ring: every cell's sequence counter must keep
  // advancing by capacity per lap or ordering breaks down.
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{v}));
    std::uint64_t out = ~std::uint64_t{0};
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, v);
  }
  // Partially full across laps.
  for (std::uint64_t v = 0; v < 100; ++v) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{v}));
    ASSERT_TRUE(ring.try_push(v + 1000));
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    ASSERT_TRUE(ring.try_pop(a));
    ASSERT_TRUE(ring.try_pop(b));
    ASSERT_EQ(a, v);
    ASSERT_EQ(b, v + 1000);
  }
}

TEST(MpmcRing, MoveOnlyElements) {
  MpmcRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
  // Destructor drains leftovers exactly once (no leak, no double free —
  // ASan/valgrind would flag either).
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(8)));
}

TEST(MpmcRing, CloseStopsPushesButDrainsPops) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.push_wait(99));
  // Everything queued before close() is still handed out, in order...
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_EQ(ring.pop_wait(out), MpmcRing<int>::Pop::kItem);
    EXPECT_EQ(out, i);
  }
  // ...and only then does pop_wait report closed.
  int out = -1;
  EXPECT_EQ(ring.pop_wait(out), MpmcRing<int>::Pop::kClosed);
}

TEST(MpmcRing, ShutdownWhileFullWakesBlockedProducer) {
  MpmcRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));

  // A producer blocked on a full ring must wake and fail once the ring
  // closes — otherwise engine teardown would deadlock behind a stuck
  // audit_async caller.
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(ring.push_wait(3));
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());  // genuinely blocked on backpressure
  ring.close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());

  // The two queued items still drain.
  int out = -1;
  EXPECT_EQ(ring.pop_wait(out), MpmcRing<int>::Pop::kItem);
  EXPECT_EQ(ring.pop_wait(out), MpmcRing<int>::Pop::kItem);
  EXPECT_EQ(ring.pop_wait(out), MpmcRing<int>::Pop::kClosed);
}

TEST(MpmcRing, BackpressureUnblocksWhenConsumerFrees) {
  MpmcRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  std::thread producer([&] { EXPECT_TRUE(ring.push_wait(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));  // frees a slot; producer completes
  producer.join();
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(MpmcRing, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpmcRing<std::uint64_t> ring(16);  // small: forces heavy contention

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ring.push_wait(p * kPerProducer + i));
      }
    });
  }

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t value = 0;
      while (ring.pop_wait(value) == MpmcRing<std::uint64_t>::Pop::kItem) {
        sum.fetch_add(value, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : threads) t.join();
  ring.close();  // producers are done: consumers drain and exit
  for (auto& t : consumers) t.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // 0..n-1 each exactly once
}

}  // namespace
}  // namespace bprom
