#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>

#include "util/thread_pool.hpp"

namespace bprom::linalg {
namespace {

// Below this many multiply-adds the pool dispatch overhead dominates; the
// serial loop wins.  Output rows are disjoint per task and each row is
// accumulated in the serial order, so the parallel product is bit-identical.
constexpr std::size_t kParallelGemmFlops = std::size_t{1} << 21;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  const auto row_product = [&](std::size_t i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rrow = &rhs.data_[k * rhs.cols_];
      double* orow = &out.data_[i * rhs.cols_];
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  };
  if (rows_ > 1 && rows_ * cols_ * rhs.cols_ >= kParallelGemmFlops) {
    util::parallel_for(rows_, row_product);
  } else {
    for (std::size_t i = 0; i < rows_; ++i) row_product(i);
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::add_scaled(const Matrix& rhs, double scale) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * rhs.data_[i];
  return *this;
}

Matrix& Matrix::scale(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace bprom::linalg
