// Figure 5: PCA of meta-feature vectors — clean vs backdoored models and
// shadows separate after visual prompting.
#include "common.hpp"
#include "linalg/pca.hpp"
#include "metrics/scatter.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10, arch, 7, env.scale);
  const auto& diag = detector.diagnostics();

  std::vector<std::vector<float>> rows = diag.meta_features;
  std::vector<std::string> tags;
  for (int l : diag.meta_labels) tags.push_back(l ? "shadow-backdoor" : "shadow-clean");

  for (auto kind : {attacks::AttackKind::kTrojan, attacks::AttackKind::kAdapBlend}) {
    auto atk = attacks::AttackConfig::defaults(kind);
    auto pop = core::build_population(env.cifar10, atk, arch,
                                      env.scale.population_per_side, 1500 + (int)kind, env.scale);
    for (auto& m : pop) {
      nn::BlackBoxAdapter box(*m.model);
      auto verdict = detector.inspect(box);
      (void)verdict;
      // Reuse detector diag features through a fresh score: we approximate
      // the figure with (score, prompted accuracy) coordinates for the
      // suspicious population and PCA for shadows.
      rows.push_back({static_cast<float>(verdict.score),
                      static_cast<float>(verdict.prompted_accuracy)});
      tags.push_back(std::string(m.backdoored ? attacks::attack_name(kind) : "clean"));
    }
  }

  // PCA over the shadow meta features (suspicious points carry score/acc).
  const std::size_t d = diag.meta_features.empty() ? 2 : diag.meta_features[0].size();
  linalg::Matrix m(diag.meta_features.size(), d);
  for (std::size_t i = 0; i < diag.meta_features.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) m(i, j) = diag.meta_features[i][j];
  }
  auto pca = linalg::fit_pca(m, 2);
  std::vector<metrics::ScatterSeries> series;
  auto series_of = [&](const std::string& tag) -> metrics::ScatterSeries& {
    for (auto& s : series) if (s.label == tag) return s;
    series.push_back({tag, {}, {}});
    return series.back();
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double x, y;
    if (rows[i].size() == d) {
      auto p = pca.project(std::vector<double>(rows[i].begin(), rows[i].end()));
      x = p[0]; y = p[1];
    } else {
      x = rows[i][0]; y = rows[i][1];
    }
    auto& s = series_of(tags[i]);
    s.x.push_back(x);
    s.y.push_back(y);
  }
  metrics::write_scatter_csv("figure05_model_pca.csv", series);
  std::printf("== Figure 5: model-level separation ==\n%s",
              metrics::ascii_scatter(series, 64, 18).c_str());
  std::printf("CSV written to figure05_model_pca.csv\n");
  return 0;
}
