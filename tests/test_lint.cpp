// Tests for the bprom invariant linter (tools/lint_core.hpp).
//
// The fixture files under tests/lint_fixtures/ are known-bad snippets that
// are never compiled; each line that must produce a finding carries an
// `expect(<rule>)` marker in its trailing comment, and the suite derives
// the expected (line, rule) set from those markers.  That proves both
// directions at once: every rule fires exactly where intended, and nowhere
// else — including on the escape-hatch (`bprom-lint: allow(...)`) and
// justified (`relaxed:` / `ordered:`) variants sitting in the same file.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint_core.hpp"

#ifndef BPROM_LINT_FIXTURE_DIR
#error "build must define BPROM_LINT_FIXTURE_DIR"
#endif
#ifndef BPROM_LINT_RULES_FILE
#error "build must define BPROM_LINT_RULES_FILE"
#endif

namespace {

using bprom::lint::Finding;
using bprom::lint::Rules;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Rule set the fixtures are linted under: everything on, no exemptions,
/// and the hot-path tag pointed at the one fixture exercising it.
Rules fixture_rules() {
  std::istringstream config(
      "rule raw-thread on\n"
      "rule raw-rand on\n"
      "rule unordered-container on\n"
      "rule hot-path-alloc on\n"
      "rule relaxed-comment on\n"
      "rule float-accum on\n"
      "hot-path lint_fixtures/hot_alloc.cpp\n");
  std::string error;
  Rules rules = Rules::parse(config, &error);
  EXPECT_TRUE(error.empty()) << error;
  return rules;
}

/// (line, rule) pairs declared by `expect(<rule>)` markers in the fixture.
std::set<std::pair<std::size_t, std::string>> expected_findings(
    const std::string& text) {
  std::set<std::pair<std::size_t, std::string>> expected;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::size_t pos = 0;
    while ((pos = line.find("expect(", pos)) != std::string::npos) {
      const std::size_t start = pos + 7;
      const std::size_t close = line.find(')', start);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unclosed expect() marker on line " << lineno;
        break;
      }
      expected.emplace(lineno, line.substr(start, close - start));
      pos = close;
    }
  }
  return expected;
}

std::set<std::pair<std::size_t, std::string>> actual_findings(
    const std::vector<Finding>& findings) {
  std::set<std::pair<std::size_t, std::string>> actual;
  for (const Finding& f : findings) actual.emplace(f.line, f.rule);
  return actual;
}

/// Lint one fixture and require findings == its expect() markers, exactly.
void check_fixture(const std::string& name) {
  const std::string path =
      std::string(BPROM_LINT_FIXTURE_DIR) + "/" + name;
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  const auto expected = expected_findings(text);
  const auto actual =
      actual_findings(bprom::lint::lint_file(path, text, fixture_rules()));
  for (const auto& [line, rule] : expected) {
    EXPECT_TRUE(actual.count({line, rule}) > 0)
        << name << ":" << line << " should fire [" << rule << "]";
  }
  for (const auto& [line, rule] : actual) {
    EXPECT_TRUE(expected.count({line, rule}) > 0)
        << name << ":" << line << " fired [" << rule
        << "] with no expect() marker";
  }
}

TEST(LintFixtures, RawThread) { check_fixture("raw_thread.cpp"); }
TEST(LintFixtures, RawRand) { check_fixture("raw_rand.cpp"); }
TEST(LintFixtures, UnorderedContainer) { check_fixture("unordered.cpp"); }
TEST(LintFixtures, HotPathAlloc) { check_fixture("hot_alloc.cpp"); }
TEST(LintFixtures, RelaxedComment) { check_fixture("relaxed.cpp"); }
TEST(LintFixtures, FloatAccum) { check_fixture("float_accum.cpp"); }

// Each fixture must actually exercise its rule (no silently-empty files),
// and the escape hatch must be exercised somewhere.
TEST(LintFixtures, EveryRuleHasTeeth) {
  const char* fixtures[] = {"raw_thread.cpp",  "raw_rand.cpp",
                            "unordered.cpp",   "hot_alloc.cpp",
                            "relaxed.cpp",     "float_accum.cpp"};
  bool any_allow = false;
  for (const char* name : fixtures) {
    const std::string text =
        read_file(std::string(BPROM_LINT_FIXTURE_DIR) + "/" + name);
    EXPECT_FALSE(expected_findings(text).empty())
        << name << " declares no expected findings";
    any_allow = any_allow ||
                text.find("bprom-lint: allow(") != std::string::npos;
  }
  EXPECT_TRUE(any_allow);
}

// Tokens inside comments and string literals never match.
TEST(LintScanner, CommentsAndStringsAreInert) {
  const Rules rules = fixture_rules();
  const std::string text =
      "// std::thread rand() unordered_map memory_order_relaxed\n"
      "/* std::async srand(1) */\n"
      "const char* doc = \"std::thread rand() memory_order_relaxed\";\n";
  EXPECT_TRUE(bprom::lint::lint_file("inert.cpp", text, rules).empty());
}

// Identifier boundaries: embedding tokens inside longer names is fine.
TEST(LintScanner, TokenBoundaries) {
  const Rules rules = fixture_rules();
  const std::string text =
      "int operand = 1;\n"
      "int my_rand_like = operand;\n"        // rand bounded by '_'
      "void f() { std::this_thread::yield(); }\n";
  EXPECT_TRUE(bprom::lint::lint_file("bounds.cpp", text, rules).empty());
}

// The escape only reaches one line: an allow() two lines up does nothing.
TEST(LintScanner, AllowEscapeIsNarrow) {
  const Rules rules = fixture_rules();
  const std::string text =
      "#include <thread>\n"
      "// bprom-lint: allow(raw-thread)\n"
      "// some unrelated line of commentary\n"
      "std::thread t;\n";
  const auto findings = bprom::lint::lint_file("narrow.cpp", text, rules);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-thread");
  EXPECT_EQ(findings[0].line, 4u);
}

// Exemptions scope rules by path substring.
TEST(LintRules, ExemptionsScopeByPath) {
  std::istringstream config(
      "rule raw-thread on\n"
      "exempt raw-thread src/util/\n");
  std::string error;
  const Rules rules = Rules::parse(config, &error);
  ASSERT_TRUE(error.empty()) << error;
  const std::string text = "std::thread t;\n";
  EXPECT_TRUE(
      bprom::lint::lint_file("src/util/pool.cpp", text, rules).empty());
  EXPECT_EQ(bprom::lint::lint_file("src/nn/net.cpp", text, rules).size(),
            1u);
}

TEST(LintRules, UnknownDirectiveIsAnError) {
  std::istringstream config("rulez raw-thread on\n");
  std::string error;
  (void)Rules::parse(config, &error);
  EXPECT_FALSE(error.empty());
}

TEST(LintRules, MalformedRuleLineIsAnError) {
  std::istringstream config("rule raw-thread maybe\n");
  std::string error;
  (void)Rules::parse(config, &error);
  EXPECT_FALSE(error.empty());
}

// The checked-in configuration must parse and keep every rule on — a typo
// in lint_rules.txt must fail here, not silently drop a rule from CI.
TEST(LintRules, RepoConfigKeepsEveryRuleOn) {
  std::ifstream in(BPROM_LINT_RULES_FILE);
  ASSERT_TRUE(in.good()) << "missing " << BPROM_LINT_RULES_FILE;
  std::string error;
  const Rules rules = Rules::parse(in, &error);
  ASSERT_TRUE(error.empty()) << error;
  for (const char* rule :
       {"raw-thread", "raw-rand", "unordered-container", "hot-path-alloc",
        "relaxed-comment", "float-accum", "failpoint-name"}) {
    EXPECT_TRUE(rules.rule_on(rule)) << rule << " is off in lint_rules.txt";
  }
  // The hot-path discipline must keep covering the GEMM kernel layer.
  EXPECT_TRUE(rules.hot_path("src/tensor/gemm.cpp"));
}

// ---- failpoint-name: the cross-file registry/site pass ----

namespace fp {

/// A minimal registry block like the one in src/util/failpoint.cpp.
const char* kRegistryText =
    "namespace {\n"
    "const char* const kRegistry[] = {\n"
    "    // failpoint-registry-begin\n"
    "    \"io.read.open\",\n"
    "    \"net.send\",\n"
    "    // failpoint-registry-end\n"
    "};\n"
    "}\n";

Rules fp_rules() {
  std::istringstream config("rule failpoint-name on\n");
  std::string error;
  Rules rules = Rules::parse(config, &error);
  EXPECT_TRUE(error.empty()) << error;
  return rules;
}

}  // namespace fp

TEST(LintFailpoints, SitesAreExtractedFromRawLines) {
  // split_lines blanks string literals out of .code, so the name must come
  // from the raw text; comment-only mentions must NOT count as sites.
  const std::string text =
      "// BPROM_FAILPOINT(\"doc.only.mention\") in a comment\n"
      "if (auto hit = BPROM_FAILPOINT(\"io.read.open\")) throw 1;\n"
      "#define BPROM_FAILPOINT(name) forwarded(name)\n";
  const auto sites = bprom::lint::failpoint_sites("a.cpp", text);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].name, "io.read.open");
  EXPECT_EQ(sites[0].line, 2u);
}

TEST(LintFailpoints, RegistryParsesMarkerBlock) {
  const auto registry = bprom::lint::failpoint_registry(fp::kRegistryText);
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry[0].name, "io.read.open");
  EXPECT_EQ(registry[1].name, "net.send");
  // Quoted strings outside the marker block never register.
  EXPECT_TRUE(bprom::lint::failpoint_registry("const char* s = \"x\";\n")
                  .empty());
}

TEST(LintFailpoints, CleanWhenEverySiteIsRegisteredAndUnique) {
  const auto registry = bprom::lint::failpoint_registry(fp::kRegistryText);
  std::vector<bprom::lint::FailpointSite> sites = {
      {"src/io/binary.cpp", 10, "io.read.open"},
      {"src/net/socket.cpp", 20, "net.send"},
  };
  EXPECT_TRUE(bprom::lint::lint_failpoints(sites, registry, "reg.cpp",
                                           fp::fp_rules())
                  .empty());
}

TEST(LintFailpoints, UnregisteredDuplicateAndUnusedAllFire) {
  const auto registry = bprom::lint::failpoint_registry(fp::kRegistryText);
  std::vector<bprom::lint::FailpointSite> sites = {
      {"a.cpp", 1, "io.read.open"},
      {"b.cpp", 2, "io.read.open"},   // duplicate of a.cpp:1
      {"c.cpp", 3, "not.registered"}, // not in the registry
      // "net.send" registered but never used
  };
  const auto findings =
      bprom::lint::lint_failpoints(sites, registry, "reg.cpp", fp::fp_rules());
  ASSERT_EQ(findings.size(), 3u);
  bool dup = false, unreg = false, unused = false;
  for (const auto& f : findings) {
    EXPECT_EQ(f.rule, "failpoint-name");
    if (f.file == "b.cpp") dup = true;
    if (f.file == "c.cpp") unreg = true;
    if (f.file == "reg.cpp") unused = true;
  }
  EXPECT_TRUE(dup);
  EXPECT_TRUE(unreg);
  EXPECT_TRUE(unused);
}

TEST(LintFailpoints, RuleOffSuppressesEverything) {
  std::istringstream config("rule raw-thread on\n");
  std::string error;
  const Rules rules = Rules::parse(config, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<bprom::lint::FailpointSite> sites = {
      {"c.cpp", 3, "not.registered"}};
  EXPECT_TRUE(bprom::lint::lint_failpoints(sites, {}, "", rules).empty());
}

// src/net owns real IO threads (the epoll loops) but is deliberately NOT
// path-exempted from raw-thread: each owned thread is a per-site, justified
// `bprom-lint: allow(raw-thread)`, so under the checked-in configuration a
// NEW raw thread anywhere in src/net still fires while the sanctioned
// spawn-site pattern passes.
TEST(LintRules, NetOwnsThreadsOnlyThroughSanctionedAllowSites) {
  std::ifstream in(BPROM_LINT_RULES_FILE);
  ASSERT_TRUE(in.good()) << "missing " << BPROM_LINT_RULES_FILE;
  std::string error;
  const Rules rules = Rules::parse(in, &error);
  ASSERT_TRUE(error.empty()) << error;

  const std::string bare = "std::thread pump([] {});\n";
  EXPECT_EQ(bprom::lint::lint_file("src/net/server.cpp", bare, rules).size(),
            1u)
      << "an unsanctioned raw thread in src/net must fire raw-thread";
  EXPECT_EQ(bprom::lint::lint_file("src/net/new_file.cpp", bare, rules).size(),
            1u);

  const std::string sanctioned =
      "// bprom-lint: allow(raw-thread) — epoll pump owned by net::Server\n"
      "std::thread pump([] {});\n";
  EXPECT_TRUE(
      bprom::lint::lint_file("src/net/server.cpp", sanctioned, rules).empty());

  // The exemption that sanctions src/util does not leak to src/net-adjacent
  // paths by substring accident.
  EXPECT_EQ(
      bprom::lint::lint_file("src/netutil/helper.cpp", bare, rules).size(),
      1u);
}

}  // namespace
