#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace bprom::net {

namespace {

api::Status errno_status(const std::string& what) {
  return api::Status::Internal(what + ": " + std::strerror(errno));
}

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline` (clamped at 0), for poll().
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// poll() one fd for `events` until the deadline.  Returns OK when ready,
/// kDeadlineExceeded when time ran out, kInternal on a poll error.
/// `timeout_ms <= 0` means no deadline.
api::Status poll_until(int fd, short events, int timeout_ms,
                       Clock::time_point deadline, const char* what) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int wait = timeout_ms <= 0 ? -1 : remaining_ms(deadline);
    const int rc = ::poll(&p, 1, wait);
    if (rc > 0) return api::Status::Ok();
    if (rc == 0) {
      return api::Status::DeadlineExceeded(std::string(what) +
                                           " timed out after " +
                                           std::to_string(timeout_ms) + "ms");
    }
    if (errno == EINTR) continue;
    return errno_status(std::string("poll(") + what + ")");
  }
}

api::Result<sockaddr_in> parse_addr(const std::string& host,
                                    std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return api::Status::InvalidRequest("'" + host +
                                       "' is not a numeric IPv4 address");
  }
  return addr;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

api::Result<Socket> listen_on(const std::string& host, std::uint16_t port,
                              int backlog) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_status("socket()");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return errno_status("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) return errno_status("listen()");
  if (api::Status s = set_nonblocking(sock.fd()); !s.ok()) return s;
  return sock;
}

api::Result<Socket> connect_to(const std::string& host, std::uint16_t port) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_status("socket()");
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
                   sizeof(sockaddr_in));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return errno_status("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

api::Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname()");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

api::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return api::Status::Ok();
}

api::Status send_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return errno_status("send()");
  }
  return api::Status::Ok();
}

api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got) {
  *got = 0;
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc >= 0) {
      *got = static_cast<std::size_t>(rc);
      return api::Status::Ok();
    }
    if (errno == EINTR) continue;
    return errno_status("recv()");
  }
}

api::Result<Socket> connect_to(const std::string& host, std::uint16_t port,
                               int timeout_ms) {
  if (timeout_ms <= 0) return connect_to(host, port);
  if (auto hit = BPROM_FAILPOINT("net.connect")) {
    (void)hit;
    return api::Status::Internal("injected connect failure");
  }
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_status("socket()");
  if (api::Status s = set_nonblocking(sock.fd()); !s.ok()) return s;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const int rc =
      ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
                sizeof(sockaddr_in));
  if (rc != 0) {
    // EINTR on a non-blocking connect means it proceeds asynchronously,
    // exactly like EINPROGRESS.
    if (errno != EINPROGRESS && errno != EINTR) {
      return errno_status("connect(" + host + ":" + std::to_string(port) +
                          ")");
    }
    if (api::Status s = poll_until(sock.fd(), POLLOUT, timeout_ms, deadline,
                                   "connect");
        !s.ok()) {
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return errno_status("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      return errno_status("connect(" + host + ":" + std::to_string(port) +
                          ")");
    }
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;  // stays non-blocking for the timeout-aware send/recv
}

api::Status send_all(int fd, const std::uint8_t* data, std::size_t n,
                     int timeout_ms) {
  if (auto hit = BPROM_FAILPOINT("net.send")) {
    (void)hit;
    return api::Status::Internal("injected send failure");
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms <= 0 ? 0 : timeout_ms);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (api::Status s =
              poll_until(fd, POLLOUT, timeout_ms, deadline, "send");
          !s.ok()) {
        return s;
      }
      continue;
    }
    return errno_status("send()");
  }
  return api::Status::Ok();
}

api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got, int timeout_ms) {
  *got = 0;
  // A stalled peer: the delay action here lets tests hold a reader just
  // long enough to trip the timeout below.
  (void)BPROM_FAILPOINT("net.recv.stall");
  if (auto hit = BPROM_FAILPOINT("net.recv")) {
    (void)hit;
    return api::Status::Internal("injected recv failure");
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms <= 0 ? 0 : timeout_ms);
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc >= 0) {
      *got = static_cast<std::size_t>(rc);
      return api::Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (api::Status s = poll_until(fd, POLLIN, timeout_ms, deadline, "recv");
          !s.ok()) {
        return s;
      }
      continue;
    }
    return errno_status("recv()");
  }
}

}  // namespace bprom::net
