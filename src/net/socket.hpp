// Thin RAII + Status-typed wrappers over the POSIX socket calls the net
// subsystem uses.  Nothing here knows about frames or messages — just fds,
// addresses, and partial-IO-correct send/recv helpers.  Addresses are
// numeric IPv4 only ("127.0.0.1"): the serving deployments this front end
// targets sit behind their own load balancer / service discovery, so name
// resolution stays out of the dependency set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "api/status.hpp"

namespace bprom::net {

/// Move-only owner of a socket fd (closed on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Release and close the fd now (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Bound + listening TCP socket on `host:port` (port 0 = kernel-assigned;
/// read it back with local_port).  SO_REUSEADDR set, non-blocking.
api::Result<Socket> listen_on(const std::string& host, std::uint16_t port,
                              int backlog);

/// Blocking TCP connect to `host:port` with TCP_NODELAY.
api::Result<Socket> connect_to(const std::string& host, std::uint16_t port);

/// Port a bound socket actually landed on (after listen_on with port 0).
api::Result<std::uint16_t> local_port(int fd);

api::Status set_nonblocking(int fd);

/// Blocking write of the whole buffer (retries partial writes / EINTR).
api::Status send_all(int fd, const std::uint8_t* data, std::size_t n);

/// Blocking read of up to `cap` bytes.  *got == 0 means orderly peer close.
api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got);

}  // namespace bprom::net
