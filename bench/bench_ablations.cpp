// Ablations called out in DESIGN.md §7: meta-model choice, prompt optimizer,
// query count, prompt ensembling.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  auto run = [&](const char* name, core::BpromConfig cfg) {
    core::BpromDetector detector(cfg);
    util::Rng rng(7 ^ 0xDE7EC7ULL);
    auto reserved = data::sample_fraction(env.cifar10.test, 0.10, rng);
    auto dt_train = data::subset(env.stl10.train,
        rng.sample_without_replacement(env.stl10.train.size(), 256));
    detector.fit(reserved, 10, dt_train, env.stl10.test);
    auto cell = bprom_cell(detector, env.cifar10, attacks::AttackKind::kBadNets,
                           arch, 1600, env.scale);
    std::printf("%-28s auroc %.3f f1 %.3f\n", name, cell.auroc, cell.f1);
  };
  auto base = core::default_bprom_config(env.scale, arch, 7);
  run("default (SPSA, summaries)", base);
  {
    auto cfg = base;
    cfg.prompt_blackbox.optimizer = vp::BlackBoxOptimizer::kCmaEs;
    run("CMA-ES prompting", cfg);
  }
  {
    auto cfg = base;
    cfg.include_query_features = true;
    run("+ raw query features", cfg);
  }
  {
    auto cfg = base;
    cfg.prompt_ensemble = 1;
    run("no prompt ensemble", cfg);
  }
  {
    auto cfg = base;
    cfg.query_samples = 4;
    run("q = 4 queries", cfg);
  }
  {
    auto cfg = base;
    cfg.prompt_shadows_blackbox = false;
    run("white-box shadow prompts", cfg);
  }
  return 0;
}
