// Quickstart: train one clean and one BadNets-backdoored classifier on the
// cifar10-like substrate, then ask BPROM which one is infected.
//
// Usage: quickstart            (BPROM_SCALE=0|1|2 controls cost)
#include <cstdio>

#include "core/experiment.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace bprom;
  const auto scale = core::ExperimentScale::current();
  util::Stopwatch clock;

  std::printf("== BPROM quickstart ==\n");
  std::printf("substrate: synthetic cifar10-like (source), stl10-like (D_T)\n\n");

  data::Dataset source = data::make_dataset(data::DatasetKind::kCifar10, 1);
  data::Dataset target = data::make_dataset(data::DatasetKind::kStl10, 2);

  std::printf("[%.1fs] training a clean suspicious model...\n", clock.seconds());
  auto clean = core::train_clean_model(source, nn::ArchKind::kResNet18Mini,
                                       101, scale);
  std::printf("[%.1fs]   clean accuracy: %.3f\n", clock.seconds(),
              clean.clean_accuracy);

  std::printf("[%.1fs] training a BadNets-backdoored suspicious model...\n",
              clock.seconds());
  auto attack = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets,
                                                /*target_class=*/0);
  auto infected = core::train_backdoored_model(
      source, attack, nn::ArchKind::kResNet18Mini, 102, scale);
  std::printf("[%.1fs]   clean accuracy: %.3f, attack success rate: %.3f\n",
              clock.seconds(), infected.clean_accuracy, infected.asr);

  std::printf("[%.1fs] fitting the BPROM detector (shadows + prompts + forest)...\n",
              clock.seconds());
  core::BpromDetector detector = core::fit_detector(
      source, target, /*reserved_fraction=*/0.10,
      nn::ArchKind::kResNet18Mini, 7, scale);
  const auto& diag = detector.diagnostics();
  double clean_acc = 0.0;
  for (double a : diag.clean_shadow_prompted_accuracy) clean_acc += a;
  clean_acc /= static_cast<double>(diag.clean_shadow_prompted_accuracy.size());
  double bd_acc = 0.0;
  for (double a : diag.backdoor_shadow_prompted_accuracy) bd_acc += a;
  bd_acc /= static_cast<double>(diag.backdoor_shadow_prompted_accuracy.size());
  std::printf("[%.1fs]   prompted shadow accuracy: clean %.3f vs backdoored %.3f\n",
              clock.seconds(), clean_acc, bd_acc);

  std::printf("[%.1fs] inspecting both models (black-box CMA-ES prompting)...\n",
              clock.seconds());
  nn::BlackBoxAdapter clean_box(*clean.model);
  auto v1 = detector.inspect(clean_box);
  std::printf("[%.1fs]   clean model    -> score %.3f (%s), prompted acc %.3f, %zu queries\n",
              clock.seconds(), v1.score, v1.backdoored ? "BACKDOOR" : "clean",
              v1.prompted_accuracy, v1.queries);

  nn::BlackBoxAdapter infected_box(*infected.model);
  auto v2 = detector.inspect(infected_box);
  std::printf("[%.1fs]   infected model -> score %.3f (%s), prompted acc %.3f, %zu queries\n",
              clock.seconds(), v2.score, v2.backdoored ? "BACKDOOR" : "clean",
              v2.prompted_accuracy, v2.queries);

  const bool correct = !v1.backdoored && v2.backdoored;
  std::printf("\nverdict pair %s", correct ? "CORRECT\n" : "incorrect ");
  if (!correct) {
    std::printf("(expected at smoke scale: 2+2 shadows; see EXPERIMENTS.md "
                "\"known attenuation\"; rerun with BPROM_SCALE=2)\n");
  }
  return 0;
}
