// Composite blocks: residual (ResNet-style) and depthwise-separable
// (MobileNetV2-style) units.  Each is a Layer that owns its sub-layers and
// composes their forward/backward passes, including the skip connection.
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace bprom::nn {

/// conv3x3 -> BN -> ReLU -> conv3x3 -> BN, plus identity / 1x1-projection
/// skip, final ReLU.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(std::size_t in_c, std::size_t out_c, std::size_t stride,
                util::Rng& rng);
  ResidualBlock(const ResidualBlock& other);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<std::vector<float>*> state() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ResidualBlock>(*this);
  }
  [[nodiscard]] std::string name() const override { return "ResidualBlock"; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> proj_;  // 1x1 when shape changes, else null
  std::unique_ptr<BatchNorm2d> proj_bn_;
  ReLU relu_out_;
  Tensor skip_input_;
};

/// Depthwise 3x3 -> BN -> ReLU -> pointwise 1x1 -> BN (+skip when shape
/// preserved), final ReLU.  The inverted-bottleneck expansion is omitted to
/// keep the CPU cost low; the depthwise/pointwise factorization that
/// characterizes MobileNetV2 is retained.
class DepthwiseSeparableBlock final : public Layer {
 public:
  DepthwiseSeparableBlock(std::size_t in_c, std::size_t out_c,
                          std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<std::vector<float>*> state() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DepthwiseSeparableBlock>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "DepthwiseSeparableBlock";
  }

 private:
  bool has_skip_;
  DepthwiseConv2d dw_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d pw_;
  BatchNorm2d bn2_;
  ReLU relu_out_;
  Tensor skip_input_;
};

}  // namespace bprom::nn
