// Tables 17-18: AUROC + F1 on MobileNetV2Mini.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kMobileNetV2Mini;
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> header = {"method", "metric"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    util::TablePrinter table(header);
    for (auto d : {defenses::DefenseKind::kStrip, defenses::DefenseKind::kFrequency,
                   defenses::DefenseKind::kScan}) {
      std::vector<std::string> au = {defenses::defense_name(d), "AUROC"};
      std::vector<std::string> f1 = {defenses::defense_name(d), "F1"};
      for (auto a : main_attacks()) {
        auto eval = baseline_cell(d, *src, a, arch, 800 + (int)a, env.scale);
        au.push_back(util::cell(eval.auroc));
        f1.push_back(util::cell(eval.f1));
      }
      table.add_row(au);
      table.add_row(f1);
    }
    auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
    std::vector<std::string> au = {"BPROM (10%)", "AUROC"};
    std::vector<std::string> f1 = {"BPROM (10%)", "F1"};
    for (const auto& cell : bprom_row(detector, *src, arch, 850, env.scale)) {
      au.push_back(util::cell(cell.auroc));
      f1.push_back(util::cell(cell.f1));
    }
    table.add_row(au);
    table.add_row(f1);
    std::printf("== Tables 17-18 (%s, MobileNetV2Mini) ==\n", src->profile.name.c_str());
    table.print();
  }
  return 0;
}
