#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "net/frame.hpp"
#include "nn/blackbox.hpp"

namespace bprom::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

/// Per-connection state.  Fields fall into three ownership classes:
/// atomics (touched by IO thread + completion callbacks), mutex-guarded
/// write state (same two parties), and plain fields owned exclusively by
/// the connection's IO thread (parser, budgets, epoll bookkeeping) — those
/// need no lock because a connection never changes threads.
struct Server::Connection {
  Connection(Socket socket, std::size_t max_frame_bytes)
      : sock(std::move(socket)),
        assembler(max_frame_bytes),
        last_activity(Clock::now()) {}

  Socket sock;
  std::atomic<bool> closed{false};
  std::atomic<std::size_t> in_flight{0};
  /// Completions that already released their admission slots but have not
  /// enqueued their response frame yet.  In that window the connection is
  /// neither in-flight nor write-pending, but must not be reaped as idle.
  std::atomic<std::size_t> completions_pending{0};

  // --- owning IO thread only ---
  FrameAssembler assembler;
  std::uint64_t requests_seen = 0;
  std::uint64_t bytes_seen = 0;
  Clock::time_point last_activity;
  bool want_write = false;
  bool close_after_flush = false;
  std::size_t io_index = 0;

  // --- shared with completion callbacks ---
  util::Mutex mu;
  std::deque<std::vector<std::uint8_t>> write_queue BPROM_GUARDED_BY(mu);
  std::size_t write_offset BPROM_GUARDED_BY(mu) = 0;  // into front()
};

/// One epoll loop.  `conns` is owned by the loop's thread alone; the
/// mutex-guarded hand-off vectors are how other threads (the acceptor,
/// engine completion callbacks) reach it, always paired with an eventfd
/// wakeup.
struct Server::IoThread {
  std::size_t index = 0;
  int epoll_fd = -1;
  int event_fd = -1;

  util::Mutex mu;
  std::vector<std::shared_ptr<Connection>> incoming BPROM_GUARDED_BY(mu);
  std::vector<std::shared_ptr<Connection>> writable BPROM_GUARDED_BY(mu);

  // --- this IoThread's loop only ---
  std::map<int, std::shared_ptr<Connection>> conns;

  // Long-lived IO loop, not batch math: routing it through the
  // work-assisting ThreadPool would wedge the pool (the loop blocks in
  // epoll_wait forever), and it never touches order-dependent reductions.
  // Long-lived epoll pump, owned and joined by Server::stop(); not pool
  // work (it blocks in epoll_wait, so it can never run on the pool).
  // bprom-lint: allow(raw-thread)
  std::thread thread;

  ~IoThread() {
    if (event_fd >= 0) ::close(event_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }
};

Server::Server(api::AuditEngine& engine, ServerConfig config)
    : engine_(&engine),
      config_(std::move(config)),
      admission_(config_.admission) {}

Server::~Server() { stop(); }

api::Status Server::start() {
  if (started_) {
    return api::Status::FailedPrecondition("server is already running");
  }
  auto listener = listen_on(config_.host, config_.port, 128);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  auto bound = local_port(listener_.fd());
  if (!bound.ok()) return bound.status();
  port_ = bound.value();

  const std::size_t n = std::max<std::size_t>(1, config_.io_threads);
  io_threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    io->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (io->epoll_fd < 0 || io->event_fd < 0) {
      io_threads_.clear();
      listener_.close();
      return api::Status::Internal(std::string("epoll/eventfd setup: ") +
                                   std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = io->event_fd;
    ::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->event_fd, &ev);
    if (i == 0) {
      ev.data.fd = listener_.fd();
      ::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &ev);
    }
    io_threads_.push_back(std::move(io));
  }
  stopping_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) {
    // See IoThread::thread for why these are raw threads.
    // See IoThread::thread: epoll event pumps the pool cannot host.
    io_threads_[i]->thread =
        // bprom-lint: allow(raw-thread)
        std::thread([this, i] { io_loop(*io_threads_[i], i == 0); });
  }
  started_ = true;
  return api::Status::Ok();
}

void Server::begin_drain() {
  if (!started_) return;
  // release: the IO threads' acquire loads (and the eventfd wakeups below)
  // publish the mode switch; each loop then deregisters the listener and
  // starts sweeping finished connections closed.
  draining_.store(true, std::memory_order_release);
  for (auto& io : io_threads_) wake(*io);
}

void Server::stop() {
  if (!started_) return;
  if (config_.drain_timeout_ms > 0) {
    // Graceful half: let in-flight audits finish and their responses reach
    // the wire.  The IO threads close each connection as it empties, so
    // "every connection gone" means "everything owed was flushed".
    begin_drain();
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
    // relaxed: statistics tally read; the sleep loop only needs the value
    // to eventually reach zero, not ordering against connection state.
    while (connections_active_.load(std::memory_order_relaxed) > 0 &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& io : io_threads_) wake(*io);
  for (auto& io : io_threads_) {
    if (io->thread.joinable()) io->thread.join();
  }
  {
    // Completion callbacks signal IoThread eventfds; the fds (closed by
    // ~IoThread below) must outlive the last callback.
    util::MutexLock lock(drain_mu_);
    while (callbacks_in_flight_ > 0) drain_cv_.wait(drain_mu_);
  }
  io_threads_.clear();
  listener_.close();
  started_ = false;
}

void Server::wake(IoThread& io) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc =
      ::write(io.event_fd, &one, sizeof(one));
}

void Server::io_loop(IoThread& io, bool is_acceptor) {
  std::array<epoll_event, 64> events;
  int timeout_ms = 500;  // upper bound on stop() latency
  if (config_.idle_timeout_ms > 0) {
    timeout_ms = std::clamp<int>(
        static_cast<int>(config_.idle_timeout_ms / 2), 10, 500);
  }
  bool listener_live = is_acceptor;
  // acquire: pairs with stop()'s release store so the loop observes the
  // flag promptly after its eventfd wakeup.
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(io.epoll_fd, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd died under us: tear this loop down
    }
    // Drain step 1: stop accepting.  Only this loop touches the listener's
    // epoll registration, so deregistering here (not in begin_drain, which
    // may run on any thread) cannot race the accept path below.
    if (listener_live && draining()) {
      ::epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      listener_live = false;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == io.event_fd) {
        std::uint64_t drained = 0;
        while (::read(io.event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (is_acceptor && fd == listener_.fd()) {
        if (listener_live) accept_ready(io);
        continue;
      }
      auto it = io.conns.find(fd);
      if (it == io.conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(io, conn);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) flush_writes(io, conn);
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if ((ev & EPOLLIN) != 0) handle_readable(io, conn);
    }
    adopt_incoming(io);
    if (config_.idle_timeout_ms > 0) sweep_idle(io);
    // Drain steps 2+3: in-flight audits finish through the normal
    // completion path; connections close the moment they owe nothing.
    if (draining()) sweep_draining(io);
  }
  // Teardown: this thread owns these sockets, so it closes them.
  for (auto& [fd, conn] : io.conns) {
    if (!conn->closed.exchange(true)) {
      conn->sock.close();
      // relaxed: statistics tally (stats endpoint snapshot, not a
      // transaction).
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  io.conns.clear();
}

void Server::accept_ready(IoThread& io) {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient accept error: try later
    }
    // relaxed: statistics tally; the cap check below tolerates snapshot
    // slack (it is a protection valve, not an exact quota).
    if (connections_active_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn =
        std::make_shared<Connection>(Socket(fd), config_.max_frame_bytes);
    // relaxed: statistics tallies (see above).
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    // relaxed: round-robin dealing needs uniqueness, not ordering.
    const std::size_t target =
        next_io_thread_.fetch_add(1, std::memory_order_relaxed) %
        io_threads_.size();
    conn->io_index = target;
    IoThread& owner = *io_threads_[target];
    if (&owner == &io) {
      io.conns[conn->sock.fd()] = conn;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->sock.fd();
      ::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, conn->sock.fd(), &ev);
    } else {
      {
        util::MutexLock lock(owner.mu);
        owner.incoming.push_back(conn);
      }
      wake(owner);
    }
  }
}

void Server::adopt_incoming(IoThread& io) {
  std::vector<std::shared_ptr<Connection>> incoming;
  std::vector<std::shared_ptr<Connection>> writable;
  {
    util::MutexLock lock(io.mu);
    incoming.swap(io.incoming);
    writable.swap(io.writable);
  }
  for (auto& conn : incoming) {
    if (conn->closed.load(std::memory_order_acquire)) continue;
    io.conns[conn->sock.fd()] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->sock.fd();
    ::epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, conn->sock.fd(), &ev);
  }
  for (auto& conn : writable) {
    if (conn->closed.load(std::memory_order_acquire)) continue;
    flush_writes(io, conn);
  }
}

void Server::handle_readable(IoThread& io,
                             const std::shared_ptr<Connection>& conn) {
  if (conn->close_after_flush) return;  // draining; input is dead
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::recv(conn->sock.fd(), buf.data(), buf.size(), 0);
    if (n > 0) {
      // relaxed: statistics tally.
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      conn->bytes_seen += static_cast<std::uint64_t>(n);
      conn->last_activity = Clock::now();
      conn->assembler.append(buf.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // orderly peer close
      close_connection(io, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(io, conn);
    return;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  for (;;) {
    const FrameAssembler::Next next = conn->assembler.next(&header, &body);
    if (next == FrameAssembler::Next::kNeedMore) break;
    if (next == FrameAssembler::Next::kError) {
      // The stream cannot be resynchronized (bad magic / oversized length
      // prefix): answer with the typed reason, then drain and close.
      // relaxed: statistics tally.
      rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
      send_error(io, conn, 0, conn->assembler.error());
      conn->close_after_flush = true;
      flush_writes(io, conn);
      return;
    }
    dispatch_frame(io, conn, header, body);
    if (conn->closed.load(std::memory_order_acquire) ||
        conn->close_after_flush) {
      return;
    }
  }
}

void Server::dispatch_frame(IoThread& io,
                            const std::shared_ptr<Connection>& conn,
                            const FrameHeader& header,
                            std::vector<std::uint8_t>& body) {
  if (header.protocol_version > kProtocolVersion) {
    // A newer protocol may have changed the header layout itself, so after
    // answering we stop trusting the stream.
    // relaxed: statistics tally.
    rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
    send_error(io, conn, header.request_id,
               api::Status::VersionMismatch(
                   "protocol version " +
                   std::to_string(header.protocol_version) +
                   " is newer than this server's " +
                   std::to_string(kProtocolVersion)));
    conn->close_after_flush = true;
    flush_writes(io, conn);
    return;
  }
  switch (header.type) {
    case MsgType::kAuditRequest:
      handle_audit(io, conn, header, body);
      return;
    case MsgType::kStatsRequest: {
      try {
        io::Reader reader(std::move(body));
        decode_stats_request(reader);
      } catch (const io::IoError& e) {
        // relaxed: statistics tally.
        rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
        send_error(io, conn, header.request_id, status_from_io(e));
        return;
      }
      StatsResponseMsg msg;
      msg.engine = engine_->stats();
      msg.server = counters();
      io::Writer writer;
      encode_stats_response(writer, msg);
      enqueue_write(io, conn,
                    encode_frame(MsgType::kStatsResponse, header.request_id,
                                 writer),
                    /*from_io_thread=*/true);
      return;
    }
    case MsgType::kShutdownRequest: {
      try {
        io::Reader reader(std::move(body));
        decode_shutdown_request(reader);
      } catch (const io::IoError& e) {
        // relaxed: statistics tally.
        rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
        send_error(io, conn, header.request_id, status_from_io(e));
        return;
      }
      // Flip the mode FIRST: a client that has read the acknowledgement
      // must observe draining() == true.  The ack still reaches the wire —
      // it rides the normal write queue, and the drain sweep only closes a
      // connection whose queue has fully flushed.
      begin_drain();
      ShutdownResponseMsg msg;
      io::Writer writer;
      encode_shutdown_response(writer, msg);
      enqueue_write(io, conn,
                    encode_frame(MsgType::kShutdownResponse,
                                 header.request_id, writer),
                    /*from_io_thread=*/true);
      return;
    }
    case MsgType::kInfoRequest: {
      InfoRequestMsg request;
      try {
        io::Reader reader(std::move(body));
        request = decode_info_request(reader);
      } catch (const io::IoError& e) {
        // relaxed: statistics tally.
        rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
        send_error(io, conn, header.request_id, status_from_io(e));
        return;
      }
      InfoResponseMsg msg;
      auto info = engine_->info(request.detector);
      if (info.ok()) {
        msg.info = std::move(info).value();
      } else {
        msg.status = info.status();
      }
      io::Writer writer;
      encode_info_response(writer, msg);
      enqueue_write(io, conn,
                    encode_frame(MsgType::kInfoResponse, header.request_id,
                                 writer),
                    /*from_io_thread=*/true);
      return;
    }
    default:
      send_error(io, conn, header.request_id,
                 api::Status::InvalidRequest(
                     "unexpected message type " +
                     std::to_string(static_cast<unsigned>(header.type)) +
                     " (clients send audit/stats/info requests)"));
      return;
  }
}

void Server::handle_audit(IoThread& io,
                          const std::shared_ptr<Connection>& conn,
                          const FrameHeader& header,
                          std::vector<std::uint8_t>& body) {
  ++conn->requests_seen;
  // A draining server starts no new audits — only the ones already in
  // flight finish.  Typed refusal, so a retrying client fails fast instead
  // of replaying into a closing server.
  if (draining()) {
    send_error(io, conn, header.request_id,
               api::Status::FailedPrecondition("server is draining"));
    return;
  }
  // Admission runs BEFORE the body is decoded: rejecting an over-budget
  // request must stay cheap exactly when the server is overloaded.
  // relaxed: in_flight is incremented by this thread only; the load needs
  // atomicity against the completion callback's decrement, not ordering.
  if (api::Status admit =
          admission_.admit(conn->in_flight.load(std::memory_order_relaxed),
                           conn->requests_seen, conn->bytes_seen);
      !admit.ok()) {
    send_error(io, conn, header.request_id, admit);
    return;
  }
  AuditRequestMsg msg;
  try {
    io::Reader reader(std::move(body));
    msg = decode_audit_request(reader);
  } catch (const io::IoError& e) {
    admission_.release();
    // relaxed: statistics tally.
    rejected_protocol_.fetch_add(1, std::memory_order_relaxed);
    send_error(io, conn, header.request_id, status_from_io(e));
    return;
  } catch (const std::exception& e) {
    admission_.release();
    send_error(io, conn, header.request_id, api::Status::Internal(e.what()));
    return;
  }
  // The uploaded model lives in an owning adapter held by the completion
  // callback, so it outlives the whole async audit.
  auto box = std::make_shared<nn::BlackBoxAdapter>(std::move(msg.model));
  api::AuditRequest request;
  request.struct_version = msg.struct_version;
  request.model_id = std::move(msg.model_id);
  request.detector = std::move(msg.detector);
  request.model = box.get();
  request.query_budget = msg.query_budget;
  request.deadline_ms = msg.deadline_ms;
  std::vector<api::AuditRequest> batch;
  batch.push_back(std::move(request));

  // relaxed: single-writer counter (this IO thread); see admit() above.
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(drain_mu_);
    ++callbacks_in_flight_;
  }
  IoThread* owner = io_threads_[conn->io_index].get();
  const std::uint64_t request_id = header.request_id;
  // Backpressure by construction: a full engine ring blocks this submit,
  // which stops this IO thread reading sockets, which lets TCP flow
  // control push back on clients — bounded memory, not a hidden backlog.
  engine_->audit_async(
      std::move(batch),
      [this, conn, box, owner, request_id](
          std::vector<api::AuditResponse> responses) {
        AuditResponseMsg response;
        if (responses.empty()) {
          response.status = api::Status::Internal(
              "engine returned no response for the audit");
        } else {
          response = to_wire(responses[0]);
        }
        // Slots are released BEFORE the response frame is enqueued: the
        // client reads a response as "my slot is free" and may pipeline
        // the next request the instant the frame lands, so releasing
        // after the enqueue loses that race and bounces well-behaved
        // ping-pong traffic off a stale in-flight count.
        // relaxed: counts the sweeper-guard window opened below; the
        // in_flight release fence orders it for the sweeper.
        conn->completions_pending.fetch_add(1, std::memory_order_relaxed);
        // release: pairs with the idle sweeper's acquire load — a sweeper
        // that observes this decrement also observes the pending
        // completion registered above, so the connection is never judged
        // idle between slot release and response enqueue.
        conn->in_flight.fetch_sub(1, std::memory_order_release);
        admission_.release();
        io::Writer writer;
        encode_audit_response(writer, response);
        enqueue_write(
            *owner, conn,
            encode_frame(MsgType::kAuditResponse, request_id, writer),
            /*from_io_thread=*/false);
        // release: a sweeper that reads 0 here synchronizes with this
        // store and therefore sees the enqueued frame under conn->mu.
        conn->completions_pending.fetch_sub(1, std::memory_order_release);
        {
          util::MutexLock lock(drain_mu_);
          if (--callbacks_in_flight_ == 0) drain_cv_.notify_all();
        }
      });
}

void Server::send_error(IoThread& io, const std::shared_ptr<Connection>& conn,
                        std::uint64_t request_id, const api::Status& status) {
  ErrorMsg msg;
  msg.status = status;
  io::Writer writer;
  encode_error(writer, msg);
  enqueue_write(io, conn, encode_frame(MsgType::kError, request_id, writer),
                /*from_io_thread=*/true);
}

void Server::enqueue_write(IoThread& io,
                           const std::shared_ptr<Connection>& conn,
                           std::vector<std::uint8_t> frame,
                           bool from_io_thread) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  {
    util::MutexLock lock(conn->mu);
    conn->write_queue.push_back(std::move(frame));
  }
  if (from_io_thread) {
    flush_writes(io, conn);
  } else {
    {
      util::MutexLock lock(io.mu);
      io.writable.push_back(conn);
    }
    wake(io);
  }
}

void Server::flush_writes(IoThread& io,
                          const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool fatal = false;
  bool pending = false;
  {
    util::MutexLock lock(conn->mu);
    while (!conn->write_queue.empty()) {
      const std::vector<std::uint8_t>& front = conn->write_queue.front();
      const std::size_t left = front.size() - conn->write_offset;
      const ssize_t n = ::send(conn->sock.fd(),
                               front.data() + conn->write_offset, left,
                               MSG_NOSIGNAL);
      if (n > 0) {
        // relaxed: statistics tally.
        bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
        conn->write_offset += static_cast<std::size_t>(n);
        conn->last_activity = Clock::now();
        if (conn->write_offset == front.size()) {
          conn->write_queue.pop_front();
          conn->write_offset = 0;
        }
        continue;  // partial write: retry the remainder immediately
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      fatal = true;
      break;
    }
    pending = !conn->write_queue.empty();
  }
  if (fatal) {
    close_connection(io, conn);
    return;
  }
  if (!pending && conn->close_after_flush) {
    close_connection(io, conn);
    return;
  }
  if (pending != conn->want_write) {
    conn->want_write = pending;
    update_epoll(io, *conn);
  }
}

void Server::update_epoll(IoThread& io, Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0U);
  ev.data.fd = conn.sock.fd();
  ::epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

void Server::close_connection(IoThread& io,
                              const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = conn->sock.fd();
  ::epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  io.conns.erase(fd);
  // Tally BEFORE the fd closes: the close sends FIN, and a peer unblocked
  // by it may read counters() immediately — it must not see the old count.
  // relaxed: statistics tally.
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  conn->sock.close();
}

void Server::sweep_idle(IoThread& io) {
  const auto now = Clock::now();
  const auto limit = std::chrono::milliseconds(config_.idle_timeout_ms);
  std::vector<std::shared_ptr<Connection>> stale;
  for (auto& [fd, conn] : io.conns) {
    // acquire: pairs with the completion callback's release ordering —
    // seeing the in-flight decrement implies seeing the pending
    // completion it registered first, so a connection mid-completion
    // (slot released, response not yet enqueued) is never reaped.
    if (conn->in_flight.load(std::memory_order_acquire) > 0) continue;
    if (conn->completions_pending.load(std::memory_order_acquire) > 0) {
      continue;
    }
    bool pending;
    {
      util::MutexLock lock(conn->mu);
      pending = !conn->write_queue.empty();
    }
    if (pending) continue;
    if (now - conn->last_activity >= limit) stale.push_back(conn);
  }
  for (auto& conn : stale) {
    // relaxed: statistics tally.
    connections_idle_closed_.fetch_add(1, std::memory_order_relaxed);
    close_connection(io, conn);
  }
}

void Server::sweep_draining(IoThread& io) {
  std::vector<std::shared_ptr<Connection>> done;
  for (auto& [fd, conn] : io.conns) {
    // Same acquire pairing as sweep_idle: a connection between slot
    // release and response enqueue is mid-completion, not finished.
    if (conn->in_flight.load(std::memory_order_acquire) > 0) continue;
    if (conn->completions_pending.load(std::memory_order_acquire) > 0) {
      continue;
    }
    bool pending;
    {
      util::MutexLock lock(conn->mu);
      pending = !conn->write_queue.empty();
    }
    if (pending) continue;  // response bytes still owed: flush first
    done.push_back(conn);
  }
  for (auto& conn : done) close_connection(io, conn);
}

ServerCounters Server::counters() const {
  ServerCounters out;
  // relaxed: snapshot reads of statistics tallies, not a transaction.
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_active =
      connections_active_.load(std::memory_order_relaxed);  // relaxed: ^
  out.connections_idle_closed =
      connections_idle_closed_.load(std::memory_order_relaxed);  // relaxed: ^
  out.rejected_protocol =
      rejected_protocol_.load(std::memory_order_relaxed);  // relaxed: ^
  out.bytes_received =
      bytes_received_.load(std::memory_order_relaxed);  // relaxed: ^
  out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);  // relaxed: ^
  admission_.fill(&out);
  return out;
}

}  // namespace bprom::net
