// Persistence + serving walkthrough: fit once, audit many, survive restarts.
//
// The paper's §1 marketplace scenario as a long-lived service, entirely on
// the public `bprom::api` façade:
//   1. fit a BPROM detector (the expensive shadow-population step) and
//      publish it as "marketplace@v1" through api::AuditEngine,
//   2. audit the marketplace in memory (batched, status-typed responses),
//   3. persist every listed model to .bprom containers alongside the store,
//   4. simulate a fresh process: a new engine over the same directory
//      reloads the detector and the models, and audits again,
//   5. diff the two verdict sets — any drift is a format regression, and
//      the process exits nonzero so CI fails.
// Timing columns are wall-clock and excluded from the comparison.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "io/serialize.hpp"

int main() {
  using namespace bprom;
  const auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);

  std::printf("== serve_audit: fit -> publish -> reload -> batch audit ==\n");

  // The marketplace: clean listings plus an assortment of attacks.
  struct Listing {
    core::TrainedSuspicious model;
    std::string description;
  };
  std::vector<Listing> marketplace;
  std::size_t id = 0;
  for (int i = 0; i < 2; ++i) {
    marketplace.push_back({core::train_clean_model(
                               src, nn::ArchKind::kResNet18Mini, 800 + id++,
                               scale),
                           "vendor upload (clean)"});
  }
  for (auto kind : {attacks::AttackKind::kBadNets, attacks::AttackKind::kWaNet,
                    attacks::AttackKind::kAdapBlend}) {
    auto atk = attacks::AttackConfig::defaults(kind, static_cast<int>(id % 10));
    marketplace.push_back({core::train_backdoored_model(
                               src, atk, nn::ArchKind::kResNet18Mini,
                               900 + id++, scale),
                           "vendor upload (" + attacks::attack_name(kind) + ")"});
  }

  std::printf("fitting detector (%zu+%zu shadows)...\n",
              scale.shadows_per_side, scale.shadows_per_side);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "bprom_serve_audit").string();
  std::filesystem::remove_all(store_dir);  // versions are per-run; start clean

  const auto make_requests = [&](std::vector<nn::BlackBoxAdapter>& boxes) {
    std::vector<api::AuditRequest> requests(marketplace.size());
    for (std::size_t i = 0; i < marketplace.size(); ++i) {
      requests[i].model_id = "listing-" + std::to_string(i);
      requests[i].detector = "marketplace";
      requests[i].model = &boxes[i];
    }
    return requests;
  };

  // --- Audit pass 1: publish the freshly fitted detector, audit live. ---
  api::AuditEngine engine({.store_dir = store_dir});
  auto published = engine.publish("marketplace", std::move(detector));
  if (!published.ok()) {
    std::printf("FAIL: publish: %s\n", published.status().to_string().c_str());
    return 1;
  }
  std::printf("published %s\n", published.value().versioned_name().c_str());

  std::vector<nn::BlackBoxAdapter> live_boxes;
  live_boxes.reserve(marketplace.size());
  for (auto& listing : marketplace) live_boxes.emplace_back(*listing.model.model);
  auto live = engine.audit(make_requests(live_boxes));

  // --- Persist the marketplace models themselves. -----------------------
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    io::save_model_file(store_dir + "/listing-" + std::to_string(i) + ".model",
                        *marketplace[i].model.model);
  }

  // --- "Fresh process": a new engine reloads detector + models. ---------
  api::AuditEngine fresh_engine({.store_dir = store_dir});
  std::vector<nn::BlackBoxAdapter> loaded_boxes;
  loaded_boxes.reserve(marketplace.size());
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    loaded_boxes.emplace_back(io::load_model_file(
        store_dir + "/listing-" + std::to_string(i) + ".model"));
  }
  auto reloaded = fresh_engine.audit(make_requests(loaded_boxes));

  // --- Diff the verdicts. ----------------------------------------------
  std::printf("\n%-12s %-28s %-10s %-10s %-8s %-7s %s\n", "id", "listing",
              "live", "reloaded", "verdict", "match", "time");
  bool all_match = true;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const bool match = live[i].status.ok() && reloaded[i].status.ok() &&
                       live[i].detector_version == "marketplace@v1" &&
                       reloaded[i].detector_version == "marketplace@v1" &&
                       live[i].verdict.score == reloaded[i].verdict.score &&
                       live[i].verdict.prompted_accuracy ==
                           reloaded[i].verdict.prompted_accuracy &&
                       live[i].verdict.backdoored == reloaded[i].verdict.backdoored &&
                       live[i].verdict.queries == reloaded[i].verdict.queries;
    all_match = all_match && match;
    std::printf("%-12s %-28s %-10.6f %-10.6f %-8s %-7s %.1fms\n",
                live[i].model_id.c_str(), marketplace[i].description.c_str(),
                live[i].verdict.score, reloaded[i].verdict.score,
                reloaded[i].verdict.backdoored ? "BACKDOOR" : "clean",
                match ? "yes" : "NO", reloaded[i].seconds * 1e3);
  }
  std::printf("\nstore %s holds:", store_dir.c_str());
  if (auto listed = fresh_engine.list(); listed.ok()) {
    for (const auto& info : listed.value()) {
      std::printf(" %s", info.versioned_name().c_str());
    }
  }
  std::printf("\nGround truth: listings 0-1 clean; 2-4 backdoored.\n");
  if (!all_match) {
    std::printf("FAIL: reloaded verdicts differ from the in-memory run\n");
    return 1;
  }
  std::printf("OK: fit->publish->reload->audit verdicts are bit-identical\n");
  return 0;
}
