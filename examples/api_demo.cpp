// The public `bprom::api` surface in one self-checking walkthrough:
//
//   1. fit + publish "market@v1" through api::AuditEngine::fit,
//   2. refresh the fit and roll the bare name over to "market@v2",
//   3. audit a small marketplace asynchronously against the bare name
//      (resolves to @v2) — an async batched audit with futures,
//   4. audit the same batch against the pinned "market@v1": superseded
//      versions keep serving exactly as before the rollover,
//   5. diff both batches against the pre-refactor path (the internal
//      serve::AuditService driving the very same detector handles):
//      verdicts AND query counts must be byte-identical,
//   6. exit nonzero on any non-OK Status or any mismatch — the CI gate.
//
// Run under BPROM_THREADS=1 and 8: output (timing stripped) is identical.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "data/ops.hpp"
#include "serve/audit_service.hpp"

namespace {

using namespace bprom;

/// The detector fit_detector() would build, expressed as a FitRequest: the
/// same D_S / D_T splits from the same seed, so the façade path is
/// comparable to the historical one.
struct FitInputs {
  nn::LabeledData reserved;
  nn::LabeledData dt_train;

  static FitInputs make(const data::Dataset& source,
                        const data::Dataset& target, std::uint64_t seed) {
    util::Rng rng(seed ^ 0xDE7EC7ULL);
    FitInputs in;
    in.reserved = data::sample_fraction(source.test, 0.10, rng);
    const std::size_t prompt_n =
        std::min<std::size_t>(256, target.train.size());
    in.dt_train = data::subset(
        target.train,
        rng.sample_without_replacement(target.train.size(), prompt_n));
    return in;
  }
};

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.score == b.score && a.backdoored == b.backdoored &&
         a.prompted_accuracy == b.prompted_accuracy && a.queries == b.queries;
}

}  // namespace

int main() {
  const auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);
  const auto arch = nn::ArchKind::kResNet18Mini;

  std::printf("== api_demo: fit -> publish -> rollover -> async audit ==\n");

  // A small marketplace: clean and backdoored vendor uploads.
  std::vector<core::TrainedSuspicious> marketplace;
  marketplace.push_back(core::train_clean_model(src, arch, 800, scale));
  marketplace.push_back(core::train_clean_model(src, arch, 801, scale));
  for (auto kind :
       {attacks::AttackKind::kBadNets, attacks::AttackKind::kWaNet}) {
    marketplace.push_back(core::train_backdoored_model(
        src, attacks::AttackConfig::defaults(kind, 1), arch, 900 + (int)kind,
        scale));
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bprom_api_demo").string();
  std::filesystem::remove_all(dir);  // versions are per-run; start clean

  api::AuditEngine engine({.store_dir = dir});
  if (!engine.status().ok()) {
    std::printf("FAIL: engine: %s\n", engine.status().to_string().c_str());
    return 1;
  }

  // --- 1+2: fit v1, refresh into v2 — all through the façade. -----------
  for (std::uint64_t seed : {7ULL, 8ULL}) {
    const auto inputs = FitInputs::make(src, tgt, seed);
    api::FitRequest fit;
    fit.name = "market";
    fit.source_classes = src.profile.classes;
    fit.reserved_clean = &inputs.reserved;
    fit.target_train = &inputs.dt_train;
    fit.target_test = &tgt.test;
    fit.config = core::default_bprom_config(scale, arch, seed);
    auto info = engine.fit(fit);
    if (!info.ok()) {
      std::printf("FAIL: fit: %s\n", info.status().to_string().c_str());
      return 1;
    }
    std::printf("published %s (K_S=%zu, q=%zu)\n",
                info.value().versioned_name().c_str(),
                info.value().source_classes, info.value().query_samples);
  }
  if (const auto rolled = engine.info("market");
      !rolled.ok() || rolled.value().version != 2) {
    std::printf("FAIL: bare name did not roll over to v2\n");
    return 1;
  }

  // --- 3+4: async audit on the bare name, sync audit pinned to @v1. -----
  const auto audit_via = [&](const std::string& detector_ref, bool async) {
    std::vector<nn::BlackBoxAdapter> boxes;
    boxes.reserve(marketplace.size());
    for (auto& listing : marketplace) boxes.emplace_back(*listing.model);
    std::vector<api::AuditRequest> batch(marketplace.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].model_id = "listing-" + std::to_string(i);
      batch[i].detector = detector_ref;
      batch[i].model = &boxes[i];
    }
    return async ? engine.audit_async(std::move(batch)).get()
                 : engine.audit(batch);
  };
  const auto via_v2 = audit_via("market", /*async=*/true);
  const auto via_v1 = audit_via("market@v1", /*async=*/false);

  // --- 5: the pre-refactor path on the same detector handles. -----------
  const auto legacy_via = [&](const std::string& detector_ref) {
    auto handle = engine.detector(detector_ref);
    if (!handle.ok()) {
      std::printf("FAIL: %s: %s\n", detector_ref.c_str(),
                  handle.status().to_string().c_str());
      std::exit(1);
    }
    std::vector<nn::BlackBoxAdapter> boxes;
    boxes.reserve(marketplace.size());
    for (auto& listing : marketplace) boxes.emplace_back(*listing.model);
    std::vector<serve::AuditRequest> batch(marketplace.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].model_id = "listing-" + std::to_string(i);
      batch[i].model = &boxes[i];
    }
    // Same seed (the engine default is the service's historical 97), same
    // batch order, same handle: the pre-refactor surface, bit for bit.
    return serve::AuditService(handle.value()).audit(batch);
  };
  const auto legacy_v2 = legacy_via("market@v2");
  const auto legacy_v1 = legacy_via("market@v1");

  std::printf("\n%-10s %-10s %-10s %-8s %-7s %-6s %s\n", "id", "detector",
              "score", "verdict", "queries", "match", "time");
  bool all_ok = true;
  const auto check = [&](const std::vector<api::AuditResponse>& got,
                         const std::vector<serve::AuditResponse>& want,
                         const char* expect_version) {
    for (std::size_t i = 0; i < got.size(); ++i) {
      const bool ok = got[i].status.ok() && want[i].ok &&
                      got[i].detector_version == expect_version &&
                      same_verdict(got[i].verdict, want[i].verdict);
      all_ok = all_ok && ok;
      std::printf("%-10s %-10s %-10.6f %-8s %-7zu %-6s %.1fms\n",
                  got[i].model_id.c_str(), got[i].detector_version.c_str(),
                  got[i].verdict.score,
                  got[i].verdict.backdoored ? "BACKDOOR" : "clean",
                  got[i].verdict.queries, ok ? "yes" : "NO",
                  got[i].seconds * 1e3);
    }
  };
  check(via_v2, legacy_v2, "market@v2");
  check(via_v1, legacy_v1, "market@v1");

  const auto stats = engine.stats();
  std::printf("\nengine stats: %llu requests, %llu verdicts, %llu queries, "
              "%llu rollover(s)\n",
              (unsigned long long)stats.requests,
              (unsigned long long)stats.verdicts,
              (unsigned long long)stats.queries,
              (unsigned long long)stats.rollovers);
  std::printf("Ground truth: listings 0-1 clean; 2-3 backdoored.\n");
  if (!all_ok) {
    std::printf("FAIL: façade responses differ from the pre-refactor path\n");
    return 1;
  }
  std::printf("OK: fit->publish->rollover->async audit matches the "
              "pre-refactor path bit-for-bit\n");
  return 0;
}
