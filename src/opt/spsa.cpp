#include "opt/spsa.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace bprom::opt {

SpsaResult spsa_minimize(
    const SpsaConfig& config, std::vector<double> x0,
    const std::function<double(const std::vector<double>&)>& objective) {
  util::Rng rng(config.seed);
  const std::size_t n = x0.size();
  SpsaResult result;
  result.best_x = x0;
  result.best_f = objective(x0);
  result.evaluations = 1;

  std::vector<double> x = std::move(x0);
  std::vector<double> delta(n);
  std::vector<double> xp(n);
  std::vector<double> xm(n);
  std::size_t k = 0;
  while (result.evaluations + 2 <= config.max_evaluations) {
    ++k;
    const double ak =
        config.a / std::pow(static_cast<double>(k) + 50.0, config.alpha);
    const double ck = config.c / std::pow(static_cast<double>(k), config.gamma);
    for (std::size_t i = 0; i < n; ++i) {
      delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
      xp[i] = x[i] + ck * delta[i];
      xm[i] = x[i] - ck * delta[i];
    }
    const double fp = objective(xp);
    const double fm = objective(xm);
    result.evaluations += 2;
    for (std::size_t i = 0; i < n; ++i) {
      const double ghat = (fp - fm) / (2.0 * ck * delta[i]);
      x[i] -= ak * ghat;
    }
    const double fx = std::min(fp, fm);
    if (fx < result.best_f) {
      result.best_f = fx;
      result.best_x = fp < fm ? xp : xm;
    }
  }
  return result;
}

}  // namespace bprom::opt
