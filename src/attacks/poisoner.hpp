// Poisoning pipeline: builds D_P from a clean dataset per the paper's
// three-step recipe (extract D_E, stamp + relabel, recombine), including
// cover samples for the adaptive attacks and the clean-label restriction
// for SIG / LC.  Also evaluates attack success rate (ASR).
#pragma once

#include <vector>

#include "attacks/triggers.hpp"
#include "data/ops.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace bprom::attacks {

using nn::LabeledData;

struct PoisonStats {
  std::size_t poisoned = 0;  // stamped + relabeled
  std::size_t covered = 0;   // stamped, label kept
  std::size_t total = 0;
};

struct PoisonResult {
  LabeledData data;
  PoisonStats stats;
  /// Per-sample ground truth for defense evaluation: 1 where the sample was
  /// stamped + relabeled (poison), 0 otherwise (cover samples count as 0 —
  /// they carry their true label, which is exactly what makes the adaptive
  /// attacks hard for data-cleaning defenses).
  std::vector<char> poison_mask;
  std::vector<char> cover_mask;
};

/// Build the poisoned training set for one attack.
PoisonResult poison_dataset(const LabeledData& clean,
                            const AttackConfig& config, util::Rng& rng);

/// Multi-trigger poisoning (Table 2's multiple-target-class experiment):
/// each config contributes its own trigger and target class.
PoisonResult poison_dataset_multi(const LabeledData& clean,
                                  const std::vector<AttackConfig>& configs,
                                  util::Rng& rng);

/// Attack success rate: fraction of non-target-class test samples that the
/// model classifies as the target class once the trigger is stamped.
double attack_success_rate(nn::Model& model, const LabeledData& clean_test,
                           const AttackConfig& config);

}  // namespace bprom::attacks
