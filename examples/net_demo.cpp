// The network front end in one self-checking walkthrough:
//
//   1. fit + publish "market@v1" through api::AuditEngine,
//   2. start a net::Server over the engine on a loopback port,
//   3. audit a small marketplace over the socket — models serialized,
//      uploaded, decoded, and queried server-side,
//   4. audit the same models in-process through AuditEngine::audit()
//      (single-request batches, exactly what the server submits), and
//      diff verdicts AND query counts — they must be byte-identical:
//      a save->load round trip of the uploaded weights is byte-exact,
//      so the wire must be invisible in the result,
//   5. fetch engine + transport stats over the wire and cross-check the
//      request tallies,
//   6. exit nonzero on any non-OK Status or any mismatch — the CI gate.
//
// Run under BPROM_THREADS=1 and 8: output (timing stripped) is identical.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "data/ops.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/blackbox.hpp"

namespace {

using namespace bprom;

bool same_verdict(const core::Verdict& a, const core::Verdict& b) {
  return a.score == b.score && a.backdoored == b.backdoored &&
         a.prompted_accuracy == b.prompted_accuracy && a.queries == b.queries;
}

}  // namespace

int main() {
  const auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);
  const auto arch = nn::ArchKind::kResNet18Mini;

  std::printf("== net_demo: publish -> serve on a socket -> audit -> "
              "diff against in-process ==\n");

  // A small marketplace: clean and backdoored vendor uploads.
  std::vector<core::TrainedSuspicious> marketplace;
  marketplace.push_back(core::train_clean_model(src, arch, 800, scale));
  marketplace.push_back(core::train_clean_model(src, arch, 801, scale));
  for (auto kind :
       {attacks::AttackKind::kBadNets, attacks::AttackKind::kWaNet}) {
    marketplace.push_back(core::train_backdoored_model(
        src, attacks::AttackConfig::defaults(kind, 1), arch, 900 + (int)kind,
        scale));
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bprom_net_demo").string();
  std::filesystem::remove_all(dir);  // versions are per-run; start clean

  api::AuditEngine engine({.store_dir = dir});
  if (!engine.status().ok()) {
    std::printf("FAIL: engine: %s\n", engine.status().to_string().c_str());
    return 1;
  }
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, arch, 7, scale);
  if (auto published = engine.publish("market", std::move(detector));
      !published.ok()) {
    std::printf("FAIL: publish: %s\n",
                published.status().to_string().c_str());
    return 1;
  }

  // --- 2: the socket front end (its own acceptor + IO threads). ----------
  net::ServerConfig server_config;
  server_config.io_threads = 2;
  net::Server server(engine, server_config);
  if (auto started = server.start(); !started.ok()) {
    std::printf("FAIL: server: %s\n", started.to_string().c_str());
    return 1;
  }
  // The kernel assigns the port; don't print it — CI diffs this output
  // across thread counts and the port is the one nondeterministic bit.
  std::printf("serving on 127.0.0.1 (kernel-assigned port)\n");

  // --- 3: the marketplace audited over the wire. --------------------------
  auto client = net::Client::connect({.port = server.port()});
  if (!client.ok()) {
    std::printf("FAIL: connect: %s\n", client.status().to_string().c_str());
    return 1;
  }
  std::vector<net::ClientAuditRequest> uploads(marketplace.size());
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    uploads[i].model_id = "listing-" + std::to_string(i);
    uploads[i].detector = "market";
    uploads[i].model = marketplace[i].model.get();
  }
  auto wire = client.value().audit_batch(uploads);
  if (!wire.ok()) {
    std::printf("FAIL: audit_batch: %s\n", wire.status().to_string().c_str());
    return 1;
  }

  // --- 4: the same models in-process, single-request batches. -------------
  std::vector<api::AuditResponse> local;
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    nn::BlackBoxAdapter box(*marketplace[i].model);
    api::AuditRequest request;
    request.model_id = uploads[i].model_id;
    request.detector = "market";
    request.model = &box;
    local.push_back(engine.audit({request})[0]);
  }

  std::printf("\n%-10s %-10s %-10s %-8s %-7s %-6s %s\n", "id", "detector",
              "score", "verdict", "queries", "match", "time");
  bool all_ok = true;
  for (std::size_t i = 0; i < marketplace.size(); ++i) {
    const api::AuditResponse& got = wire.value()[i];
    const api::AuditResponse& want = local[i];
    const bool ok = got.status.ok() && want.status.ok() &&
                    got.detector_version == want.detector_version &&
                    same_verdict(got.verdict, want.verdict);
    all_ok = all_ok && ok;
    std::printf("%-10s %-10s %-10.6f %-8s %-7zu %-6s %.1fms\n",
                got.model_id.c_str(), got.detector_version.c_str(),
                got.verdict.score,
                got.verdict.backdoored ? "BACKDOOR" : "clean",
                got.verdict.queries, ok ? "yes" : "NO", got.seconds * 1e3);
  }

  // --- 5: stats over the wire (engine + transport, one frame). ------------
  auto stats = client.value().stats();
  if (!stats.ok()) {
    std::printf("FAIL: stats: %s\n", stats.status().to_string().c_str());
    return 1;
  }
  const net::StatsResponseMsg& msg = stats.value();
  const std::size_t expect_requests = 2 * marketplace.size();
  std::printf("\nwire stats: %llu requests, %llu verdicts, %llu queries; "
              "transport: %llu conns, %llu admitted, %llu rejected\n",
              (unsigned long long)msg.engine.requests,
              (unsigned long long)msg.engine.verdicts,
              (unsigned long long)msg.engine.queries,
              (unsigned long long)msg.server.connections_accepted,
              (unsigned long long)msg.server.requests_admitted,
              (unsigned long long)(msg.server.rejected_in_flight +
                                   msg.server.rejected_total_in_flight +
                                   msg.server.rejected_request_budget +
                                   msg.server.rejected_byte_budget +
                                   msg.server.rejected_protocol));
  if (msg.engine.requests != expect_requests ||
      msg.server.requests_admitted != marketplace.size()) {
    std::printf("FAIL: stats tallies do not add up\n");
    return 1;
  }
  std::printf("Ground truth: listings 0-1 clean; 2-3 backdoored.\n");

  server.stop();
  if (!all_ok) {
    std::printf("FAIL: socket verdicts differ from the in-process path\n");
    return 1;
  }
  std::printf("OK: socket-path verdicts and query counts are bit-identical "
              "to in-process audits\n");
  return 0;
}
