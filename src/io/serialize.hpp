// Typed serializers for every trained artifact, built on io::Writer/Reader.
//
// Each save_* opens a 4-char chunk tag that the matching load_* verifies,
// so mixing artifact kinds fails with IoError instead of garbage.  The
// *_file helpers wrap one artifact per .bprom container (magic + version +
// CRC); the chunk serializers compose, so composite artifacts (detectors)
// embed tensors, forests, and prompts inline.
#pragma once

#include <memory>
#include <string>

#include "core/bprom.hpp"
#include "io/binary.hpp"
#include "meta/random_forest.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor.hpp"
#include "vp/prompt.hpp"

namespace bprom::io {

// Chunk serializers (compose inside one payload).
void save_tensor(Writer& writer, const tensor::Tensor& t);
tensor::Tensor load_tensor(Reader& reader);

void save_labeled_data(Writer& writer, const nn::LabeledData& data);
nn::LabeledData load_labeled_data(Reader& reader);

void save_prompt(Writer& writer, const vp::VisualPrompt& prompt);
vp::VisualPrompt load_prompt(Reader& reader);

// Model / forest / detector chunk forms live as members (Model::save,
// RandomForest::save, BpromDetector::save) because they touch private
// state; the free functions below wrap them in standalone containers.

void save_model_file(const std::string& path, nn::Model& model);
std::unique_ptr<nn::Model> load_model_file(const std::string& path);

void save_forest_file(const std::string& path,
                      const meta::RandomForest& forest);
meta::RandomForest load_forest_file(const std::string& path);

void save_detector_file(const std::string& path,
                        const core::BpromDetector& detector);
core::BpromDetector load_detector_file(const std::string& path);

/// Canonical on-disk extension for all persisted artifacts.
inline constexpr const char* kFileExtension = ".bprom";

}  // namespace bprom::io
