// First-order optimizers over registered Parameters.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace bprom::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9F,
      float weight_decay = 0.0F);
  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  [[nodiscard]] float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9F,
       float beta2 = 0.999F, float eps = 1e-8F);
  void step() override;
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace bprom::nn
