// Dataset manipulation helpers: subsets, fractions, concatenation, resize.
#pragma once

#include <vector>

#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace bprom::data {

using nn::LabeledData;

/// Copy the samples at `idx`.
LabeledData subset(const LabeledData& data, const std::vector<std::size_t>& idx);

/// Random fraction (the paper's reserved clean set D_S = 1/5/10 % of test).
LabeledData sample_fraction(const LabeledData& data, double fraction,
                            util::Rng& rng);

/// Concatenate two sets with identical image shapes.
LabeledData concat(const LabeledData& a, const LabeledData& b);

/// 2x2 average-pool downscale (for VP resizing of target images).
nn::Tensor downscale2x(const nn::Tensor& images);

/// Count of samples per class.
std::vector<std::size_t> class_histogram(const LabeledData& data,
                                         std::size_t classes);

}  // namespace bprom::data
