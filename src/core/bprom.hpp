// BPROM — black-box model-level backdoor detection via visual prompting.
//
// Pipeline (paper Algorithm 1):
//   1. Shadow model generation: n clean + (M - n) backdoored shadow models
//      trained on the reserved clean set D_S (backdoored ones on poisoned
//      copies, a *single* attack type suffices — the class-subspace
//      inconsistency is attack-agnostic).
//   2. Prompting: learn a visual prompt per shadow model on the external
//      clean set D_T (white-box backprop — the defender owns the shadows).
//   3. Meta-model: concatenate q prompted confidence vectors per shadow on
//      a fixed query set D_Q ⊂ D_T^test; train a random forest.
// Detection: prompt the suspicious model black-box (CMA-ES), collect the
// same q confidence vectors, ask the forest.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "api/status.hpp"
#include "util/stopwatch.hpp"
#include "attacks/poisoner.hpp"
#include "meta/random_forest.hpp"
#include "nn/arch.hpp"
#include "nn/blackbox.hpp"
#include "util/thread_pool.hpp"
#include "vp/train_blackbox.hpp"
#include "vp/train_whitebox.hpp"

namespace bprom::io {
class Writer;
class Reader;
}  // namespace bprom::io

namespace bprom::core {

struct BpromConfig {
  nn::ArchKind shadow_arch = nn::ArchKind::kResNet18Mini;
  std::size_t clean_shadows = 10;
  std::size_t backdoor_shadows = 10;
  /// Single attack used to poison shadow training sets (paper §5.3: one
  /// attack type suffices, unlike MNTD).
  attacks::AttackKind shadow_attack = attacks::AttackKind::kBadNets;
  /// Defender-chosen poison rate for shadow poisoning.
  double shadow_poison_rate = 0.30;
  /// q: number of query samples whose confidence vectors feed the forest.
  std::size_t query_samples = 16;
  nn::TrainConfig shadow_train{};
  vp::WhiteBoxPromptConfig prompt_whitebox{};
  vp::BlackBoxPromptConfig prompt_blackbox{};
  meta::ForestConfig forest{};
  /// Prompt shadow models with the same black-box optimizer used for the
  /// suspicious model (instead of white-box backprop).  Keeps the meta
  /// features in one optimization regime; the white-box path remains for
  /// the prompted-accuracy analyses (ablated in bench_ablations).
  bool prompt_shadows_blackbox = true;
  /// Number of independent prompts learned per inspected model; the meta
  /// features are averaged across the ensemble to suppress prompt-seed
  /// noise (ablated in bench_ablations).
  std::size_t prompt_ensemble = 2;
  /// Include the raw q-query confidence-vector block in the meta features
  /// (Algorithm 1's features), alongside the distribution-level summaries.
  /// On by default — the measured ablation (bench_ablations) favours the
  /// combined feature set; disable to use summaries only.
  bool include_query_features = true;
  /// Pool used to train/prompt the shadow population in parallel and to run
  /// the inspection prompt ensemble on per-thread model replicas; nullptr
  /// selects the process-wide pool (BPROM_THREADS).  Results are identical
  /// for any thread count: each shadow draws from an Rng stream pre-split
  /// from the root seed on the calling thread, and each ensemble member is
  /// seeded by its index.  A non-null pool is borrowed, not owned — it must
  /// outlive every detector constructed from this config (both fit() and
  /// inspect() dereference it).
  util::ThreadPool* pool = nullptr;
  /// Sort each query's confidence vector descending before concatenation.
  /// Makes the meta features invariant to which class the attacker targets
  /// (the paper compensates with many more trees/shadows; see DESIGN.md §2).
  bool sort_confidence_features = true;
  std::uint64_t seed = 29;
};

struct Verdict {
  /// Forest P(backdoor).
  double score = 0.0;
  bool backdoored = false;
  /// Prompted-model accuracy on D_T^test (the diagnostic the paper's
  /// class-subspace-inconsistency analysis is built on).
  double prompted_accuracy = 0.0;
  /// Black-box queries spent on this inspection.
  std::size_t queries = 0;
  /// True when the prompt-learning evaluation budget was too small to
  /// complete even one optimizer step: score/prompted_accuracy are then the
  /// unoptimized-prompt values, not a real detection.  The api façade turns
  /// this into Status::kBudgetExhausted instead of a silent default.
  bool budget_exhausted = false;
  /// True when an InspectDeadline expired mid-inspection: at least one
  /// prompt-ensemble member was skipped, so score/prompted_accuracy are
  /// meaningless — but `queries` still reports exactly what the aborted
  /// inspection spent (the caller's budget accounting owes its users that).
  /// The api façade turns this into Status::kDeadlineExceeded.
  bool deadline_exceeded = false;
};

/// Wall-clock deadline threaded into inspect() by serving layers.  The
/// clock is anchored wherever the caller started it (api::AuditEngine
/// anchors at batch submission, so async queue wait counts), and inspect()
/// re-checks it between prompt-ensemble members — the coarsest boundary at
/// which aborting cannot split a CMA-ES/SPSA optimization mid-stream.
/// Deadlines are inherently wall-clock and therefore the one knob that can
/// make results thread-count-dependent; pass nullptr when reproducibility
/// matters.
struct InspectDeadline {
  util::Stopwatch clock;       ///< started by the serving layer
  std::uint64_t deadline_ms = 0;  ///< 0 disables

  [[nodiscard]] bool expired() const {
    return deadline_ms > 0 &&
           clock.seconds() * 1e3 > static_cast<double>(deadline_ms);
  }
};

/// Diagnostics captured during fit() for analysis benches / figures.
struct FitDiagnostics {
  std::vector<double> clean_shadow_prompted_accuracy;
  std::vector<double> backdoor_shadow_prompted_accuracy;
  /// Meta features per shadow (clean shadows first).
  std::vector<std::vector<float>> meta_features;
  std::vector<int> meta_labels;
};

class BpromDetector {
 public:
  explicit BpromDetector(BpromConfig config = {});

  /// Train the detector.
  ///   reserved_clean — D_S (the small clean set from the source task)
  ///   source_classes — K_S (class count of the suspicious model's task)
  ///   target_train/target_test — D_T split (external clean dataset)
  void fit(const nn::LabeledData& reserved_clean, std::size_t source_classes,
           const nn::LabeledData& target_train,
           const nn::LabeledData& target_test);

  /// Inspect a suspicious model through black-box queries only.  The prompt
  /// ensemble runs in parallel on replicas when the model supports
  /// replicate(); results are bit-identical to the serial path for any
  /// thread count.  `seed_salt` offsets the ensemble prompt seeds — serving
  /// layers pass per-request pre-split salts; 0 reproduces the historical
  /// seeding.  A non-null `deadline` is re-checked between ensemble
  /// members: once it expires, remaining members are skipped and the
  /// verdict comes back with deadline_exceeded set and the exact queries
  /// spent so far (see Verdict::deadline_exceeded).
  [[nodiscard]] Verdict inspect(const nn::BlackBoxModel& suspicious,
                                std::uint64_t seed_salt = 0,
                                const InspectDeadline* deadline = nullptr)
      const;

  /// Typed precondition check for inspect(): OK when `model` is non-null,
  /// the detector is fitted, and the class counts agree.  inspect() itself
  /// only asserts (compiled out in Release), so serving layers call this
  /// first and surface the api::Status instead of crashing or misreading.
  [[nodiscard]] api::Status inspectable(const nn::BlackBoxModel* model) const;

  /// Threshold-free convenience: the raw backdoor score in [0, 1].
  [[nodiscard]] double score(const nn::BlackBoxModel& suspicious) const {
    return inspect(suspicious).score;
  }

  [[nodiscard]] const FitDiagnostics& diagnostics() const { return diag_; }
  [[nodiscard]] const BpromConfig& config() const { return config_; }
  /// Reroute the pool fit()/inspect() fan out on (nullptr = process-wide
  /// pool).  Serving layers call this so detectors they publish or load
  /// run on *their* executor: the pool is runtime-only state that is never
  /// persisted, so a loaded detector would otherwise silently fall back to
  /// the global pool.  Borrowed; must outlive every later fit()/inspect().
  void set_pool(util::ThreadPool* pool) { config_.pool = pool; }
  [[nodiscard]] bool fitted() const { return fitted_; }
  /// K_S the detector was fitted for (0 before fit()).
  [[nodiscard]] std::size_t source_classes() const { return source_classes_; }

  /// Binary persistence of the whole fitted detector: config (minus the
  /// borrowed pool pointer), D_T splits, D_Q, forest, and diagnostics.
  /// A loaded detector inspects with identical scores in a fresh process.
  /// Implemented in io/serialize.cpp; save() throws io::IoError when the
  /// detector is not fitted.
  void save(io::Writer& writer) const;
  static BpromDetector load(io::Reader& reader);

 private:
  [[nodiscard]] std::vector<float> meta_feature_vector(
      const nn::BlackBoxModel& model, const vp::VisualPrompt& prompt) const;

  BpromConfig config_;
  bool fitted_ = false;
  std::size_t source_classes_ = 0;
  std::size_t target_classes_ = 0;
  nn::LabeledData target_train_;
  nn::LabeledData target_test_;
  nn::LabeledData query_set_;  // D_Q
  meta::RandomForest forest_;
  FitDiagnostics diag_;
};

}  // namespace bprom::core
