// Minimal fixed-size thread pool used to train shadow-model populations and
// suspicious-model cohorts in parallel.
//
// Work items are type-erased closures; parallel_for provides the common
// index-sharded pattern with exception propagation to the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bprom::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future reports completion / exception.
  std::future<void> submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread.  Returns false when
  /// the queue is empty.  Lets blocked waiters help drain the queue, which
  /// makes nested parallel_for calls from worker threads deadlock-free.
  bool try_run_one();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n) across the given pool (defaults to the global
/// pool).  The calling thread participates in the work, so nested calls from
/// pool workers cannot deadlock, and a 1-thread pool degrades to a serial
/// loop.  Each index is executed exactly once with disjoint outputs left to
/// the body, so results are independent of thread count whenever the body is
/// deterministic per index.  Rethrows the first exception encountered; once a
/// body throws, remaining indices are abandoned.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Process-wide default pool (lazily constructed).  Sized by the
/// BPROM_THREADS environment variable; unset or 0 means
/// hardware_concurrency.
ThreadPool& global_pool();

}  // namespace bprom::util
