// Table 21: class-count mismatch — D_S = cifar100-like (20 classes),
// D_T = stl10-like (10 classes).
#include "common.hpp"
int main() {
  using namespace bench;
  BenchReport report("table21_cifar100");
  auto env = Env::make();
  auto cifar100 = data::make_dataset(data::DatasetKind::kCifar100, 1);
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kStrip, defenses::DefenseKind::kFrequency,
      defenses::DefenseKind::kSs, defenses::DefenseKind::kScan};
  std::vector<std::string> header = {"defense"};
  for (auto a : kinds) header.push_back(attacks::attack_name(a));
  header.push_back("AVG");
  util::TablePrinter table(header);
  const auto cells =
      baseline_grid(baselines, cifar100, kinds, arch, 950, env.scale);
  report.add_cells(cifar100, cells);
  for (std::size_t d = 0; d < baselines.size(); ++d) {
    std::vector<std::string> row = {defenses::defense_name(baselines[d])};
    double avg = 0;
    for (std::size_t a = 0; a < kinds.size(); ++a) {
      const auto& eval = cells[d * kinds.size() + a].eval;
      row.push_back(util::cell(eval.auroc));
      avg += eval.auroc;
    }
    row.push_back(util::cell(avg / kinds.size()));
    table.add_row(row);
  }
  auto detector = core::fit_detector(cifar100, env.stl10, 0.10, arch, 7, env.scale);
  std::vector<std::string> row = {"BPROM (10%)"};
  double avg = 0;
  for (const auto& cell :
       bprom_row(detector, cifar100, arch, 970, env.scale, kinds)) {
    row.push_back(util::cell(cell.auroc));
    avg += cell.auroc;
  }
  row.push_back(util::cell(avg / kinds.size()));
  table.add_row(row);
  std::printf("== Table 21: K_S=20 vs K_T=10 mismatch ==\n");
  table.print();
  report.write();
  return 0;
}
