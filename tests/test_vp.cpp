// Visual prompting: prompt geometry, gradients, label mapping, training.
#include <gtest/gtest.h>
#include <cmath>
#include "data/generator.hpp"
#include "data/ops.hpp"
#include "nn/arch.hpp"
#include "nn/loss.hpp"
#include "vp/train_blackbox.hpp"
#include "vp/train_whitebox.hpp"
namespace bprom::vp {
namespace {

TEST(Prompt, BorderModeParamCount) {
  VisualPrompt prompt(nn::ImageShape{3, 16, 16}, PromptMode::kBorder);
  // 16x16 minus the 8x8 center, times 3 channels.
  EXPECT_EQ(prompt.num_params(), 3u * (256 - 64));
}

TEST(Prompt, AdditiveModeParamCount) {
  VisualPrompt prompt(nn::ImageShape{3, 16, 16}, PromptMode::kAdditive);
  EXPECT_EQ(prompt.num_params(), 3u * 256);
}

TEST(Prompt, CoarseModeParamCount) {
  VisualPrompt prompt(nn::ImageShape{3, 16, 16}, PromptMode::kAdditiveCoarse);
  EXPECT_EQ(prompt.num_params(), 3u * 16);
}

TEST(Prompt, ZeroThetaPreservesContentCenter) {
  VisualPrompt prompt(nn::ImageShape{3, 16, 16}, PromptMode::kAdditiveCoarse);
  util::Rng rng(1);
  nn::Tensor target = nn::Tensor::randn({2, 3, 16, 16}, rng, 0.2F);
  for (auto& v : target.vec()) v = std::clamp(v + 0.5F, 0.0F, 1.0F);
  nn::Tensor canvas = prompt.apply(target);
  EXPECT_EQ(canvas.dim(2), 16u);
  // Center 8x8 equals the 2x-downscaled target when theta == 0.
  auto small = data::downscale2x(target);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      EXPECT_NEAR(canvas.at4(0, 0, 4 + y, 4 + x), small.at4(0, 0, y, x), 1e-6);
    }
  }
}

TEST(Prompt, OutputStaysInUnitRange) {
  for (auto mode : {PromptMode::kBorder, PromptMode::kAdditive,
                    PromptMode::kAdditiveCoarse}) {
    VisualPrompt prompt(nn::ImageShape{3, 16, 16}, mode);
    util::Rng rng(2);
    std::vector<float> theta(prompt.num_params());
    for (auto& t : theta) t = static_cast<float>(rng.normal(0.0, 3.0));
    prompt.set_theta(theta);
    nn::Tensor target({1, 3, 16, 16}, 0.5F);
    nn::Tensor canvas = prompt.apply(target);
    for (float v : canvas.vec()) {
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
  }
}

TEST(Prompt, GradientMatchesFiniteDifference) {
  // Scalar objective: sum of canvas pixels.
  for (auto mode : {PromptMode::kBorder, PromptMode::kAdditiveCoarse}) {
    VisualPrompt prompt(nn::ImageShape{3, 8, 8}, mode);
    util::Rng rng(3);
    std::vector<float> theta(prompt.num_params());
    for (auto& t : theta) t = static_cast<float>(rng.normal(0.0, 0.3));
    prompt.set_theta(theta);
    nn::Tensor target({1, 3, 8, 8}, 0.5F);

    auto objective = [&](const std::vector<float>& th) {
      VisualPrompt p(nn::ImageShape{3, 8, 8}, mode);
      p.set_theta(th);
      nn::Tensor canvas = p.apply(target);
      double acc = 0;
      for (float v : canvas.vec()) acc += v;
      return acc;
    };

    nn::Tensor dcanvas({1, 3, 8, 8}, 1.0F);
    auto grad = prompt.gradient(dcanvas);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < std::min<std::size_t>(grad.size(), 5); ++i) {
      auto tp = theta;
      tp[i] += eps;
      auto tm = theta;
      tm[i] -= eps;
      const double numeric = (objective(tp) - objective(tm)) / (2.0 * eps);
      EXPECT_NEAR(grad[i], numeric, 5e-2) << "mode/i " << (int)mode << "/" << i;
    }
  }
}

TEST(LabelMapping, GreedyAssignmentIsOneToOne) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1, 64, 16);
  util::Rng rng(4);
  auto model = nn::make_model(nn::ArchKind::kMlp, src.profile.shape, 10, rng);
  nn::BlackBoxAdapter box(*model);
  PromptedModel pm(box, VisualPrompt(src.profile.shape));
  auto mapping = fit_frequency_label_mapping(pm, src.train, 10);
  std::vector<bool> used(10, false);
  for (int s : mapping) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 10);
    EXPECT_FALSE(used[static_cast<std::size_t>(s)]);
    used[static_cast<std::size_t>(s)] = true;
  }
}

TEST(WhiteBoxTraining, ReducesPromptLoss) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 2, 300, 50);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 3, 200, 50);
  util::Rng rng(5);
  auto model = nn::make_model(nn::ArchKind::kResNet18Mini, src.profile.shape, 10, rng);
  nn::TrainConfig tc;
  tc.epochs = 4;
  nn::train_classifier(*model, src.train, tc);

  auto loss_of = [&](const VisualPrompt& prompt) {
    nn::Tensor logits = model->logits(prompt.apply(tgt.train.images), false);
    return nn::cross_entropy(logits, tgt.train.labels).loss;
  };
  const double before = loss_of(VisualPrompt(src.profile.shape,
                                             PromptMode::kAdditiveCoarse));
  WhiteBoxPromptConfig pc;
  pc.epochs = 4;
  auto prompt = learn_prompt_whitebox(*model, tgt.train, pc);
  EXPECT_LT(loss_of(prompt), before);
}

TEST(BlackBoxTraining, ReducesPromptLossWithinBudget) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 4, 300, 50);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 5, 128, 50);
  util::Rng rng(6);
  auto model = nn::make_model(nn::ArchKind::kResNet18Mini, src.profile.shape, 10, rng);
  nn::TrainConfig tc;
  tc.epochs = 4;
  nn::train_classifier(*model, src.train, tc);
  nn::BlackBoxAdapter box(*model);

  BlackBoxPromptConfig bc;
  bc.max_evaluations = 150;
  auto result = learn_prompt_blackbox(box, tgt.train, bc);
  // Queries were spent and a finite loss reached.
  EXPECT_GT(result.queries, 100u);
  EXPECT_LT(result.final_loss, std::log(10.0) + 0.5);
}

TEST(PromptedModel, AccuracyUsesMapping) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 7, 200, 100);
  util::Rng rng(8);
  auto model = nn::make_model(nn::ArchKind::kMlp, src.profile.shape, 10, rng);
  nn::BlackBoxAdapter box(*model);
  PromptedModel pm(box, VisualPrompt(src.profile.shape));
  const double id_acc = pm.accuracy(src.test);
  pm.set_label_mapping(fit_frequency_label_mapping(pm, src.train, 10));
  const double mapped_acc = pm.accuracy(src.test);
  // Frequency mapping can only improve (or match) an untrained model's
  // identity accuracy in expectation; both must be valid probabilities.
  EXPECT_GE(mapped_acc, 0.0);
  EXPECT_LE(mapped_acc, 1.0);
  EXPECT_GE(id_acc, 0.0);
}

}  // namespace
}  // namespace bprom::vp
