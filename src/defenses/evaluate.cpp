#include "defenses/evaluate.hpp"

#include <algorithm>
#include <cassert>

#include "data/ops.hpp"
#include "defenses/data_level.hpp"
#include "defenses/input_level.hpp"
#include "defenses/model_level.hpp"
#include "metrics/roc.hpp"

namespace bprom::defenses {

std::string defense_name(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kStrip:
      return "STRIP";
    case DefenseKind::kAc:
      return "AC";
    case DefenseKind::kFrequency:
      return "Frequency";
    case DefenseKind::kSentiNet:
      return "SentiNet";
    case DefenseKind::kCt:
      return "CT";
    case DefenseKind::kSs:
      return "SS";
    case DefenseKind::kScan:
      return "SCAn";
    case DefenseKind::kSpectre:
      return "SPECTRE";
    case DefenseKind::kMmBd:
      return "MM-BD";
    case DefenseKind::kTed:
      return "TED";
    case DefenseKind::kTeco:
      return "TeCo";
    case DefenseKind::kScaleUp:
      return "SCALE-UP";
    case DefenseKind::kCd:
      return "CD";
  }
  return "?";
}

DefenseRegime regime_of(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kStrip:
    case DefenseKind::kFrequency:
    case DefenseKind::kSentiNet:
    case DefenseKind::kTed:
    case DefenseKind::kTeco:
    case DefenseKind::kScaleUp:
    case DefenseKind::kCd:
      return DefenseRegime::kInputLevel;
    case DefenseKind::kAc:
    case DefenseKind::kCt:
    case DefenseKind::kSs:
    case DefenseKind::kScan:
    case DefenseKind::kSpectre:
      return DefenseRegime::kDataLevel;
    case DefenseKind::kMmBd:
      return DefenseRegime::kModelLevel;
  }
  return DefenseRegime::kInputLevel;
}

DefenseEval evaluate_input_level(DefenseKind kind, nn::Model& model,
                                 const nn::LabeledData& clean_test,
                                 const attacks::AttackConfig& attack,
                                 std::size_t n_eval, util::Rng& rng) {
  assert(regime_of(kind) == DefenseRegime::kInputLevel);
  const std::size_t n = std::min(n_eval, clean_test.size() / 2);

  // Benign half + triggered half (triggered copies of *other* samples).
  auto idx = rng.sample_without_replacement(clean_test.size(), 2 * n);
  std::vector<std::size_t> benign_idx(idx.begin(),
                                      idx.begin() + static_cast<long>(n));
  std::vector<std::size_t> trig_idx(idx.begin() + static_cast<long>(n),
                                    idx.end());
  nn::LabeledData benign = data::subset(clean_test, benign_idx);
  nn::LabeledData triggered = data::subset(clean_test, trig_idx);
  const attacks::TriggerEngine engine(
      attack, nn::ImageShape{clean_test.images.dim(1),
                             clean_test.images.dim(2),
                             clean_test.images.dim(3)});
  engine.apply_all(triggered.images);

  nn::LabeledData mixed = data::concat(benign, triggered);
  std::vector<int> labels(2 * n, 0);
  for (std::size_t i = n; i < 2 * n; ++i) labels[i] = 1;

  // Reference set for defenses that need held-out clean data.
  nn::LabeledData reference = data::subset(
      clean_test, rng.sample_without_replacement(clean_test.size(),
                                                 std::min<std::size_t>(
                                                     64, clean_test.size())));

  std::vector<double> scores;
  switch (kind) {
    case DefenseKind::kStrip:
      scores = strip_scores(model, mixed.images, reference, rng);
      break;
    case DefenseKind::kFrequency:
      scores = frequency_scores(mixed.images);
      break;
    case DefenseKind::kSentiNet:
      scores = sentinet_scores(model, mixed.images, reference);
      break;
    case DefenseKind::kTed:
      scores = ted_scores(model, mixed.images, reference);
      break;
    case DefenseKind::kTeco:
      scores = teco_scores(model, mixed.images, rng);
      break;
    case DefenseKind::kScaleUp:
      scores = scaleup_scores(model, mixed.images);
      break;
    case DefenseKind::kCd:
      scores = cd_scores(model, mixed.images);
      break;
    default:
      assert(false);
  }
  DefenseEval eval;
  eval.auroc = metrics::auroc(scores, labels);
  eval.f1 = metrics::best_f1(scores, labels);
  return eval;
}

DefenseEval evaluate_data_level(DefenseKind kind, nn::Model& model,
                                const attacks::PoisonResult& poisoned,
                                std::size_t classes, util::Rng& rng) {
  assert(regime_of(kind) == DefenseRegime::kDataLevel);
  std::vector<double> scores;
  switch (kind) {
    case DefenseKind::kAc:
      scores = ac_sample_scores(model, poisoned.data, classes, rng);
      break;
    case DefenseKind::kSs:
      scores = ss_sample_scores(model, poisoned.data, classes);
      break;
    case DefenseKind::kScan:
      scores = scan_sample_scores(model, poisoned.data, classes);
      break;
    case DefenseKind::kSpectre:
      scores = spectre_sample_scores(model, poisoned.data, classes);
      break;
    case DefenseKind::kCt:
      scores = ct_sample_scores(model, poisoned.data, classes, rng);
      break;
    default:
      assert(false);
  }
  std::vector<int> labels(poisoned.poison_mask.begin(),
                          poisoned.poison_mask.end());
  DefenseEval eval;
  eval.auroc = metrics::auroc(scores, labels);
  eval.f1 = metrics::best_f1(scores, labels);
  return eval;
}

double mmbd_population_score(nn::Model& model) {
  return mmbd_model_score(model);
}

std::vector<double> mmbd_cohort_scores(const std::vector<nn::Model*>& cohort,
                                       util::ThreadPool* pool) {
  std::vector<double> scores(cohort.size(), 0.0);
  util::parallel_for(cohort.size(), [&](std::size_t i) {
    scores[i] = mmbd_model_score(*cohort[i]);
  }, pool);
  return scores;
}

}  // namespace bprom::defenses
