#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace bprom::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

Rng Rng::split(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0xD1B54A32D192ED03ULL + 0x2545F4914F6CDD1DULL));
}

}  // namespace bprom::util
