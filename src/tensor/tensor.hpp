// Contiguous float tensor used by the training framework.
//
// Layout conventions:
//   images / activations:  [N, C, H, W]
//   dense activations:     [N, D]
//   conv kernels:          [OC, IC * KH * KW]
// All data is owned, contiguous, row-major over the shape vector.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace bprom::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0F);

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }

  float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  [[nodiscard]] const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessor for [N, C, H, W] tensors.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const {
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// 2-D accessor for [N, D] tensors.
  float& at2(std::size_t n, std::size_t d) {
    return data_[n * shape_[1] + d];
  }
  [[nodiscard]] float at2(std::size_t n, std::size_t d) const {
    return data_[n * shape_[1] + d];
  }

  /// Reinterpret shape without copying; product must match size().
  void reshape(std::vector<std::size_t> shape);

  /// Re-dimension in place, reusing the existing allocation whenever the
  /// capacity suffices (the steady-state path for per-layer scratch
  /// tensors).  Element values are unspecified afterwards.
  void resize(std::vector<std::size_t> shape);

  void fill(float v);
  void zero() { fill(0.0F); }

  /// In-place elementwise helpers.
  Tensor& add(const Tensor& rhs);
  Tensor& add_scaled(const Tensor& rhs, float scale);
  Tensor& scale(float s);

  /// Gaussian init with given stddev.
  static Tensor randn(std::vector<std::size_t> shape, util::Rng& rng,
                      float stddev = 1.0F);

  /// Extract sample n of a batch tensor as a rank-(r-1) tensor copy.
  [[nodiscard]] Tensor slice_sample(std::size_t n) const;

  /// Stack equal-shaped samples into a batch along a new leading axis.
  static Tensor stack(const std::vector<Tensor>& samples);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Product of dims.
std::size_t shape_size(const std::vector<std::size_t>& shape);

}  // namespace bprom::tensor
