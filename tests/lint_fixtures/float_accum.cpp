// bprom_lint fixture — NOT part of the build.  See raw_thread.cpp for the
// expect-marker convention.
#include <cstddef>

float single_line_loop(const float* v, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];  // expect(float-accum)
  return acc;
}

// Regression: a multi-line loop body — the semicolons inside the for-header
// must not end the pending loop before its `{` opens.
float multi_line_loop(const float* v, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];  // expect(float-accum)
  }
  return acc;
}

float nested_loop(const float* v, std::size_t n) {
  float total = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    float inner = 0.0F;
    for (std::size_t j = 0; j < n; ++j) {
      inner += v[i * n + j];  // expect(float-accum)
    }
    total += inner;  // expect(float-accum)
  }
  return total;
}

float while_loop(const float* v, std::size_t n) {
  float acc = 0.0F;
  std::size_t i = 0;
  while (i < n) {
    acc += v[i];  // expect(float-accum)
    ++i;
  }
  return acc;
}

float documented(const float* v, std::size_t n) {
  float acc = 0.0F;
  // ordered: ascending index, sequential on one thread.
  for (std::size_t i = 0; i < n; ++i) {
    acc += v[i];
  }
  return acc;
}

float tolerated(const float* v, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    // bprom-lint: allow(float-accum)
    acc += v[i];
  }
  return acc;
}

long integers_are_exact(const int* v, std::size_t n) {
  long tally = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tally += v[i];  // integer summation commutes — no marker needed
  }
  return tally;
}

float outside_any_loop(float a, float b) {
  float acc = a;
  acc += b;  // not in a loop — order is already fixed
  return acc;
}
