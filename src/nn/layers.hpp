// Primitive layers: Linear, Conv2d, DepthwiseConv2d, BatchNorm2d, ReLU,
// GELU, MaxPool2d, GlobalAvgPool, Flatten.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace bprom::nn {

class Linear final : public Layer {
 public:
  Linear(std::size_t in, std::size_t out, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Linear>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor input_;
  // Per-shard dw/db partials for the batch-sharded backward, reduced by a
  // fixed-shape pairwise tree; persistent so the steady state allocates
  // nothing.
  std::vector<float> dw_part_;
  std::vector<float> db_part_;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

 private:
  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  tensor::ConvGeometry geom_;
  Tensor cols_;   // cached im2col of last forward (reused allocation)
  Tensor dcols_;  // column-space gradient scratch (reused allocation)
  // Per-shard dw/db partials for the batch-sharded backward (see Linear).
  std::vector<float> dw_part_;
  std::vector<float> db_part_;
  std::size_t batch_ = 0;
};

/// Per-channel (depthwise) convolution: one k x k filter per input channel.
class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::size_t channels, std::size_t kernel, std::size_t stride,
                  std::size_t pad, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<DepthwiseConv2d>(*this);
  }
  [[nodiscard]] std::string name() const override { return "DepthwiseConv2d"; }

 private:
  std::size_t channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  Parameter weight_;  // [channels, k * k]
  Parameter bias_;    // [channels]
  Tensor input_;
};

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1F,
                       float eps = 1e-5F);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<std::vector<float>*> state() override {
    return {&running_mean_, &running_var_};
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BatchNorm2d>(*this);
  }
  [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

 private:
  std::size_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
  // Forward cache.
  Tensor normalized_;
  std::vector<float> batch_mean_;
  std::vector<float> batch_inv_std_;
  bool last_train_ = false;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

class Gelu final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Gelu>(*this);
  }
  [[nodiscard]] std::string name() const override { return "GELU"; }

 private:
  Tensor input_;
};

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>(*this);
  }
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::size_t> in_shape_;
};

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward(Tensor&& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor backward(Tensor&& grad_out) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace bprom::nn
