// Synthetic image dataset generator.
//
// Generative model per dataset profile:
//   class centers  mu_k ~ N(0, I_d)           (fixed by identity_seed)
//   latent sample  z = mu_k + spread * eps,   eps ~ N(0, I_d)
//   rendering      x = sigma(W z + b) + pixel noise, clipped to [0, 1]
// with a fixed random linear render map W: R^d -> R^{C*H*W} and
// sigma = logistic squashing.  Rendering shares a base map family across
// datasets (drawn from the identity seed XOR a family constant) so that a
// model trained on one dataset carries transferable low-level structure —
// the property visual prompting exploits in the real world.
//
// The resulting images have exactly the geometry BPROM reasons about:
// per-class clusters in feature space with dataset-specific "shape", which
// poisoning then distorts through trigger shortcut learning.
#pragma once

#include "data/profile.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace bprom::data {

using nn::LabeledData;

class DatasetGenerator {
 public:
  explicit DatasetGenerator(const DatasetProfile& profile);

  /// Draw n labeled samples (classes balanced up to rounding).
  [[nodiscard]] LabeledData sample(std::size_t n, util::Rng& rng) const;

  /// Draw n samples all belonging to `cls`.
  [[nodiscard]] LabeledData sample_class(std::size_t n, int cls,
                                         util::Rng& rng) const;

  [[nodiscard]] const DatasetProfile& profile() const { return profile_; }

 private:
  void render(const double* z, float* pixels, util::Rng& rng) const;

  DatasetProfile profile_;
  std::vector<std::vector<double>> centers_;  // [classes][latent_dim]
  std::vector<double> render_w_;              // [pixels x latent_dim]
  std::vector<double> render_b_;              // [pixels]
};

/// A dataset with standard train/test splits.
struct Dataset {
  DatasetProfile profile;
  LabeledData train;
  LabeledData test;
};

/// Build train/test splits of the given kind.  `seed` controls the *samples*
/// (the distribution itself is fixed by the profile's identity seed); pass 0
/// sizes to use the profile defaults.
Dataset make_dataset(DatasetKind kind, std::uint64_t seed,
                     std::size_t train_size = 0, std::size_t test_size = 0);

/// Same, but from an explicit (possibly customized) profile — used by the
/// hardness ablations.
Dataset make_dataset(const DatasetProfile& profile, std::uint64_t seed,
                     std::size_t train_size = 0, std::size_t test_size = 0);

}  // namespace bprom::data
