#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace bprom::nn {

Tensor softmax(const Tensor& logits) {
  assert(logits.rank() == 2);
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* out = probs.data() + i * k;
    float maxv = row[0];
    for (std::size_t j = 1; j < k; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0F;
    // ordered: ascending class index within the row.
    for (std::size_t j = 0; j < k; ++j) {
      out[j] = std::exp(row[j] - maxv);
      denom += out[j];
    }
    for (std::size_t j = 0; j < k; ++j) out[j] /= denom;
  }
  return probs;
}

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<int>& labels) {
  assert(logits.rank() == 2 && logits.dim(0) == labels.size());
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  LossResult result;
  result.dlogits = softmax(logits);
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = result.dlogits.data() + i * k;
    const auto label = static_cast<std::size_t>(labels[i]);
    assert(label < k);
    result.loss -= std::log(std::max(row[label], 1e-12F));
    // Argmax for accuracy bookkeeping.
    std::size_t arg = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    if (arg == label) ++result.correct;
    row[label] -= 1.0F;
    for (std::size_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  result.loss /= static_cast<double>(n);
  return result;
}

}  // namespace bprom::nn
