#include "vp/train_whitebox.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace bprom::vp {

VisualPrompt learn_prompt_whitebox(nn::Model& source_model,
                                   const nn::LabeledData& target_train,
                                   const WhiteBoxPromptConfig& config) {
  VisualPrompt prompt(source_model.input_shape(), PromptMode::kAdditiveCoarse);
  assert(target_train.size() > 0);
  assert(source_model.num_classes() >= 1);

  util::Rng rng(config.seed);
  std::vector<float> theta = prompt.theta();
  // Adam state for theta.
  std::vector<float> m(theta.size(), 0.0F);
  std::vector<float> v(theta.size(), 0.0F);
  long t = 0;

  const std::size_t sample =
      target_train.images.size() / target_train.size();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto order = rng.permutation(target_train.size());
    for (std::size_t begin = 0; begin < target_train.size();
         begin += config.batch_size) {
      const std::size_t end =
          std::min(begin + config.batch_size, target_train.size());
      std::vector<std::size_t> shape = target_train.images.shape();
      shape[0] = end - begin;
      Tensor batch(shape);
      std::vector<int> labels(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        std::copy(
            target_train.images.data() + order[i] * sample,
            target_train.images.data() + (order[i] + 1) * sample,
            batch.data() + (i - begin) * sample);
        labels[i - begin] = target_train.labels[order[i]];
      }

      prompt.set_theta(theta);
      Tensor canvas = prompt.apply(batch);
      // Frozen model: eval-mode statistics, but gradients flow to the input.
      Tensor logits = source_model.logits(canvas, /*train=*/false);
      nn::LossResult loss = nn::cross_entropy(logits, labels);
      // Zero parameter grads afterwards is unnecessary — we never step them;
      // they are cleared by the next optimizer owner if any.
      Tensor dcanvas = source_model.backward(loss.dlogits);
      std::vector<float> grad = prompt.gradient(dcanvas);

      ++t;
      const float bc1 = 1.0F - std::pow(0.9F, static_cast<float>(t));
      const float bc2 = 1.0F - std::pow(0.999F, static_cast<float>(t));
      for (std::size_t i = 0; i < theta.size(); ++i) {
        m[i] = 0.9F * m[i] + 0.1F * grad[i];
        v[i] = 0.999F * v[i] + 0.001F * grad[i] * grad[i];
        theta[i] -=
            config.lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + 1e-8F);
      }
    }
  }
  prompt.set_theta(theta);
  // Clear the parameter gradients we polluted while backpropagating.
  for (auto* p : source_model.parameters()) p->zero_grad();
  return prompt;
}

}  // namespace bprom::vp
