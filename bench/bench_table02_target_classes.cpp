// Table 2: prompted accuracy vs number of target classes (1, 2, 3).
#include "common.hpp"
#include "vp/train_whitebox.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  util::Rng rng(11);
  auto dt_train = data::subset(env.stl10.train,
                               rng.sample_without_replacement(env.stl10.train.size(), 256));
  util::TablePrinter table({"# target classes", "1", "2", "3"});
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> row = {src->profile.name};
    for (std::size_t n_targets = 1; n_targets <= 3; ++n_targets) {
      double acc = 0.0;
      const std::size_t reps = env.scale.population_per_side >= 4 ? 3 : 2;
      for (std::size_t r = 0; r < reps; ++r) {
        util::Rng mr(500 + 10 * n_targets + r);
        std::vector<attacks::AttackConfig> cfgs;
        for (std::size_t t = 0; t < n_targets; ++t) {
          auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);
          atk.target_class = static_cast<int>(t);
          atk.poison_rate = 0.15;
          atk.seed = mr.next_u64();
          cfgs.push_back(atk);
        }
        auto train = data::subset(src->train, mr.sample_without_replacement(
            src->train.size(), env.scale.suspicious_train));
        auto poisoned = attacks::poison_dataset_multi(train, cfgs, mr);
        auto model = nn::make_model(nn::ArchKind::kResNet18Mini, src->profile.shape,
                                    src->profile.classes, mr);
        nn::TrainConfig tc; tc.epochs = env.scale.suspicious_epochs; tc.seed = mr.next_u64();
        nn::train_classifier(*model, poisoned.data, tc);
        vp::WhiteBoxPromptConfig pc; pc.epochs = env.scale.prompt_epochs; pc.seed = mr.next_u64();
        auto prompt = vp::learn_prompt_whitebox(*model, dt_train, pc);
        nn::BlackBoxAdapter box(*model);
        vp::PromptedModel pm(box, prompt);
        pm.set_label_mapping(vp::fit_frequency_label_mapping(pm, dt_train, 10));
        acc += pm.accuracy(env.stl10.test);
      }
      row.push_back(util::cell(acc / (env.scale.population_per_side >= 4 ? 3.0 : 2.0)));
    }
    table.add_row(row);
  }
  std::printf("== Table 2: prompted accuracy vs # target classes ==\n");
  table.print();
  return 0;
}
