// Dataset profiles.
//
// The paper evaluates on CIFAR-10, GTSRB, STL-10, SVHN, CIFAR-100,
// Tiny-ImageNet and ImageNet.  Offline we substitute synthetic equivalents:
// each profile fixes the number of classes, the image geometry, the latent
// cluster geometry, and an identity seed so that (say) cifar10-like and
// stl10-like are *different* distributions with the class-cluster structure
// BPROM's analysis depends on.  Class counts for the very large datasets are
// scaled down (documented in DESIGN.md) to keep CPU training tractable while
// preserving the "many more classes than the target task" property the
// corresponding experiments test.
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.hpp"

namespace bprom::data {

enum class DatasetKind {
  kCifar10,
  kGtsrb,
  kStl10,
  kSvhn,
  kCifar100,
  kTinyImageNet,
  kImageNet,
  kMnist,
};

struct DatasetProfile {
  DatasetKind kind{};
  std::string name;
  std::size_t classes = 10;
  nn::ImageShape shape{};
  std::size_t latent_dim = 12;
  /// Intra-class latent spread relative to unit inter-class scale.
  double cluster_spread = 0.35;
  /// Additive pixel noise after rendering.
  double pixel_noise = 0.04;
  /// Seed that fixes this dataset's class centers and render map.
  std::uint64_t identity_seed = 0;
  /// Default split sizes.
  std::size_t train_size = 4000;
  std::size_t test_size = 2000;
};

/// Registry lookup.
const DatasetProfile& profile(DatasetKind kind);

[[nodiscard]] std::string dataset_name(DatasetKind kind);

}  // namespace bprom::data
