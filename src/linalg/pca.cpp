#include "linalg/pca.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/eigen.hpp"
#include "tensor/gemm.hpp"

namespace bprom::linalg {

std::vector<double> PcaModel::project(const std::vector<double>& x) const {
  assert(x.size() == mean.size());
  std::vector<double> centered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) centered[i] = x[i] - mean[i];
  std::vector<double> out(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    out[c] = dot(components[c], centered);
  }
  return out;
}

PcaModel fit_pca(const Matrix& data, std::size_t k) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  PcaModel model;
  model.mean.assign(d, 0.0);
  if (n == 0) return model;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) model.mean[j] += data(i, j);
  }
  for (auto& m : model.mean) m /= static_cast<double>(n);

  // cov = Xc^T . Xc / (n - 1) through the blocked double kernel.  Both
  // triangles come from the same ascending-sample summation order, so the
  // result is exactly symmetric (and thread-count invariant).
  Matrix centered(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      centered(i, j) = data(i, j) - model.mean[j];
    }
  }
  Matrix cov(d, d);
  tensor::gemm(tensor::Trans::kYes, tensor::Trans::kNo, d, d, n,
               centered.data().data(), d, centered.data().data(), d,
               cov.data().data(), d, /*accumulate=*/false);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  cov.scale(1.0 / denom);

  auto eig = symmetric_eigen(cov);
  k = std::min(k, d);
  model.components.assign(eig.vectors.begin(),
                          eig.vectors.begin() + static_cast<long>(k));
  model.explained.assign(eig.values.begin(),
                         eig.values.begin() + static_cast<long>(k));
  return model;
}

}  // namespace bprom::linalg
