// Minimal fixed-size thread pool used to train shadow-model populations and
// suspicious-model cohorts in parallel.
//
// Work items are type-erased closures; parallel_for provides the common
// index-sharded pattern with exception propagation to the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bprom::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future reports completion / exception.
  std::future<void> submit(std::function<void()> task);

  /// Pop and run one queued task on the calling thread.  Returns false when
  /// the queue is empty.  Lets blocked waiters help drain the queue, which
  /// makes nested parallel_for calls from worker threads deadlock-free.
  bool try_run_one();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  /// Dequeue the front task into `out`; false when the queue is empty.
  bool pop_locked(std::packaged_task<void()>& out) BPROM_REQUIRES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> queue_ BPROM_GUARDED_BY(mu_);
  bool stop_ BPROM_GUARDED_BY(mu_) = false;
};

/// Run body(i) for i in [0, n) across the given pool (defaults to
/// default_pool()).  The calling thread participates in the work, so nested
/// calls from pool workers cannot deadlock, and a 1-thread pool degrades to a
/// serial loop.  Each index is executed exactly once with disjoint outputs
/// left to the body, so results are independent of thread count whenever the
/// body is deterministic per index.  Rethrows the first exception
/// encountered; once a body throws, remaining indices are abandoned.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Process-wide default pool (lazily constructed).  Sized by the
/// BPROM_THREADS environment variable; unset or 0 means
/// hardware_concurrency.
ThreadPool& global_pool();

/// The pool parallel_for uses when no explicit pool is passed: the pool
/// installed by the innermost live ScopedPoolOverride, or the global pool
/// when none is installed.  Code that only needs a parallelism estimate
/// (e.g. how many model replicas to clone) should size off
/// default_pool().size().
ThreadPool& default_pool();

/// Reroute parallel_for's implicit pool for the lifetime of this object.
/// Lets one process run the same code path under several thread counts —
/// the determinism tests drive layer backward passes and CMA-ES candidate
/// evaluation with 1-, 2-, and 8-thread pools this way.  Overrides nest
/// (destruction restores the previous override).  Install and remove only
/// from the thread that owns the parallel region, while no implicit-pool
/// work is in flight.
class ScopedPoolOverride {
 public:
  explicit ScopedPoolOverride(ThreadPool& pool);
  ~ScopedPoolOverride();

  ScopedPoolOverride(const ScopedPoolOverride&) = delete;
  ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace bprom::util
