#include "linalg/pca.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/eigen.hpp"

namespace bprom::linalg {

std::vector<double> PcaModel::project(const std::vector<double>& x) const {
  assert(x.size() == mean.size());
  std::vector<double> centered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) centered[i] = x[i] - mean[i];
  std::vector<double> out(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    out[c] = dot(components[c], centered);
  }
  return out;
}

PcaModel fit_pca(const Matrix& data, std::size_t k) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  PcaModel model;
  model.mean.assign(d, 0.0);
  if (n == 0) return model;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) model.mean[j] += data(i, j);
  }
  for (auto& m : model.mean) m /= static_cast<double>(n);

  Matrix cov(d, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = data(i, a) - model.mean[a];
      if (xa == 0.0) continue;
      for (std::size_t b = a; b < d; ++b) {
        cov(a, b) += xa * (data(i, b) - model.mean[b]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a; b < d; ++b) {
      cov(a, b) /= denom;
      cov(b, a) = cov(a, b);
    }
  }

  auto eig = symmetric_eigen(cov);
  k = std::min(k, d);
  model.components.assign(eig.vectors.begin(),
                          eig.vectors.begin() + static_cast<long>(k));
  model.explained.assign(eig.values.begin(),
                         eig.values.begin() + static_cast<long>(k));
  return model;
}

}  // namespace bprom::linalg
