// Classifier model: feature backbone + linear head.
//
// Splitting the head out gives every analysis component (defenses, the
// class-subspace figures) access to penultimate features without layer
// surgery, and gives the VP trainer a single backward() that propagates all
// the way to the *input* gradient — which is what prompt learning optimizes.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace bprom::io {
class Writer;
class Reader;
}  // namespace bprom::io

namespace bprom::nn {

enum class ArchKind;

struct ImageShape {
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;

  [[nodiscard]] std::size_t size() const { return channels * height * width; }
  bool operator==(const ImageShape&) const = default;
};

class Model {
 public:
  Model(std::unique_ptr<Sequential> backbone, std::unique_ptr<Linear> head,
        ImageShape input, std::size_t classes);

  /// Logits [N, K] for an image batch [N, C, H, W].
  Tensor logits(const Tensor& images, bool train = false);

  /// Penultimate features [N, D] (backbone output, eval mode).
  Tensor features(const Tensor& images);

  /// Softmax probabilities [N, K] (eval mode).
  Tensor predict_proba(const Tensor& images);

  /// Argmax predictions.
  std::vector<int> predict(const Tensor& images);

  /// Fraction of correct argmax predictions.
  double accuracy(const Tensor& images, const std::vector<int>& labels);

  /// Backprop dL/dlogits through head and backbone; returns dL/dinput.
  /// Must follow a logits() call on the same batch.
  Tensor backward(const Tensor& dlogits);

  std::vector<Parameter*> parameters();

  /// Persistent non-trainable buffers (BatchNorm running stats), in the
  /// same deterministic order as parameters().
  std::vector<std::vector<float>*> state_buffers();

  /// Deep copy: layers, weights, and running stats are duplicated so the
  /// replica can serve forward passes on another thread independently.
  [[nodiscard]] std::unique_ptr<Model> clone() const;

  [[nodiscard]] const ImageShape& input_shape() const { return input_; }
  [[nodiscard]] std::size_t num_classes() const { return classes_; }
  [[nodiscard]] std::size_t feature_dim() const {
    return head_->in_features();
  }

  /// Architecture family this model was built from (stamped by make_model);
  /// the descriptor that lets save()/load() rebuild the layer graph.
  [[nodiscard]] ArchKind arch() const { return arch_; }
  void set_arch(ArchKind arch) { arch_ = arch; }

  /// Flatten all parameters AND persistent state (BatchNorm running
  /// mean/var) into a blob / restore from one.  A restored model is
  /// eval-ready with no fresh stats pass.
  [[nodiscard]] std::vector<float> save_parameters();
  void load_parameters(const std::vector<float>& blob);

  /// Binary persistence: architecture descriptor + input shape + classes +
  /// the save_parameters() blob.  Implemented in io/serialize.cpp.
  void save(io::Writer& writer);
  static std::unique_ptr<Model> load(io::Reader& reader);

 private:
  std::unique_ptr<Sequential> backbone_;
  std::unique_ptr<Linear> head_;
  ImageShape input_;
  std::size_t classes_;
  ArchKind arch_{};
};

}  // namespace bprom::nn
