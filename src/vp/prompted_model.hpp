// Prompted model: f_T = f_S ∘ V(·|theta) with identity output mapping.
//
// The paper omits the optional output-mapping step (Section 3), so target
// class i maps to source class i; this requires K_T <= K_S, which holds for
// every dataset pairing in the evaluation.
#pragma once

#include "nn/blackbox.hpp"
#include "nn/trainer.hpp"
#include "vp/prompt.hpp"

namespace bprom::vp {

class PromptedModel {
 public:
  PromptedModel(const nn::BlackBoxModel& model, VisualPrompt prompt);

  /// Source-domain confidence vectors [N, K_S] for target images.
  [[nodiscard]] Tensor predict_proba(const Tensor& target_images) const;

  /// Target-task accuracy.  Uses the identity label mapping unless a
  /// learned output mapping has been set (see set_label_mapping).
  [[nodiscard]] double accuracy(const nn::LabeledData& target_data) const;

  /// Output label mapping w (the optional step 3 of VP/MR, §3): element t
  /// is the source class assigned to target class t.  On the synthetic
  /// substrate the identity mapping would measure alignment luck between
  /// unrelated class geometries, so the library learns a frequency-based
  /// one-to-one mapping instead (documented in DESIGN.md).
  void set_label_mapping(std::vector<int> target_to_source);
  [[nodiscard]] const std::vector<int>& label_mapping() const {
    return mapping_;
  }

  [[nodiscard]] const VisualPrompt& prompt() const { return prompt_; }
  [[nodiscard]] const nn::BlackBoxModel& model() const { return *model_; }

 private:
  const nn::BlackBoxModel* model_;
  VisualPrompt prompt_;
  std::vector<int> mapping_;  // empty = identity
};

/// Frequency label mapping (Chen 2024): count source predictions per target
/// class on the target training set, then greedily assign each target class
/// its most frequent unassigned source class (one-to-one).  On a poisoned
/// source model several target classes compete for the same (target-attack)
/// source subspace, capping mapped accuracy — the measurable form of class
/// subspace inconsistency.
std::vector<int> fit_frequency_label_mapping(const PromptedModel& prompted,
                                             const nn::LabeledData& dt_train,
                                             std::size_t target_classes);

}  // namespace bprom::vp
