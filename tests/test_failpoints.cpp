// Tests for the deterministic fault-injection registry (util/failpoint)
// and its wiring into the io layer: spec parsing, trigger arithmetic,
// determinism of the probabilistic trigger, the disarmed fast path, and
// the behavior each armed action forces out of Writer/Reader.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "io/binary.hpp"
#include "util/failpoint.hpp"

namespace bprom {
namespace {

namespace fs = std::filesystem;

using util::FailpointAction;
using util::FailpointHit;

/// Every test starts and ends disarmed — armed state is process-global.
class Failpoints : public ::testing::Test {
 protected:
  void SetUp() override { util::failpoints_clear(); }
  void TearDown() override { util::failpoints_clear(); }

  static bool arm(const std::string& spec) {
    std::string error;
    const bool ok = util::failpoints_arm(spec, &error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
};

TEST_F(Failpoints, RegistryIsSortedAndQueryable) {
  const std::vector<std::string> names = util::failpoint_names();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    EXPECT_TRUE(util::failpoint_registered(name)) << name;
  }
  EXPECT_TRUE(util::failpoint_registered("io.save.rename"));
  EXPECT_TRUE(util::failpoint_registered("store.publish.crash"));
  EXPECT_FALSE(util::failpoint_registered("no.such.point"));
}

TEST_F(Failpoints, MalformedSpecsAreRejectedWithAReason) {
  for (const char* bad :
       {"no.such.point=err",          // unregistered name
        "io.read.open",               // missing '='
        "io.read.open=frobnicate",    // unknown action
        "io.read.open=short:",        // missing byte count
        "io.read.open=every:0->err",  // zero period
        "io.read.open=p:1.5:7->err",  // probability out of range
        "=err"}) {                    // empty name
    std::string error;
    EXPECT_FALSE(util::failpoints_arm(bad, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_FALSE(util::failpoints_enabled()) << bad;  // nothing half-armed
  }
}

TEST_F(Failpoints, DisarmedSitesReportNothing) {
  EXPECT_FALSE(util::failpoints_enabled());
  const FailpointHit hit = BPROM_FAILPOINT("io.read.open");
  EXPECT_FALSE(hit);
  EXPECT_EQ(hit.action, FailpointAction::kNone);
  // Disarmed evaluation is not even counted — the macro short-circuits.
  EXPECT_EQ(util::failpoint_hits("io.read.open"), 0U);
}

TEST_F(Failpoints, NthTriggerFiresExactlyOnce) {
  ASSERT_TRUE(arm("io.read.open=2->err"));
  EXPECT_FALSE(BPROM_FAILPOINT("io.read.open"));  // hit 1
  const FailpointHit second = BPROM_FAILPOINT("io.read.open");
  EXPECT_EQ(second.action, FailpointAction::kError);  // hit 2: fires
  EXPECT_FALSE(BPROM_FAILPOINT("io.read.open"));      // hit 3: spent
  EXPECT_FALSE(BPROM_FAILPOINT("io.read.open"));
  EXPECT_EQ(util::failpoint_hits("io.read.open"), 4U);
}

TEST_F(Failpoints, EveryKTriggerFiresPeriodically) {
  ASSERT_TRUE(arm("net.recv=every:3->err"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(static_cast<bool>(BPROM_FAILPOINT("net.recv")));
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST_F(Failpoints, ProbabilisticTriggerIsSeedDeterministic) {
  const auto sample = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(static_cast<bool>(BPROM_FAILPOINT("net.send")));
    }
    return fired;
  };
  ASSERT_TRUE(arm("net.send=p:0.5:42->err"));
  const std::vector<bool> first = sample();
  util::failpoints_clear();
  ASSERT_TRUE(arm("net.send=p:0.5:42->err"));
  const std::vector<bool> replay = sample();
  EXPECT_EQ(first, replay);  // same seed, same schedule — bit for bit
  const auto fired_count =
      std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired_count, 0);
  EXPECT_LT(fired_count, 200);

  util::failpoints_clear();
  ASSERT_TRUE(arm("net.send=p:1.0:7->err"));
  EXPECT_TRUE(BPROM_FAILPOINT("net.send"));
  util::failpoints_clear();
  ASSERT_TRUE(arm("net.send=p:0.0:7->err"));
  EXPECT_FALSE(BPROM_FAILPOINT("net.send"));
}

TEST_F(Failpoints, ShortActionCarriesTheByteCount) {
  ASSERT_TRUE(arm("io.read.short=short:5"));
  const FailpointHit hit = BPROM_FAILPOINT("io.read.short");
  EXPECT_EQ(hit.action, FailpointAction::kShort);
  EXPECT_EQ(hit.arg, 5U);
}

TEST_F(Failpoints, DelayActionSleepsInsideEvalAndReportsNothing) {
  ASSERT_TRUE(arm("net.recv.stall=delay:60"));
  const auto t0 = std::chrono::steady_clock::now();
  const FailpointHit hit = BPROM_FAILPOINT("net.recv.stall");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(hit);  // the site proceeds normally after the stall
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
}

TEST_F(Failpoints, ExitActionDiesWithTheRequestedCode) {
  EXPECT_EXIT(
      {
        std::string error;
        if (!util::failpoints_arm("io.read.open=exit:43", &error)) _exit(99);
        (void)BPROM_FAILPOINT("io.read.open");
        _exit(98);  // unreachable: eval must have _exit(43)'d
      },
      ::testing::ExitedWithCode(43), "");
}

TEST_F(Failpoints, ArmingReplacesTheWholeSet) {
  ASSERT_TRUE(arm("io.read.open=err;net.send=err"));
  EXPECT_TRUE(BPROM_FAILPOINT("net.send"));
  ASSERT_TRUE(arm("io.read.short=short:1"));  // replaces, does not merge
  EXPECT_FALSE(BPROM_FAILPOINT("net.send"));
  EXPECT_TRUE(BPROM_FAILPOINT("io.read.short"));
  util::failpoints_clear();
  EXPECT_FALSE(util::failpoints_enabled());
}

// ---- io-layer wiring: each armed action forces the intended failure ----

class FailpointIo : public Failpoints {
 protected:
  void SetUp() override {
    Failpoints::SetUp();
    dir_ = (fs::temp_directory_path() / "bprom_failpoint_io").string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    Failpoints::TearDown();
  }

  [[nodiscard]] std::string path(const char* name) const {
    return (fs::path(dir_) / name).string();
  }

  static io::Writer sample_writer() {
    io::Writer writer;
    writer.write_tag("TEST");
    writer.write_u64(0xDEADBEEFULL);
    writer.write_string("fault injection payload");
    return writer;
  }

  std::string dir_;
};

TEST_F(FailpointIo, DisarmedSaveLoadRoundTrips) {
  sample_writer().save_file(path("clean.bprom"));
  io::Reader reader = io::Reader::from_file(path("clean.bprom"));
  reader.expect_tag("TEST");
  EXPECT_EQ(reader.read_u64(), 0xDEADBEEFULL);
  EXPECT_EQ(reader.read_string(), "fault injection payload");
}

TEST_F(FailpointIo, InjectedRenameFailureLeavesTheTempBehind) {
  ASSERT_TRUE(arm("io.save.rename=err"));
  EXPECT_THROW(sample_writer().save_file(path("a.bprom")), io::IoError);
  EXPECT_FALSE(fs::exists(path("a.bprom")));
  // The torn publish left its temp file — exactly what recover() must
  // later quarantine.
  bool temp_seen = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    temp_seen = temp_seen || entry.path().string().find(".tmp") !=
                                 std::string::npos;
  }
  EXPECT_TRUE(temp_seen);
}

TEST_F(FailpointIo, InjectedShortWriteTruncatesThenFails) {
  ASSERT_TRUE(arm("io.save.write=short:8"));
  try {
    sample_writer().save_file(path("b.bprom"));
    FAIL() << "short write must throw";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kIo);
  }
}

TEST_F(FailpointIo, InjectedOpenFailuresAreTypedIo) {
  sample_writer().save_file(path("c.bprom"));
  ASSERT_TRUE(arm("io.read.open=err"));
  try {
    (void)io::Reader::from_file(path("c.bprom"));
    FAIL() << "injected open failure must throw";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kIo);
  }
}

TEST_F(FailpointIo, InjectedShortReadParsesAsCorruption) {
  sample_writer().save_file(path("d.bprom"));
  ASSERT_TRUE(arm("io.read.short=short:10"));
  // The parser sees 10 honest-looking bytes and must classify the
  // truncation as corruption, not crash or misread.
  try {
    (void)io::Reader::from_file(path("d.bprom"));
    FAIL() << "truncated read must throw";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kCorrupt);
  }
}

TEST_F(FailpointIo, InjectedFsyncFailuresAbortThePublish) {
  for (const char* spec :
       {"io.save.fsync.file=err", "io.save.fsync.dir=err",
        "io.save.open=err"}) {
    util::failpoints_clear();
    ASSERT_TRUE(arm(spec));
    EXPECT_THROW(sample_writer().save_file(path("e.bprom")), io::IoError)
        << spec;
  }
  // fsync.dir fires AFTER the rename: the container is complete on disk
  // even though the durability barrier failed.
  EXPECT_TRUE(fs::exists(path("e.bprom")));
}

}  // namespace
}  // namespace bprom
