// Failpoint overhead microbenchmark: the registry is always compiled in,
// so its disarmed fast path (one relaxed atomic load per site) must be
// free for all practical purposes.  Emits BENCH_failpoint.json:
//   macro/disarmed        seconds for kMacroReps disarmed evaluations
//   macro/armed_other     same, with an UNRELATED failpoint armed (the
//                         slow path: registry lookup that misses)
//   save_load/disarmed    seconds for kIoReps save_file+load round trips
//   save_load/armed_other same, with an unrelated failpoint armed
// The printed table adds per-operation costs; the acceptance expectation
// is single-digit nanoseconds per disarmed site.
#include <cstdio>
#include <filesystem>
#include <string>

#include "common.hpp"
#include "io/binary.hpp"
#include "util/failpoint.hpp"
#include "util/stopwatch.hpp"

namespace {

constexpr std::size_t kMacroReps = 20'000'000;
constexpr std::size_t kIoReps = 200;

/// Accumulate hit results so the compiler cannot delete the loop.
double macro_seconds() {
  std::size_t fired = 0;
  bprom::util::Stopwatch watch;
  for (std::size_t i = 0; i < kMacroReps; ++i) {
    fired += static_cast<bool>(BPROM_FAILPOINT("io.read.open"));
  }
  const double seconds = watch.seconds();
  if (fired != 0) std::printf("unexpected: %zu fires\n", fired);
  return seconds;
}

double save_load_seconds(const std::string& path) {
  bprom::util::Stopwatch watch;
  for (std::size_t i = 0; i < kIoReps; ++i) {
    bprom::io::Writer writer;
    writer.write_tag("BNCH");
    writer.write_u64(i);
    writer.write_string("failpoint overhead probe payload");
    writer.save_file(path);
    bprom::io::Reader reader = bprom::io::Reader::from_file(path);
    reader.expect_tag("BNCH");
    (void)reader.read_u64();
  }
  return watch.seconds();
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  bench::BenchReport report("failpoint");
  const std::string dir =
      (fs::temp_directory_path() / "bprom_bench_failpoint").string();
  fs::create_directories(dir);
  const std::string path = dir + "/probe.bprom";

  // Disarmed: the production state.  Every site costs one relaxed load.
  bprom::util::failpoints_clear();
  const double macro_off = macro_seconds();
  const double io_off = save_load_seconds(path);

  // Armed-but-elsewhere: the worst benign state (enabled() is true, every
  // site takes the slow path and misses the registry lookup).
  std::string error;
  if (!bprom::util::failpoints_arm("net.recv.stall=delay:0", &error)) {
    std::fprintf(stderr, "arm failed: %s\n", error.c_str());
    return 1;
  }
  const double macro_on = macro_seconds();
  const double io_on = save_load_seconds(path);
  bprom::util::failpoints_clear();

  const double per_site_off_ns =
      macro_off / static_cast<double>(kMacroReps) * 1e9;
  const double per_site_on_ns =
      macro_on / static_cast<double>(kMacroReps) * 1e9;
  std::printf("%-22s %12s %14s\n", "state", "ns/site", "ms/save_load");
  std::printf("%-22s %12.2f %14.3f\n", "disarmed", per_site_off_ns,
              io_off / kIoReps * 1e3);
  std::printf("%-22s %12.2f %14.3f\n", "armed_other", per_site_on_ns,
              io_on / kIoReps * 1e3);

  report.add_cell("macro/disarmed", macro_off);
  report.add_cell("macro/armed_other", macro_on);
  report.add_cell("save_load/disarmed", io_off);
  report.add_cell("save_load/armed_other", io_on);
  report.write();
  fs::remove_all(dir);
  return 0;
}
