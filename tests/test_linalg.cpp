// Numerics tests: matrix algebra, eigendecomposition, PCA, k-means, stats.
#include <gtest/gtest.h>
#include <cmath>
#include "linalg/eigen.hpp"
#include "linalg/kmeans.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pca.hpp"
#include "linalg/stats.hpp"
namespace bprom::linalg {
namespace {

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  Matrix tt = t.transpose();
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(tt(i, j), a(i, j));
}

TEST(Matrix, VectorMultiply) {
  Matrix a{{2, 0}, {0, 3}};
  auto y = a.multiply(std::vector<double>{4, 5});
  EXPECT_DOUBLE_EQ(y[0], 8);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix d{{3, 0}, {0, 1}};
  auto eig = symmetric_eigen(d);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
}

TEST(Eigen, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m{{2, 1}, {1, 2}};
  auto eig = symmetric_eigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-9);
  // Leading eigenvector proportional to (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(eig.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Eigen, ReconstructsMatrix) {
  Matrix m{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  auto eig = symmetric_eigen(m);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double sum = 0;
      for (std::size_t k = 0; k < 3; ++k) {
        sum += eig.values[k] * eig.vectors[k][a] * eig.vectors[k][b];
      }
      EXPECT_NEAR(sum, m(a, b), 1e-8);
    }
  }
}

TEST(Eigen, LeadingSingularOfRankOne) {
  // Rank-1 matrix u v^T: leading right singular direction is v.
  Matrix a(4, 3);
  const double u[4] = {1, 2, -1, 0.5};
  const double v[3] = {0.6, 0.8, 0.0};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = u[i] * v[j];
  auto top = leading_singular(a);
  EXPECT_NEAR(std::abs(top.direction[0]), 0.6, 1e-6);
  EXPECT_NEAR(std::abs(top.direction[1]), 0.8, 1e-6);
  EXPECT_NEAR(std::abs(top.direction[2]), 0.0, 1e-6);
}

TEST(Pca, RecoversDominantAxis) {
  util::Rng rng(5);
  Matrix data(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    const double t = rng.normal();
    data(i, 0) = 3.0 * t + 0.05 * rng.normal();
    data(i, 1) = 1.0 * t + 0.05 * rng.normal();
  }
  auto pca = fit_pca(data, 1);
  const double ratio =
      std::abs(pca.components[0][1] / pca.components[0][0]);
  EXPECT_NEAR(ratio, 1.0 / 3.0, 0.05);
}

TEST(Pca, ProjectionCentersData) {
  Matrix data{{1, 1}, {3, 3}};
  auto pca = fit_pca(data, 1);
  auto p1 = pca.project({1, 1});
  auto p2 = pca.project({3, 3});
  EXPECT_NEAR(p1[0] + p2[0], 0.0, 1e-9);
}

TEST(KMeans, SeparatesTwoBlobs) {
  util::Rng rng(7);
  Matrix data(60, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    data(i, 0) = rng.normal(0.0, 0.1);
    data(i, 1) = rng.normal(0.0, 0.1);
    data(30 + i, 0) = rng.normal(5.0, 0.1);
    data(30 + i, 1) = rng.normal(5.0, 0.1);
  }
  auto result = kmeans(data, 2, rng);
  EXPECT_EQ(result.sizes[0] + result.sizes[1], 60u);
  EXPECT_EQ(result.sizes[0], 30u);
  // All of first blob share a cluster.
  for (std::size_t i = 1; i < 30; ++i)
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
  const double sil = silhouette_two_clusters(data, result.assignment);
  EXPECT_GT(sil, 0.8);
}

TEST(Stats, BasicMoments) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, EntropyUniformIsLogK) {
  std::vector<double> p(8, 0.125);
  EXPECT_NEAR(entropy(p), std::log(8.0), 1e-9);
  std::vector<double> onehot{1, 0, 0, 0};
  EXPECT_NEAR(entropy(onehot), 0.0, 1e-9);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-9);
  std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-9);
}

TEST(Stats, MadRobustToOutlier) {
  std::vector<double> v{1, 1.1, 0.9, 1.05, 100.0};
  EXPECT_LT(mad(v), 0.2);
}

}  // namespace
}  // namespace bprom::linalg
