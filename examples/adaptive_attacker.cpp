// Adaptive attacker study (§6.4): sweep the poison rate down to 0.2 % and
// try clean-label SIG — watch ASR decay while detection holds (or degrades
// gracefully at substrate scale; see EXPERIMENTS.md).
#include <cstdio>
#include "core/experiment.hpp"

int main() {
  using namespace bprom;
  auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  std::printf("== Adaptive attacker: low poison rates (BadNets) ==\n");
  std::printf("%-10s %-8s %-8s\n", "rate", "ASR", "score");
  for (double rate : {0.002, 0.01, 0.05, 0.20}) {
    auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 4);
    atk.poison_rate = rate;
    auto m = core::train_backdoored_model(src, atk, nn::ArchKind::kResNet18Mini,
                                          1000 + static_cast<int>(1000 * rate),
                                          scale);
    nn::BlackBoxAdapter box(*m.model);
    auto verdict = detector.inspect(box);
    std::printf("%-10.3f %-8.3f %-8.3f\n", rate, m.asr, verdict.score);
  }

  std::printf("\n== Adaptive attacker: clean-label SIG ==\n");
  auto sig = attacks::AttackConfig::defaults(attacks::AttackKind::kSig, 4);
  auto m = core::train_backdoored_model(src, sig, nn::ArchKind::kResNet18Mini,
                                        2000, scale);
  nn::BlackBoxAdapter box(*m.model);
  auto verdict = detector.inspect(box);
  std::printf("SIG: ASR %.3f, BPROM score %.3f (%s)\n", m.asr, verdict.score,
              verdict.backdoored ? "BACKDOOR" : "clean");
  return 0;
}
