#include "util/scratch.hpp"

namespace bprom::util {

Scratch& Scratch::tls() {
  thread_local Scratch arena;
  return arena;
}

}  // namespace bprom::util
