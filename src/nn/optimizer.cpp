#include "nn/optimizer.hpp"

#include <cmath>

namespace bprom::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    Tensor& vel = velocity_[pi];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      vel[i] = momentum_ * vel[i] + g;
      p.value[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i];
      m_[pi][i] = beta1_ * m_[pi][i] + (1.0F - beta1_) * g;
      v_[pi][i] = beta2_ * v_[pi][i] + (1.0F - beta2_) * g * g;
      const float mhat = m_[pi][i] / bc1;
      const float vhat = v_[pi][i] / bc2;
      p.value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace bprom::nn
