// Value types of the public `bprom::api` façade.
//
// Every struct carries an explicit `struct_version` so the same layouts can
// later be serialized over a wire unchanged: a field is never repurposed,
// only appended behind a version bump.  Models are the one exception to
// wire-readiness — a black box is referenced by a borrowed pointer because
// the whole point of BPROM is that the auditor only ever *queries* it; a
// network front end would substitute a remote-query adapter behind the same
// `nn::BlackBoxModel` interface and leave these structs as they are.
#pragma once

#include <cstdint>
#include <string>

#include "api/status.hpp"
#include "core/bprom.hpp"
#include "nn/blackbox.hpp"
#include "nn/trainer.hpp"

namespace bprom::api {

inline constexpr std::uint32_t kAuditRequestVersion = 1;
inline constexpr std::uint32_t kAuditResponseVersion = 1;
inline constexpr std::uint32_t kFitRequestVersion = 1;
inline constexpr std::uint32_t kDetectorInfoVersion = 1;

/// Sentinel for "no query budget": the audit may spend what it needs.
inline constexpr std::uint64_t kUnlimitedQueries = ~std::uint64_t{0};

/// One suspicious model to audit.
struct AuditRequest {
  std::uint32_t struct_version = kAuditRequestVersion;
  /// Caller-chosen identifier echoed back in the response.
  std::string model_id;
  /// Detector to audit against: a bare name ("marketplace") resolves to the
  /// newest published version; "name@vN" pins an exact version.
  std::string detector;
  /// Borrowed; must outlive the audit call (async included).
  const nn::BlackBoxModel* model = nullptr;
  /// Query budget with exact post-hoc enforcement.  A zero budget fails
  /// with kBudgetExhausted before the model is queried at all.  A nonzero
  /// budget cannot abort an inspection midway (an inspection is
  /// all-or-nothing): the engine runs it, and if the exact spend exceeded
  /// the budget the response is kBudgetExhausted with the spend reported in
  /// verdict.queries — the overspent queries ARE consumed.  Callers
  /// metering a paid model should size budgets from a prior audit's
  /// verdict.queries (inspection cost is deterministic per detector), not
  /// rely on mid-flight cutoff.
  std::uint64_t query_budget = kUnlimitedQueries;
  /// Per-request deadline in milliseconds measured from batch submission
  /// (for audit_async, ring wait counts); 0 disables.  A request whose turn
  /// comes after the deadline fails with kDeadlineExceeded before querying
  /// the model; a request that overruns mid-inspection is cut off at the
  /// next prompt-ensemble-member boundary (one member's optimizer run is
  /// all-or-nothing) and fails with kDeadlineExceeded reporting the exact
  /// queries already spent in verdict.queries — those queries ARE consumed.
  /// Deadlines are wall-clock and therefore the one knob that can make a
  /// batch thread-count-dependent; leave at 0 when reproducibility matters.
  std::uint64_t deadline_ms = 0;
};

/// Verdict (or typed failure) for one audited model.
struct AuditResponse {
  std::uint32_t struct_version = kAuditResponseVersion;
  std::string model_id;
  /// Fully-qualified detector version that served the request
  /// ("marketplace@v2"); empty when resolution itself failed.
  std::string detector_version;
  /// kOk iff `verdict` is meaningful.
  Status status;
  core::Verdict verdict;
  /// Wall-clock seconds spent on this request (validation + inspection).
  double seconds = 0.0;
};

/// Fit a detector and publish it under `name` (version auto-increments).
struct FitRequest {
  std::uint32_t struct_version = kFitRequestVersion;
  /// Published name; must be non-empty and must not contain '@' or '/'.
  std::string name;
  /// K_S — class count of the suspicious models this detector will audit.
  std::size_t source_classes = 0;
  /// Borrowed datasets; must outlive the fit() call.
  const nn::LabeledData* reserved_clean = nullptr;  // D_S
  const nn::LabeledData* target_train = nullptr;    // D_T train split
  const nn::LabeledData* target_test = nullptr;     // D_T test split
  /// Detector hyper-parameters.  The engine overrides `config.pool` with its
  /// own pool so fits and audits share one executor.
  core::BpromConfig config{};
};

/// Metadata of one published detector version.
struct DetectorInfo {
  std::uint32_t struct_version = kDetectorInfoVersion;
  std::string name;        // base name, no version suffix
  std::uint32_t version = 0;
  std::size_t source_classes = 0;
  std::size_t query_samples = 0;
  /// Filesystem path of the backing `.bprom` container.
  std::string path;

  /// "name@vN" — the fully-qualified form requests may pin.
  [[nodiscard]] std::string versioned_name() const;
};

/// Compose "name@vN" from a base name and version.
std::string versioned_name(const std::string& base, std::uint32_t version);

/// Split "name@vN" into base and version; returns false (outputs untouched)
/// for bare names or malformed suffixes ("name@", "name@v", "name@v0x").
bool parse_versioned_name(const std::string& name, std::string* base,
                          std::uint32_t* version);

}  // namespace bprom::api
