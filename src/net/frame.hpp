// Length-prefixed binary framing for the BPROM network protocol.
//
// A frame is a fixed 24-byte header followed by a body that is a complete
// `src/io` container (magic + format version + payload length + CRC-32):
//
//   offset  size  field
//        0     4  frame magic "BPNF"
//        4     2  protocol version (u16, kProtocolVersion)
//        6     1  message type (net::MsgType)
//        7     1  flags (reserved, must be 0)
//        8     8  request id (u64, chosen by the client, echoed verbatim)
//       16     8  body length in bytes (u64)
//       24     …  body: io::Writer::finish() bytes of the typed message
//
// The header gives a socket reader exactly what it needs before any
// allocation-by-attacker can happen: the magic rejects non-protocol bytes,
// the body length is bounds-checked against a configured maximum *before*
// the body is buffered, and the body's own CRC (verified by io::Reader)
// rejects bit flips end to end.  Integrity and versioning of the body are
// therefore the same machinery `.bprom` containers already use — a corrupt
// frame fails exactly like a corrupt artifact, with the same typed Status.
//
// Partial reads are the normal case on a non-blocking socket, so the
// parser is an incremental assembler: feed it whatever bytes arrived and
// it yields zero or more complete frames, or a typed, unrecoverable error
// (bad magic / oversized length — after either, the stream cannot be
// resynchronized and the connection must close).
#pragma once

#include <cstdint>
#include <vector>

#include "api/status.hpp"
#include "io/binary.hpp"

namespace bprom::net {

/// Version of the frame header + message-type table.  A server answers a
/// newer protocol version with kVersionMismatch instead of guessing at a
/// header layout it does not know.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Frame magic: "BPNF" (BProm Net Frame).
inline constexpr std::uint8_t kFrameMagic[4] = {'B', 'P', 'N', 'F'};

inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Default ceiling on one frame's body (covers a serialized suspicious
/// model with slack); ServerConfig/ClientConfig can lower or raise it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ull << 20;

/// Wire message types.  Requests are client -> server; responses mirror
/// them.  kError answers any frame whose request could not be decoded far
/// enough to produce the matching typed response.
enum class MsgType : std::uint8_t {
  kError = 0,
  kAuditRequest = 1,
  kAuditResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kInfoRequest = 5,
  kInfoResponse = 6,
  kShutdownRequest = 7,
  kShutdownResponse = 8,
};

struct FrameHeader {
  std::uint16_t protocol_version = kProtocolVersion;
  MsgType type = MsgType::kError;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t body_len = 0;
};

/// Serialize `header` into its 24-byte wire form (little-endian).
void encode_frame_header(const FrameHeader& header,
                         std::uint8_t out[kFrameHeaderBytes]);

/// One complete wire frame: header + the finished io container holding the
/// encoded message body.
std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       const io::Writer& body);

/// Incremental frame parser over a byte stream (see file comment).
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_body_bytes = kDefaultMaxFrameBytes)
      : max_body_bytes_(max_body_bytes) {}

  /// Buffer `n` freshly received bytes.
  void append(const std::uint8_t* data, std::size_t n);

  enum class Next {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *header/*body filled; the frame's bytes were consumed
    kError,     ///< stream is unrecoverable; see error(), close the stream
  };

  /// Extract the next complete frame, if any.  The body is the raw io
  /// container bytes — hand them to io::Reader to CRC-check and decode.
  /// After kError every further call returns kError again.
  Next next(FrameHeader* header, std::vector<std::uint8_t>* body);

  /// Why the stream died (kError only): bad magic or oversized body.
  [[nodiscard]] const api::Status& error() const { return error_; }

  /// Bytes buffered but not yet consumed by a complete frame.
  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_body_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool dead_ = false;
  api::Status error_;
};

}  // namespace bprom::net
