// Table 7: AUROC vs number of shadow models (2 / 10 / 20 / 40).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::size_t counts[] = {2, 10, 20};
  util::TablePrinter table({"# shadows", "cifar Blend", "cifar AdapBlend",
                            "gtsrb Blend", "gtsrb AdapBlend"});
  for (auto total : counts) {
    std::vector<std::string> row = {std::to_string(total) + " (" +
                                    std::to_string(total / 2) + "+" +
                                    std::to_string(total / 2) + ")"};
    for (auto* src : {&env.cifar10, &env.gtsrb}) {
      auto scale = env.scale;
      scale.shadows_per_side = total / 2;
      auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, scale);
      for (auto kind : {attacks::AttackKind::kBlend, attacks::AttackKind::kAdapBlend}) {
        auto cell = bprom_cell(detector, *src, kind, arch, 400 + (int)kind, env.scale);
        row.push_back(util::cell(cell.auroc));
      }
    }
    table.add_row(row);
  }
  std::printf("== Table 7: AUROC vs shadow-model count ==\n");
  table.print();
  return 0;
}
