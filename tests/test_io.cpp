// Persistence round-trips: every artifact must reload byte-exactly, and
// malformed containers must be rejected loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/experiment.hpp"
#include "io/binary.hpp"
#include "io/serialize.hpp"
#include "nn/arch.hpp"
#include "nn/trainer.hpp"

namespace bprom {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

TEST(IoBinary, TensorRoundTripIsByteExact) {
  util::Rng rng(3);
  tensor::Tensor t = tensor::Tensor::randn({2, 3, 4, 5}, rng);
  io::Writer writer;
  io::save_tensor(writer, t);

  io::Reader reader(writer.finish());
  tensor::Tensor back = io::load_tensor(reader);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.vec(), t.vec());  // exact float equality: same bits
  EXPECT_EQ(reader.remaining(), 0U);
}

TEST(IoBinary, LabeledDataRoundTrip) {
  auto dataset = data::make_dataset(data::DatasetKind::kCifar10, 5, 24, 8);
  io::Writer writer;
  io::save_labeled_data(writer, dataset.train);
  io::Reader reader(writer.finish());
  nn::LabeledData back = io::load_labeled_data(reader);
  EXPECT_EQ(back.images.vec(), dataset.train.images.vec());
  EXPECT_EQ(back.labels, dataset.train.labels);
}

TEST(IoBinary, PromptRoundTrip) {
  vp::VisualPrompt prompt(nn::ImageShape{3, 16, 16},
                          vp::PromptMode::kAdditiveCoarse);
  std::vector<float> theta(prompt.num_params());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    theta[i] = 0.25F * static_cast<float>(i) - 1.0F;
  }
  prompt.set_theta(theta);

  io::Writer writer;
  io::save_prompt(writer, prompt);
  io::Reader reader(writer.finish());
  vp::VisualPrompt back = io::load_prompt(reader);
  EXPECT_EQ(back.mode(), prompt.mode());
  EXPECT_EQ(back.canvas(), prompt.canvas());
  EXPECT_EQ(back.theta(), prompt.theta());
}

TEST(IoBinary, RejectsCorruptTruncatedAndWrongVersionFiles) {
  util::Rng rng(4);
  tensor::Tensor t = tensor::Tensor::randn({4, 4}, rng);
  io::Writer writer;
  io::save_tensor(writer, t);
  const std::vector<std::uint8_t> good = writer.finish();

  // Sanity: the untouched container parses.
  EXPECT_NO_THROW(io::Reader{good});

  // Every rejection carries the ErrorKind the api façade maps onto its
  // Status codes, so the kinds are part of the contract.
  const auto kind_of = [](const std::vector<std::uint8_t>& bytes) {
    try {
      io::Reader reader{bytes};
    } catch (const io::IoError& e) {
      return e.kind();
    }
    ADD_FAILURE() << "container unexpectedly parsed";
    return io::ErrorKind::kIo;
  };

  // Bad magic.
  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(kind_of(bad_magic), io::ErrorKind::kCorrupt);

  // Unsupported (newer) version: mismatch, not corruption.
  auto bad_version = good;
  bad_version[4] = 99;
  EXPECT_EQ(kind_of(bad_version), io::ErrorKind::kVersionMismatch);

  // Truncated payload.
  auto truncated = good;
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(kind_of(truncated), io::ErrorKind::kCorrupt);

  // Single flipped payload byte -> CRC failure.
  auto corrupt = good;
  corrupt[24] ^= 0x40U;
  EXPECT_EQ(kind_of(corrupt), io::ErrorKind::kCorrupt);

  // Wrong chunk kind: a Tensor container is not a forest.
  io::Reader reader{good};
  EXPECT_THROW(meta::RandomForest::load(reader), io::IoError);

  // A missing file is kNotFound (the façade's Status::kNotFound), not kIo.
  try {
    io::Reader::from_file("/nonexistent/bprom/container.bprom");
    ADD_FAILURE() << "missing file unexpectedly opened";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kNotFound);
  }
}

TEST(IoBinary, RejectsStructurallyCorruptTrees) {
  // Hand-craft a CRC-valid FRST container whose single tree splits on a
  // feature far beyond the recorded feature dimension: the CRC passes but
  // load() must still refuse (out-of-bounds split would read past the
  // feature vector at predict time).
  const auto forged = [](int feature, int left, int right) {
    io::Writer writer;
    writer.write_tag("FRST");
    writer.write_u64(1);  // config.trees
    writer.write_u64(8);  // config.tree.max_depth
    writer.write_u64(1);  // config.tree.min_samples_leaf
    writer.write_u64(0);  // config.tree.feature_subsample
    writer.write_u64(19); // config.seed
    writer.write_u64(6);  // feature_dim
    writer.write_u64(1);  // tree count
    writer.write_tag("TREE");
    writer.write_u64(3);  // node count
    writer.write_i32(feature);
    writer.write_f32(0.0F);
    writer.write_f64(0.5);
    writer.write_i32(left);
    writer.write_i32(right);
    for (int leaf = 0; leaf < 2; ++leaf) {
      writer.write_i32(-1);
      writer.write_f32(0.0F);
      writer.write_f64(0.5);
      writer.write_i32(-1);
      writer.write_i32(-1);
    }
    return writer.finish();
  };

  {  // Well-formed control: parses.
    io::Reader reader(forged(2, 1, 2));
    EXPECT_NO_THROW(meta::RandomForest::load(reader));
  }
  {  // Split feature beyond feature_dim.
    io::Reader reader(forged(500, 1, 2));
    EXPECT_THROW(meta::RandomForest::load(reader), io::IoError);
  }
  {  // Self-referential child: would loop forever at predict time.
    io::Reader reader(forged(2, 0, 2));
    EXPECT_THROW(meta::RandomForest::load(reader), io::IoError);
  }
}

TEST(IoBinary, ModelParameterBlobIncludesBatchNormRunningStats) {
  auto dataset = data::make_dataset(data::DatasetKind::kCifar10, 6, 96, 32);
  util::Rng rng_a(7);
  auto trained = nn::make_model(nn::ArchKind::kResNet18Mini,
                                dataset.profile.shape,
                                dataset.profile.classes, rng_a);
  nn::TrainConfig tc;
  tc.epochs = 2;
  nn::train_classifier(*trained, dataset.train, tc);

  // A differently initialized model becomes logit-identical after loading
  // the blob — only possible if BatchNorm running stats travel with it.
  util::Rng rng_b(1234);
  auto other = nn::make_model(nn::ArchKind::kResNet18Mini,
                              dataset.profile.shape, dataset.profile.classes,
                              rng_b);
  other->load_parameters(trained->save_parameters());
  const auto expected = trained->logits(dataset.test.images, false);
  const auto actual = other->logits(dataset.test.images, false);
  EXPECT_EQ(expected.vec(), actual.vec());
}

TEST(IoBinary, ModelFileRoundTripPreservesEvalLogits) {
  auto dataset = data::make_dataset(data::DatasetKind::kCifar10, 8, 96, 32);
  util::Rng rng(9);
  auto model = nn::make_model(nn::ArchKind::kMobileNetV2Mini,
                              dataset.profile.shape, dataset.profile.classes,
                              rng);
  nn::TrainConfig tc;
  tc.epochs = 2;
  nn::train_classifier(*model, dataset.train, tc);

  const std::string path = temp_path("bprom_test_model.bprom");
  io::save_model_file(path, *model);
  auto loaded = io::load_model_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded->arch(), nn::ArchKind::kMobileNetV2Mini);
  EXPECT_EQ(loaded->num_classes(), model->num_classes());
  const auto expected = model->logits(dataset.test.images, false);
  const auto actual = loaded->logits(dataset.test.images, false);
  EXPECT_EQ(expected.vec(), actual.vec());
}

TEST(IoBinary, RandomForestRoundTripPreservesScores) {
  util::Rng rng(11);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    const int label = i % 2;
    row[0] += static_cast<float>(label) * 2.0F;  // separable signal
    x.push_back(std::move(row));
    y.push_back(label);
  }
  meta::ForestConfig cfg;
  cfg.trees = 25;
  meta::RandomForest forest(cfg);
  forest.fit(x, y);

  io::Writer writer;
  forest.save(writer);
  io::Reader reader(writer.finish());
  meta::RandomForest back = meta::RandomForest::load(reader);
  EXPECT_EQ(back.tree_count(), forest.tree_count());
  EXPECT_EQ(back.config().trees, cfg.trees);
  for (const auto& row : x) {
    EXPECT_EQ(back.predict_proba(row), forest.predict_proba(row));
  }
}

TEST(IoBinary, DetectorFitSaveLoadInspectParity) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 21, 400, 160);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 22, 300, 160);
  const auto scale = micro_scale();
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale);

  const std::string path = temp_path("bprom_test_detector.bprom");
  io::save_detector_file(path, detector);
  auto loaded = io::load_detector_file(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.source_classes(), detector.source_classes());
  EXPECT_EQ(loaded.config().seed, detector.config().seed);
  EXPECT_EQ(loaded.diagnostics().meta_labels, detector.diagnostics().meta_labels);
  EXPECT_EQ(loaded.diagnostics().meta_features,
            detector.diagnostics().meta_features);

  // The acceptance bar: a model inspected by the reloaded detector gets
  // the identical verdict, down to the last bit of the score.
  auto population = core::build_population(
      src, attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets),
      nn::ArchKind::kResNet18Mini, 1, 40, scale);
  for (const auto& suspicious : population) {
    nn::BlackBoxAdapter box_a(*suspicious.model);
    nn::BlackBoxAdapter box_b(*suspicious.model);
    const auto original = detector.inspect(box_a);
    const auto reloaded = loaded.inspect(box_b);
    EXPECT_EQ(original.score, reloaded.score);
    EXPECT_EQ(original.backdoored, reloaded.backdoored);
    EXPECT_EQ(original.prompted_accuracy, reloaded.prompted_accuracy);
    EXPECT_EQ(original.queries, reloaded.queries);
  }
}

TEST(IoBinary, UnfittedDetectorRefusesToSave) {
  core::BpromDetector detector;
  io::Writer writer;
  try {
    detector.save(writer);
    FAIL() << "unfitted detector unexpectedly saved";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kPrecondition);
  }
}

}  // namespace
}  // namespace bprom
