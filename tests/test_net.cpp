// Framing + wire-message robustness: the parsing layer of src/net must
// turn every malformed input — truncated frames, corrupt CRCs, oversized
// length prefixes, bytes from the future — into a typed Status, never a
// crash, a hang, or an attacker-sized allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "io/binary.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "nn/arch.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace bprom {
namespace {

io::Writer tiny_body() {
  io::Writer writer;
  net::encode_stats_request(writer);
  return writer;
}

std::vector<std::uint8_t> tiny_frame(std::uint64_t request_id = 7) {
  return net::encode_frame(net::MsgType::kStatsRequest, request_id,
                           tiny_body());
}

TEST(NetFrame, HeaderRoundTripsThroughAssembler) {
  const std::vector<std::uint8_t> frame = tiny_frame(0x1122334455667788ULL);
  net::FrameAssembler assembler;
  assembler.append(frame.data(), frame.size());

  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  ASSERT_EQ(assembler.next(&header, &body), net::FrameAssembler::Next::kFrame);
  EXPECT_EQ(header.protocol_version, net::kProtocolVersion);
  EXPECT_EQ(header.type, net::MsgType::kStatsRequest);
  EXPECT_EQ(header.flags, 0);
  EXPECT_EQ(header.request_id, 0x1122334455667788ULL);
  EXPECT_EQ(header.body_len, body.size());
  EXPECT_EQ(body, tiny_body().finish());
  EXPECT_EQ(assembler.buffered(), 0U);
  EXPECT_EQ(assembler.next(&header, &body),
            net::FrameAssembler::Next::kNeedMore);
}

TEST(NetFrame, ByteAtATimeFeedYieldsExactlyOneFrame) {
  const std::vector<std::uint8_t> frame = tiny_frame();
  net::FrameAssembler assembler;
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    assembler.append(&frame[i], 1);
    ASSERT_EQ(assembler.next(&header, &body),
              net::FrameAssembler::Next::kNeedMore)
        << "after byte " << i;
  }
  assembler.append(&frame[frame.size() - 1], 1);
  ASSERT_EQ(assembler.next(&header, &body), net::FrameAssembler::Next::kFrame);
  EXPECT_EQ(body, tiny_body().finish());
}

TEST(NetFrame, InterleavedFramesInOneBufferAllComeOut) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto frame = tiny_frame(id);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  // Append in awkward slices that straddle frame boundaries.
  net::FrameAssembler assembler;
  std::size_t fed = 0;
  std::uint64_t expected_id = 1;
  while (fed < stream.size()) {
    const std::size_t n = std::min<std::size_t>(13, stream.size() - fed);
    assembler.append(stream.data() + fed, n);
    fed += n;
    net::FrameHeader header;
    std::vector<std::uint8_t> body;
    while (assembler.next(&header, &body) ==
           net::FrameAssembler::Next::kFrame) {
      EXPECT_EQ(header.request_id, expected_id++);
    }
  }
  EXPECT_EQ(expected_id, 4U);
  EXPECT_EQ(assembler.buffered(), 0U);
}

TEST(NetFrame, BadMagicIsTypedAndSticky) {
  std::vector<std::uint8_t> junk(64, 0x5A);
  net::FrameAssembler assembler;
  assembler.append(junk.data(), junk.size());
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  ASSERT_EQ(assembler.next(&header, &body), net::FrameAssembler::Next::kError);
  EXPECT_EQ(assembler.error().code(), api::StatusCode::kInvalidRequest);
  EXPECT_NE(assembler.error().message().find("magic"), std::string::npos);
  // Dead streams stay dead: more bytes cannot resurrect the parser.
  const auto frame = tiny_frame();
  assembler.append(frame.data(), frame.size());
  EXPECT_EQ(assembler.next(&header, &body), net::FrameAssembler::Next::kError);
}

TEST(NetFrame, OversizedLengthPrefixRejectedBeforeBuffering) {
  // A header claiming a huge body must be refused from the header alone —
  // no body bytes exist, and none should ever be allocated for.
  net::FrameHeader header;
  header.type = net::MsgType::kAuditRequest;
  header.request_id = 1;
  header.body_len = ~std::uint64_t{0} / 2;  // absurd attacker-chosen length
  std::uint8_t raw[net::kFrameHeaderBytes];
  net::encode_frame_header(header, raw);

  net::FrameAssembler assembler(/*max_body_bytes=*/1024);
  assembler.append(raw, sizeof(raw));
  net::FrameHeader parsed;
  std::vector<std::uint8_t> body;
  ASSERT_EQ(assembler.next(&parsed, &body), net::FrameAssembler::Next::kError);
  EXPECT_EQ(assembler.error().code(), api::StatusCode::kInvalidRequest);
  EXPECT_NE(assembler.error().message().find("exceeds"), std::string::npos);
}

TEST(NetFrame, TruncatedBodyStaysPending) {
  const std::vector<std::uint8_t> frame = tiny_frame();
  net::FrameAssembler assembler;
  assembler.append(frame.data(), frame.size() - 3);  // lose the tail
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  EXPECT_EQ(assembler.next(&header, &body),
            net::FrameAssembler::Next::kNeedMore);
  EXPECT_EQ(assembler.buffered(), frame.size() - 3);
}

TEST(NetFrame, CorruptBodyCrcFailsLikeCorruptArtifact) {
  std::vector<std::uint8_t> frame = tiny_frame();
  frame[frame.size() - 6] ^= 0x40;  // flip one payload bit
  net::FrameAssembler assembler;
  assembler.append(frame.data(), frame.size());
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  // Framing passes — integrity lives in the io container's CRC.
  ASSERT_EQ(assembler.next(&header, &body), net::FrameAssembler::Next::kFrame);
  try {
    io::Reader reader(std::move(body));
    net::decode_stats_request(reader);
    FAIL() << "corrupt body decoded";
  } catch (const io::IoError& e) {
    EXPECT_EQ(net::status_from_io(e).code(),
              api::StatusCode::kCorruptArtifact);
  }
}

TEST(NetMessages, NewerStructVersionIsVersionMismatch) {
  // Hand-craft an audit request from a "future" build: same tag, a
  // struct_version this build has never heard of.
  io::Writer writer;
  writer.write_tag(net::kTagAuditRequest);
  writer.write_u32(999);  // struct_version from the future
  writer.write_string("model-from-2031");
  try {
    io::Reader reader(writer.finish());
    net::decode_audit_request(reader);
    FAIL() << "future struct_version decoded";
  } catch (const io::IoError& e) {
    const api::Status status = net::status_from_io(e);
    EXPECT_EQ(status.code(), api::StatusCode::kVersionMismatch);
    EXPECT_NE(status.message().find("999"), std::string::npos);
  }
}

TEST(NetMessages, ZeroStructVersionIsAlsoRefused) {
  io::Writer writer;
  writer.write_tag(net::kTagInfoRequest);
  writer.write_u32(0);
  writer.write_string("market");
  try {
    io::Reader reader(writer.finish());
    net::decode_info_request(reader);
    FAIL() << "zero struct_version decoded";
  } catch (const io::IoError& e) {
    EXPECT_EQ(net::status_from_io(e).code(),
              api::StatusCode::kVersionMismatch);
  }
}

TEST(NetMessages, AuditResponseRoundTrip) {
  net::AuditResponseMsg msg;
  msg.model_id = "suspect-17";
  msg.detector_version = "market@v3";
  msg.status = api::Status::Ok();
  msg.verdict.score = 0.8125;
  msg.verdict.backdoored = true;
  msg.verdict.prompted_accuracy = 0.40625;
  msg.verdict.queries = 123456;
  msg.seconds = 1.5;

  io::Writer writer;
  net::encode_audit_response(writer, msg);
  io::Reader reader(writer.finish());
  const net::AuditResponseMsg back = net::decode_audit_response(reader);
  EXPECT_EQ(back.model_id, msg.model_id);
  EXPECT_EQ(back.detector_version, msg.detector_version);
  EXPECT_TRUE(back.status.ok());
  EXPECT_EQ(back.verdict.score, msg.verdict.score);
  EXPECT_EQ(back.verdict.backdoored, msg.verdict.backdoored);
  EXPECT_EQ(back.verdict.prompted_accuracy, msg.verdict.prompted_accuracy);
  EXPECT_EQ(back.verdict.queries, msg.verdict.queries);
  EXPECT_EQ(back.seconds, msg.seconds);
}

TEST(NetMessages, ErrorAndStatusRoundTripEveryCode) {
  for (std::uint32_t code = 0;
       code <= static_cast<std::uint32_t>(api::StatusCode::kInternal);
       ++code) {
    net::ErrorMsg msg;
    msg.status = {static_cast<api::StatusCode>(code), "reason " +
                                                          std::to_string(code)};
    io::Writer writer;
    net::encode_error(writer, msg);
    io::Reader reader(writer.finish());
    const net::ErrorMsg back = net::decode_error(reader);
    EXPECT_EQ(back.status.code(), msg.status.code());
    EXPECT_EQ(back.status.message(), msg.status.message());
  }
}

TEST(NetMessages, StatsResponseRoundTripIncludingProfile) {
  net::StatsResponseMsg msg;
  msg.engine.requests = 10;
  msg.engine.verdicts = 8;
  msg.engine.queries = 4242;
  msg.engine.rollovers = 1;
  msg.engine.deadline_misses = 2;
  msg.engine.store_generation = 5;
  auto& inspect = msg.engine.profile.stages[static_cast<std::size_t>(
      util::ProfileStage::kInspect)];
  inspect.count = 8;
  inspect.min = 100;
  inspect.max = 900;
  inspect.sum = 4000.0;
  inspect.p50 = 450.0;
  inspect.p95 = 880.0;
  inspect.p99 = 899.0;
  msg.server.connections_accepted = 3;
  msg.server.connections_active = 1;
  msg.server.requests_admitted = 10;
  msg.server.rejected_in_flight = 4;
  msg.server.rejected_total_in_flight = 2;
  msg.server.rejected_request_budget = 1;
  msg.server.rejected_byte_budget = 6;
  msg.server.rejected_protocol = 7;
  msg.server.bytes_received = 1234567;
  msg.server.bytes_sent = 7654321;

  io::Writer writer;
  net::encode_stats_response(writer, msg);
  io::Reader reader(writer.finish());
  const net::StatsResponseMsg back = net::decode_stats_response(reader);
  EXPECT_EQ(back.engine.requests, msg.engine.requests);
  EXPECT_EQ(back.engine.verdicts, msg.engine.verdicts);
  EXPECT_EQ(back.engine.queries, msg.engine.queries);
  EXPECT_EQ(back.engine.rollovers, msg.engine.rollovers);
  EXPECT_EQ(back.engine.deadline_misses, msg.engine.deadline_misses);
  EXPECT_EQ(back.engine.store_generation, msg.engine.store_generation);
  const auto& inspect_back =
      back.engine.profile[util::ProfileStage::kInspect];
  EXPECT_EQ(inspect_back.count, inspect.count);
  EXPECT_EQ(inspect_back.min, inspect.min);
  EXPECT_EQ(inspect_back.max, inspect.max);
  EXPECT_EQ(inspect_back.sum, inspect.sum);
  EXPECT_EQ(inspect_back.p50, inspect.p50);
  EXPECT_EQ(inspect_back.p95, inspect.p95);
  EXPECT_EQ(inspect_back.p99, inspect.p99);
  EXPECT_EQ(back.server.connections_accepted,
            msg.server.connections_accepted);
  EXPECT_EQ(back.server.connections_active, msg.server.connections_active);
  EXPECT_EQ(back.server.requests_admitted, msg.server.requests_admitted);
  EXPECT_EQ(back.server.rejected_in_flight, msg.server.rejected_in_flight);
  EXPECT_EQ(back.server.rejected_total_in_flight,
            msg.server.rejected_total_in_flight);
  EXPECT_EQ(back.server.rejected_request_budget,
            msg.server.rejected_request_budget);
  EXPECT_EQ(back.server.rejected_byte_budget,
            msg.server.rejected_byte_budget);
  EXPECT_EQ(back.server.rejected_protocol, msg.server.rejected_protocol);
  EXPECT_EQ(back.server.bytes_received, msg.server.bytes_received);
  EXPECT_EQ(back.server.bytes_sent, msg.server.bytes_sent);
}

TEST(NetMessages, InfoRoundTripOmitsNothingItPromises) {
  net::InfoRequestMsg request;
  request.detector = "market@v2";
  io::Writer req_writer;
  net::encode_info_request(req_writer, request);
  io::Reader req_reader(req_writer.finish());
  EXPECT_EQ(net::decode_info_request(req_reader).detector, "market@v2");

  net::InfoResponseMsg response;
  response.status = api::Status::Ok();
  response.info.name = "market";
  response.info.version = 2;
  response.info.source_classes = 10;
  response.info.query_samples = 4;
  response.info.path = "/private/server/side/path.bprom";
  io::Writer rsp_writer;
  net::encode_info_response(rsp_writer, response);
  io::Reader rsp_reader(rsp_writer.finish());
  const net::InfoResponseMsg back = net::decode_info_response(rsp_reader);
  EXPECT_EQ(back.info.name, "market");
  EXPECT_EQ(back.info.version, 2U);
  EXPECT_EQ(back.info.source_classes, 10U);
  EXPECT_EQ(back.info.query_samples, 4U);
  // The server's filesystem path deliberately does not cross the wire.
  EXPECT_TRUE(back.info.path.empty());
}

TEST(NetMessages, AuditRequestModelRidesByteExact) {
  util::Rng rng(11);
  auto model = nn::make_model(nn::ArchKind::kMlp, nn::ImageShape{3, 8, 8}, 4,
                              rng);
  net::AuditRequestMsg msg;
  msg.model_id = "m-upload";
  msg.detector = "market";
  msg.query_budget = 5000;
  msg.deadline_ms = 250;

  io::Writer writer;
  net::encode_audit_request(writer, msg, *model);
  io::Reader reader(writer.finish());
  net::AuditRequestMsg back = net::decode_audit_request(reader);
  EXPECT_EQ(back.model_id, "m-upload");
  EXPECT_EQ(back.detector, "market");
  EXPECT_EQ(back.query_budget, 5000U);
  EXPECT_EQ(back.deadline_ms, 250U);
  ASSERT_NE(back.model, nullptr);

  // The byte-identity the whole uploaded-model design rests on: the decoded
  // model re-serializes to exactly the original's bytes.
  io::Writer original;
  model->save(original);
  io::Writer decoded;
  back.model->save(decoded);
  EXPECT_EQ(original.payload(), decoded.payload());
}

}  // namespace
}  // namespace bprom
