// Table 26: imagenet-like AUROC (CD, SCALE-UP, STRIP baselines + BPROM).
#include "common.hpp"
int main() {
  using namespace bench;
  BenchReport report("table26_imagenet");
  auto env = Env::make();
  auto imagenet = data::make_dataset(data::DatasetKind::kImageNet, 1);
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kTrojan,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kCd, defenses::DefenseKind::kScaleUp,
      defenses::DefenseKind::kStrip};
  std::vector<std::string> header = {"defense"};
  for (auto a : kinds) header.push_back(attacks::attack_name(a));
  header.push_back("AVG");
  util::TablePrinter table(header);
  const auto cells =
      baseline_grid(baselines, imagenet, kinds, arch, 1300, env.scale);
  report.add_cells(imagenet, cells);
  for (std::size_t d = 0; d < baselines.size(); ++d) {
    std::vector<std::string> row = {defenses::defense_name(baselines[d])};
    double avg = 0;
    for (std::size_t a = 0; a < kinds.size(); ++a) {
      const auto& eval = cells[d * kinds.size() + a].eval;
      row.push_back(util::cell(eval.auroc));
      avg += eval.auroc;
    }
    row.push_back(util::cell(avg / kinds.size()));
    table.add_row(row);
  }
  auto detector = core::fit_detector(imagenet, env.stl10, 0.10, arch, 7, env.scale);
  std::vector<std::string> row = {"BPROM (10%)"};
  double avg = 0;
  for (const auto& cell :
       bprom_row(detector, imagenet, arch, 1350, env.scale, kinds)) {
    row.push_back(util::cell(cell.auroc));
    avg += cell.auroc;
  }
  row.push_back(util::cell(avg / kinds.size()));
  table.add_row(row);
  std::printf("== Table 26: imagenet-like ==\n");
  table.print();
  report.write();
  return 0;
}
