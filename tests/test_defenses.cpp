// Baseline defense sanity: each defense beats chance on the attack class it
#include <cmath>
// is designed for, on a genuinely backdoored model.
#include <gtest/gtest.h>
#include "core/experiment.hpp"
#include "defenses/evaluate.hpp"
#include "defenses/mntd.hpp"
#include "defenses/model_level.hpp"
namespace bprom {
namespace {

struct Fixture {
  data::Dataset src;
  core::TrainedSuspicious bd;
  core::TrainedSuspicious cln;
  core::ExperimentScale scale;

  Fixture() {
    scale = core::ExperimentScale::current();
    scale.suspicious_train = 300;
    scale.suspicious_epochs = 5;
    src = data::make_dataset(data::DatasetKind::kCifar10, 1, 1500, 600);
    auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
    bd = core::train_backdoored_model(src, atk, nn::ArchKind::kResNet18Mini, 21, scale);
    cln = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 22, scale);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Defenses, BackdooredModelHasHighAsr) {
  EXPECT_GT(fixture().bd.asr, 0.85);
  EXPECT_GT(fixture().bd.clean_accuracy, 0.7);
}

class InputLevelSweep
    : public ::testing::TestWithParam<defenses::DefenseKind> {};

TEST_P(InputLevelSweep, BeatsChanceOnPatchTrigger) {
  auto& f = fixture();
  util::Rng rng(31);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  atk.seed = f.bd.attack.seed;  // same trigger the model was trained on
  auto eval = defenses::evaluate_input_level(GetParam(), *f.bd.model,
                                             f.src.test, atk, 30, rng);
  EXPECT_GT(eval.auroc, 0.55) << defenses::defense_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    PatchSensitive, InputLevelSweep,
    ::testing::Values(defenses::DefenseKind::kStrip,
                      defenses::DefenseKind::kFrequency,
                      defenses::DefenseKind::kScaleUp,
                      defenses::DefenseKind::kTed));

TEST(Defenses, FrequencyDetectsPatchNotModelFree) {
  // Frequency statistic is model-free: high-frequency patch energy.
  auto& f = fixture();
  util::Rng rng(32);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  auto eval = defenses::evaluate_input_level(defenses::DefenseKind::kFrequency,
                                             *f.cln.model, f.src.test, atk, 30, rng);
  // Works even on a clean model — it only looks at inputs.
  EXPECT_GT(eval.auroc, 0.6);
}

TEST(Defenses, StripCollapsesOnCleanModel) {
  // The Table 1 phenomenon: superposition entropy carries no signal when
  // the model has no trigger circuit.
  auto& f = fixture();
  util::Rng rng(33);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  auto eval = defenses::evaluate_input_level(defenses::DefenseKind::kStrip,
                                             *f.cln.model, f.src.test, atk, 30, rng);
  EXPECT_LT(eval.auroc, 0.75);
}

class DataLevelSweep
    : public ::testing::TestWithParam<defenses::DefenseKind> {};

TEST_P(DataLevelSweep, BeatsChanceOnDirtyLabelPoison) {
  auto& f = fixture();
  util::Rng rng(34);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  atk.seed = f.bd.attack.seed;
  util::Rng drng(35);
  auto train = data::subset(f.src.train,
                            drng.sample_without_replacement(f.src.train.size(), 300));
  auto poisoned = attacks::poison_dataset(train, atk, drng);
  auto eval = defenses::evaluate_data_level(GetParam(), *f.bd.model, poisoned,
                                            10, rng);
  EXPECT_GT(eval.auroc, 0.55) << defenses::defense_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    SpectralFamily, DataLevelSweep,
    ::testing::Values(defenses::DefenseKind::kSs,
                      defenses::DefenseKind::kSpectre));

TEST(Defenses, ScanProducesValidScores) {
  // SCAn's two-component surrogate is the weakest of the data-level family
  // on this substrate (matching its mid-pack Table 5 row); assert validity
  // rather than a win.
  auto& f = fixture();
  util::Rng rng(37);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  atk.seed = f.bd.attack.seed;
  util::Rng drng(38);
  auto train = data::subset(f.src.train,
                            drng.sample_without_replacement(f.src.train.size(), 300));
  auto poisoned = attacks::poison_dataset(train, atk, drng);
  auto eval = defenses::evaluate_data_level(defenses::DefenseKind::kScan,
                                            *f.bd.model, poisoned, 10, rng);
  EXPECT_GE(eval.auroc, 0.0);
  EXPECT_LE(eval.auroc, 1.0);
}

TEST(Defenses, MmBdScoreIsFinite) {
  auto& f = fixture();
  const double bd_score = defenses::mmbd_model_score(*f.bd.model);
  const double cln_score = defenses::mmbd_model_score(*f.cln.model);
  EXPECT_TRUE(std::isfinite(bd_score));
  EXPECT_TRUE(std::isfinite(cln_score));
}

TEST(Defenses, MntdFitsAndScores) {
  auto& f = fixture();
  util::Rng rng(36);
  auto reserved = data::sample_fraction(f.src.test, 0.2, rng);
  defenses::MntdConfig cfg;
  cfg.clean_shadows = 3;
  cfg.backdoor_shadows = 3;
  cfg.shadow_train.epochs = 3;
  defenses::MntdDetector mntd(cfg);
  mntd.fit(reserved, 10);
  nn::BlackBoxAdapter bd_box(*f.bd.model);
  nn::BlackBoxAdapter cln_box(*f.cln.model);
  const double sb = mntd.score(bd_box);
  const double sc = mntd.score(cln_box);
  EXPECT_GE(sb, 0.0);
  EXPECT_LE(sb, 1.0);
  EXPECT_GE(sc, 0.0);
  EXPECT_LE(sc, 1.0);
}

}  // namespace
}  // namespace bprom
