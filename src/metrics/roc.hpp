// Detection metrics: ROC / AUROC, F1 / precision / recall.
//
// Convention: higher score = more likely positive (backdoored / poisoned).
#pragma once

#include <cstddef>
#include <vector>

namespace bprom::metrics {

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// Full ROC curve (thresholds descending).
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Area under the ROC curve via the rank statistic (ties get half credit).
double auroc(const std::vector<double>& scores, const std::vector<int>& labels);

struct BinaryReport {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
};

/// Classification report at a fixed threshold.
BinaryReport binary_report(const std::vector<double>& scores,
                           const std::vector<int>& labels, double threshold);

/// F1 at the threshold that maximizes it (standard for detection tables
/// when the method does not define its own operating point).
double best_f1(const std::vector<double>& scores,
               const std::vector<int>& labels);

}  // namespace bprom::metrics
