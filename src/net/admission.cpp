#include "net/admission.hpp"

#include <string>

namespace bprom::net {

api::Status AdmissionControl::admit(std::size_t in_flight,
                                    std::uint64_t requests_seen,
                                    std::uint64_t bytes_seen) {
  if (config_.max_requests_per_connection > 0 &&
      requests_seen > config_.max_requests_per_connection) {
    // relaxed: statistics tally — the typed rejection itself is the signal,
    // the counter only feeds the stats endpoint.
    rejected_request_budget_.fetch_add(1, std::memory_order_relaxed);
    return api::Status::BudgetExhausted(
        "connection exhausted its request budget of " +
        std::to_string(config_.max_requests_per_connection));
  }
  if (config_.max_bytes_per_connection > 0 &&
      bytes_seen > config_.max_bytes_per_connection) {
    // relaxed: statistics tally (see above).
    rejected_byte_budget_.fetch_add(1, std::memory_order_relaxed);
    return api::Status::BudgetExhausted(
        "connection exhausted its byte budget of " +
        std::to_string(config_.max_bytes_per_connection) + " bytes");
  }
  if (config_.max_in_flight_per_connection > 0 &&
      in_flight >= config_.max_in_flight_per_connection) {
    // relaxed: statistics tally (see above).
    rejected_in_flight_.fetch_add(1, std::memory_order_relaxed);
    return api::Status::BudgetExhausted(
        "connection already has " + std::to_string(in_flight) +
        " audits in flight (limit " +
        std::to_string(config_.max_in_flight_per_connection) + ")");
  }
  if (config_.max_in_flight_total > 0) {
    // CAS loop so concurrent IO threads cannot admit past the global cap.
    std::size_t current =
        total_in_flight_.load(std::memory_order_relaxed);  // relaxed: CAS
                                                           // below re-reads
    for (;;) {
      if (current >= config_.max_in_flight_total) {
        // relaxed: statistics tally (see above).
        rejected_total_in_flight_.fetch_add(1, std::memory_order_relaxed);
        return api::Status::BudgetExhausted(
            "server has " + std::to_string(current) +
            " audits in flight (limit " +
            std::to_string(config_.max_in_flight_total) + ")");
      }
      if (total_in_flight_.compare_exchange_weak(current, current + 1,
                                                 std::memory_order_acq_rel)) {
        break;
      }
    }
  } else {
    // relaxed: pure occupancy tally when no cap gates on it.
    total_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  // relaxed: statistics tally.
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return api::Status::Ok();
}

void AdmissionControl::release() {
  // acq_rel pairs with the admit() CAS so a slot freed on a serve worker is
  // visible to the next IO-thread admission decision.
  total_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void AdmissionControl::fill(ServerCounters* counters) const {
  // relaxed: snapshot reads of statistics tallies, not a transaction.
  counters->requests_admitted = admitted_.load(std::memory_order_relaxed);
  counters->rejected_in_flight =
      rejected_in_flight_.load(std::memory_order_relaxed);  // relaxed: ^
  counters->rejected_total_in_flight =
      rejected_total_in_flight_.load(std::memory_order_relaxed);  // relaxed: ^
  counters->rejected_request_budget =
      rejected_request_budget_.load(std::memory_order_relaxed);  // relaxed: ^
  counters->rejected_byte_budget =
      rejected_byte_budget_.load(std::memory_order_relaxed);  // relaxed: ^
}

}  // namespace bprom::net
