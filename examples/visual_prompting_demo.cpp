// Pure visual-prompting demo (no backdoors): adapt a frozen cifar10-like
// classifier to the stl10-like task, comparing white-box backprop prompting
// against black-box SPSA / CMA-ES at equal query budgets.
#include <cstdio>
#include "core/experiment.hpp"
#include "vp/train_blackbox.hpp"
#include "vp/train_whitebox.hpp"

int main() {
  using namespace bprom;
  auto scale = core::ExperimentScale::current();
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 1);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 2);

  std::printf("== Visual prompting: frozen %s model -> %s task ==\n",
              src.profile.name.c_str(), tgt.profile.name.c_str());
  auto frozen = core::train_clean_model(src, nn::ArchKind::kResNet18Mini, 55, scale);
  std::printf("frozen source model accuracy: %.3f\n\n", frozen.clean_accuracy);

  util::Rng rng(5);
  auto dt_train = data::subset(
      tgt.train, rng.sample_without_replacement(tgt.train.size(), 256));
  nn::BlackBoxAdapter box(*frozen.model);

  auto report = [&](const char* name, const vp::VisualPrompt& prompt,
                    std::size_t queries) {
    vp::PromptedModel pm(box, prompt);
    pm.set_label_mapping(vp::fit_frequency_label_mapping(pm, dt_train, 10));
    std::printf("%-24s target accuracy %.3f  (queries: %zu)\n", name,
                pm.accuracy(tgt.test), queries);
  };

  report("no prompt (mapping only)",
         vp::VisualPrompt(src.profile.shape, vp::PromptMode::kAdditiveCoarse), 0);

  vp::WhiteBoxPromptConfig wc;
  wc.epochs = scale.prompt_epochs;
  auto wb = vp::learn_prompt_whitebox(*frozen.model, dt_train, wc);
  report("white-box backprop", wb, 0);

  for (auto opt : {vp::BlackBoxOptimizer::kSpsa, vp::BlackBoxOptimizer::kCmaEs}) {
    vp::BlackBoxPromptConfig bc;
    bc.optimizer = opt;
    bc.max_evaluations = scale.blackbox_evals;
    auto result = vp::learn_prompt_blackbox(box, dt_train, bc);
    report(opt == vp::BlackBoxOptimizer::kSpsa ? "black-box SPSA"
                                               : "black-box CMA-ES",
           result.prompt, result.queries);
  }
  return 0;
}
