#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"

namespace bprom::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  // Routed through the shared blocked kernel (double instantiation): the
  // fixed macro-tile grid keeps the product bit-identical for any thread
  // count, so the PCA/spectral analysis paths inherit both the speed and
  // the determinism contract.
  Matrix out(rows_, rhs.cols_);
  tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, rows_, rhs.cols_,
               cols_, data_.data(), cols_, rhs.data_.data(), rhs.cols_,
               out.data_.data(), rhs.cols_, /*accumulate=*/false);
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  // Matrix-vector stays a direct streaming loop: with one output column
  // the blocked kernel's packing would double the memory traffic for no
  // register-tile payoff.
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::add_scaled(const Matrix& rhs, double scale) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * rhs.data_[i];
  return *this;
}

Matrix& Matrix::scale(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace bprom::linalg
