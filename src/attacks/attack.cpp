#include "attacks/attack.hpp"

namespace bprom::attacks {

std::string attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kBadNets:
      return "BadNets";
    case AttackKind::kBlend:
      return "Blend";
    case AttackKind::kTrojan:
      return "Trojan";
    case AttackKind::kWaNet:
      return "WaNet";
    case AttackKind::kDynamic:
      return "Dynamic";
    case AttackKind::kAdapBlend:
      return "Adap-Blend";
    case AttackKind::kAdapPatch:
      return "Adap-Patch";
    case AttackKind::kBpp:
      return "BPP";
    case AttackKind::kSig:
      return "SIG";
    case AttackKind::kLc:
      return "LC";
    case AttackKind::kRefool:
      return "Refool";
    case AttackKind::kPoisonInk:
      return "PoisonInk";
  }
  return "?";
}

bool is_clean_label(AttackKind kind) {
  return kind == AttackKind::kSig || kind == AttackKind::kLc;
}

bool is_sample_specific(AttackKind kind) {
  return kind == AttackKind::kDynamic || kind == AttackKind::kBpp;
}

AttackConfig AttackConfig::defaults(AttackKind kind, int target_class,
                                    std::uint64_t seed) {
  AttackConfig cfg;
  cfg.kind = kind;
  cfg.target_class = target_class;
  cfg.seed = seed;
  switch (kind) {
    case AttackKind::kBadNets:
    case AttackKind::kTrojan:
      cfg.poison_rate = 0.20;
      cfg.trigger_size = 4;
      cfg.alpha = 0.0;  // opaque patch
      break;
    case AttackKind::kBlend:
      cfg.poison_rate = 0.20;
      cfg.alpha = 0.65;
      break;
    case AttackKind::kWaNet:
      cfg.poison_rate = 0.20;
      cfg.cover_rate = 0.05;
      break;
    case AttackKind::kDynamic:
      cfg.poison_rate = 0.20;
      cfg.trigger_size = 4;
      break;
    case AttackKind::kAdapBlend:
      cfg.poison_rate = 0.20;
      cfg.cover_rate = 0.02;
      cfg.alpha = 0.60;
      break;
    case AttackKind::kAdapPatch:
      cfg.poison_rate = 0.20;
      cfg.cover_rate = 0.02;
      cfg.trigger_size = 4;
      cfg.alpha = 0.0;
      break;
    case AttackKind::kBpp:
      cfg.poison_rate = 0.20;
      break;
    case AttackKind::kSig:
      cfg.poison_rate = 1.00;  // of target-class samples
      cfg.alpha = 0.55;
      break;
    case AttackKind::kLc:
      cfg.poison_rate = 1.00;  // of target-class samples
      cfg.trigger_size = 4;
      break;
    case AttackKind::kRefool:
      cfg.poison_rate = 0.20;
      cfg.alpha = 0.35;
      break;
    case AttackKind::kPoisonInk:
      cfg.poison_rate = 0.20;
      cfg.alpha = 0.3;
      break;
  }
  return cfg;
}

}  // namespace bprom::attacks
