// Table 5: AUROC of 10 baseline defenses + BPROM across 8 attacks on
// cifar10-like and gtsrb-like (ResNet18Mini).
#include "common.hpp"
int main() {
  using namespace bench;
  util::Stopwatch clock;
  BenchReport report("table05_main_auroc");
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kStrip,    defenses::DefenseKind::kAc,
      defenses::DefenseKind::kFrequency, defenses::DefenseKind::kSentiNet,
      defenses::DefenseKind::kCt,       defenses::DefenseKind::kSs,
      defenses::DefenseKind::kScan,     defenses::DefenseKind::kSpectre,
      defenses::DefenseKind::kMmBd,     defenses::DefenseKind::kTed};
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::printf("== Table 5 (%s, ResNet18Mini): AUROC ==\n", src->profile.name.c_str());
    std::vector<std::string> header = {"defense"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    const auto cells =
        baseline_grid(baselines, *src, main_attacks(), arch, 100, env.scale);
    report.add_cells(*src, cells);
    print_elapsed(clock, "baseline grid");
    for (std::size_t d = 0; d < baselines.size(); ++d) {
      std::vector<std::string> row = {defenses::defense_name(baselines[d])};
      double avg = 0;
      for (std::size_t a = 0; a < main_attacks().size(); ++a) {
        const auto& eval = cells[d * main_attacks().size() + a].eval;
        row.push_back(util::cell(eval.auroc));
        avg += eval.auroc;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    util::Stopwatch fit_clock;
    auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
    report.add_cell(src->profile.name + "/bprom/fit", fit_clock.seconds());
    print_elapsed(clock, "BPROM detector fitted");
    std::vector<std::string> row = {"BPROM (10%)"};
    double avg = 0;
    util::Stopwatch row_clock;
    for (const auto& cell : bprom_row(detector, *src, arch, 300, env.scale)) {
      row.push_back(util::cell(cell.auroc));
      avg += cell.auroc;
    }
    report.add_cell(src->profile.name + "/bprom/row", row_clock.seconds());
    row.push_back(util::cell(avg / main_attacks().size()));
    table.add_row(row);
    table.print();
  }
  report.write();
  return 0;
}
