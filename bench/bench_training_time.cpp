// §6.2 training-time report: BPROM fit wall-clock vs shadow count and
// architecture, measured with google-benchmark.
#include <benchmark/benchmark.h>
#include "common.hpp"
using namespace bench;

static void BM_BpromFit(benchmark::State& state) {
  auto env = Env::make();
  const auto arch = state.range(1) == 0 ? nn::ArchKind::kResNet18Mini
                                        : nn::ArchKind::kMobileNetV2Mini;
  auto scale = env.scale;
  scale.shadows_per_side = static_cast<std::size_t>(state.range(0)) / 2;
  for (auto _ : state) {
    auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10, arch, 7, scale);
    benchmark::DoNotOptimize(detector.fitted());
  }
  state.counters["shadows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BpromFit)->Args({4, 0})->Args({8, 0})->Args({16, 0})
    ->Args({4, 1})->Args({8, 1})->Unit(benchmark::kSecond)->Iterations(1);

static void BM_TrainSuspicious(benchmark::State& state) {
  auto env = Env::make();
  std::uint64_t seed = 9000;
  for (auto _ : state) {
    auto m = core::train_clean_model(env.cifar10, nn::ArchKind::kResNet18Mini,
                                     seed++, env.scale);
    benchmark::DoNotOptimize(m.clean_accuracy);
  }
}
BENCHMARK(BM_TrainSuspicious)->Unit(benchmark::kSecond)->Iterations(1);

static void BM_BlackBoxInspect(benchmark::State& state) {
  auto env = Env::make();
  auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, env.scale);
  auto m = core::train_clean_model(env.cifar10, nn::ArchKind::kResNet18Mini,
                                   9500, env.scale);
  for (auto _ : state) {
    nn::BlackBoxAdapter box(*m.model);
    auto verdict = detector.inspect(box);
    benchmark::DoNotOptimize(verdict.score);
    state.counters["queries"] = static_cast<double>(verdict.queries);
  }
}
BENCHMARK(BM_BlackBoxInspect)->Unit(benchmark::kSecond)->Iterations(1);

BENCHMARK_MAIN();
