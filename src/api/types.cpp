#include "api/types.hpp"

#include <cctype>

namespace bprom::api {

std::string versioned_name(const std::string& base, std::uint32_t version) {
  return base + "@v" + std::to_string(version);
}

std::string DetectorInfo::versioned_name() const {
  return api::versioned_name(name, version);
}

bool parse_versioned_name(const std::string& name, std::string* base,
                          std::uint32_t* version) {
  const std::size_t at = name.rfind('@');
  if (at == std::string::npos || at == 0) return false;
  if (at + 2 >= name.size() || name[at + 1] != 'v') return false;
  std::uint64_t v = 0;
  for (std::size_t i = at + 2; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return false;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
    if (v > 0xFFFFFFFFULL) return false;
  }
  if (v == 0) return false;
  *base = name.substr(0, at);
  *version = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace bprom::api
