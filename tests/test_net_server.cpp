// End-to-end socket serving: a loopback net::Server in front of a real
// AuditEngine must produce verdicts bit-identical to the in-process
// façade, reject overload and protocol garbage with typed statuses, and
// survive every kind of misbehaving client without crashing or leaking.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "data/ops.hpp"
#include "io/binary.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "nn/arch.hpp"
#include "nn/blackbox.hpp"

namespace bprom {
namespace {

namespace fs = std::filesystem;

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

struct Fixture {
  data::Dataset src = data::make_dataset(data::DatasetKind::kCifar10, 61, 400,
                                         160);
  data::Dataset tgt = data::make_dataset(data::DatasetKind::kStl10, 62, 300,
                                         160);
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, nn::ArchKind::kResNet18Mini, 7, micro_scale());
  core::TrainedSuspicious suspicious = core::train_clean_model(
      src, nn::ArchKind::kResNet18Mini, 50, micro_scale());
};

/// One fitted detector + one suspicious model shared by every test; fitting
/// is the expensive step and these tests exercise the wire around it.
const Fixture& fixture() {
  static const Fixture f;
  return f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

net::ClientAuditRequest wire_request(const std::string& id = "m0") {
  net::ClientAuditRequest request;
  request.model_id = id;
  request.detector = "market";
  request.model = fixture().suspicious.model.get();
  return request;
}

api::AuditResponse in_process_response(api::AuditEngine& engine) {
  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  api::AuditRequest request;
  request.model_id = "m0";
  request.detector = "market";
  request.model = &box;
  auto responses = engine.audit({request});
  EXPECT_EQ(responses.size(), 1U);
  return responses[0];
}

/// Raw TCP connection for hand-crafted (malformed) frames.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    auto sock = net::connect_to("127.0.0.1", port);
    EXPECT_TRUE(sock.ok()) << sock.status().to_string();
    if (sock.ok()) sock_ = std::move(sock).value();
  }

  void send(const std::vector<std::uint8_t>& bytes) {
    EXPECT_TRUE(net::send_all(sock_.fd(), bytes.data(), bytes.size()).ok());
  }

  bool read_frame(net::FrameHeader* header, std::vector<std::uint8_t>* body) {
    std::uint8_t buf[4096];
    for (;;) {
      const auto next = assembler_.next(header, body);
      if (next == net::FrameAssembler::Next::kFrame) return true;
      if (next == net::FrameAssembler::Next::kError) return false;
      std::size_t got = 0;
      if (!net::recv_some(sock_.fd(), buf, sizeof(buf), &got).ok()) {
        return false;
      }
      if (got == 0) return false;
      assembler_.append(buf, got);
    }
  }

  net::ErrorMsg read_error() {
    net::FrameHeader header;
    std::vector<std::uint8_t> body;
    EXPECT_TRUE(read_frame(&header, &body));
    EXPECT_EQ(header.type, net::MsgType::kError);
    io::Reader reader(std::move(body));
    return net::decode_error(reader);
  }

  /// True once the server closes its end (reset counts as closed).
  bool closed_by_server() {
    std::uint8_t buf[256];
    for (;;) {
      std::size_t got = 0;
      if (!net::recv_some(sock_.fd(), buf, sizeof(buf), &got).ok()) {
        return true;
      }
      if (got == 0) return true;
      assembler_.append(buf, got);  // drain whatever is still flushing
    }
  }

  [[nodiscard]] int fd() const { return sock_.fd(); }

 private:
  net::Socket sock_;
  net::FrameAssembler assembler_;
};

io::Writer stats_body() {
  io::Writer writer;
  net::encode_stats_request(writer);
  return writer;
}

TEST(NetServer, WireVerdictsBitIdenticalToInProcess) {
  const std::string dir = fresh_dir("bprom_net_identity");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::ServerConfig config;
  config.io_threads = 2;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  // The acceptance bar: a verdict through the socket — model serialized,
  // uploaded, decoded, audited remotely — is bit-identical to the same
  // model audited in-process on the same engine.  Single-request batches
  // on both sides, so both resolve the same (seed, index 0) salt.
  const api::AuditResponse local = in_process_response(engine);
  ASSERT_TRUE(local.status.ok()) << local.status.to_string();

  auto wire = client.value().audit(wire_request());
  ASSERT_TRUE(wire.ok()) << wire.status().to_string();
  const api::AuditResponse& remote = wire.value();
  ASSERT_TRUE(remote.status.ok()) << remote.status.to_string();
  EXPECT_EQ(remote.model_id, "m0");
  EXPECT_EQ(remote.detector_version, "market@v1");
  EXPECT_EQ(remote.verdict.score, local.verdict.score);
  EXPECT_EQ(remote.verdict.backdoored, local.verdict.backdoored);
  EXPECT_EQ(remote.verdict.prompted_accuracy,
            local.verdict.prompted_accuracy);
  EXPECT_EQ(remote.verdict.queries, local.verdict.queries);

  // Pipelined batch: each slot is its own server-side batch of one, so
  // every response must again be bit-identical to the single audit.
  auto batch = client.value().audit_batch({wire_request("a"),
                                           wire_request("b")});
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  for (const api::AuditResponse& response : batch.value()) {
    ASSERT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_EQ(response.verdict.score, local.verdict.score);
    EXPECT_EQ(response.verdict.queries, local.verdict.queries);
  }

  server.stop();
}

TEST(NetServer, StatsAndInfoFoldOverTheWire) {
  const std::string dir = fresh_dir("bprom_net_stats");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::Server server(engine, {});
  ASSERT_TRUE(server.start().ok());

  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok());
  auto audited = client.value().audit(wire_request());
  ASSERT_TRUE(audited.ok());
  ASSERT_TRUE(audited.value().status.ok());

  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  const net::StatsResponseMsg& msg = stats.value();
  EXPECT_GE(msg.engine.requests, 1U);
  EXPECT_GE(msg.engine.verdicts, 1U);
  EXPECT_GT(msg.engine.queries, 0U);
  // The engine profiler's percentiles crossed the wire folded into stats.
  const auto& request_stage = msg.engine.profile[util::ProfileStage::kRequest];
  EXPECT_GE(request_stage.count, 1U);
  EXPECT_GT(request_stage.p50, 0.0);
  // And the transport's own half.
  EXPECT_GE(msg.server.connections_accepted, 1U);
  EXPECT_GE(msg.server.connections_active, 1U);
  EXPECT_EQ(msg.server.requests_admitted, 1U);
  EXPECT_GT(msg.server.bytes_received, 0U);
  EXPECT_GT(msg.server.bytes_sent, 0U);
  EXPECT_EQ(msg.server.rejected_protocol, 0U);

  auto info = client.value().info("market");
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().name, "market");
  EXPECT_EQ(info.value().version, 1U);
  const auto local = engine.info("market");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(info.value().source_classes, local.value().source_classes);
  EXPECT_EQ(info.value().query_samples, local.value().query_samples);

  EXPECT_EQ(client.value().info("ghost").status().code(),
            api::StatusCode::kNotFound);

  server.stop();
}

TEST(NetServer, RequestBudgetExhaustsTypedAndResetsPerConnection) {
  const std::string dir = fresh_dir("bprom_net_reqbudget");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::ServerConfig config;
  config.admission.max_requests_per_connection = 2;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 2; ++i) {
    auto ok = client.value().audit(wire_request("ok" + std::to_string(i)));
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.value().status.ok()) << ok.value().status.to_string();
  }
  auto rejected = client.value().audit(wire_request("over"));
  ASSERT_TRUE(rejected.ok());  // transport succeeded; the REQUEST failed
  EXPECT_EQ(rejected.value().status.code(), api::StatusCode::kBudgetExhausted);
  EXPECT_NE(rejected.value().status.message().find("request budget"),
            std::string::npos);
  EXPECT_EQ(server.counters().rejected_request_budget, 1U);

  // Budgets are per connection: a fresh connection starts a fresh budget.
  auto fresh = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(fresh.ok());
  auto again = fresh.value().audit(wire_request());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().status.ok());

  server.stop();
}

TEST(NetServer, ByteBudgetExhaustsTyped) {
  const std::string dir = fresh_dir("bprom_net_bytebudget");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::ServerConfig config;
  // One serialized-model audit request blows well past 4KiB.
  config.admission.max_bytes_per_connection = 4096;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok());
  auto rejected = client.value().audit(wire_request());
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status.code(), api::StatusCode::kBudgetExhausted);
  EXPECT_NE(rejected.value().status.message().find("byte budget"),
            std::string::npos);
  EXPECT_EQ(server.counters().rejected_byte_budget, 1U);

  server.stop();
}

TEST(NetServer, OverloadRejectsTypedWhileAcceptedRequestsComplete) {
  const std::string dir = fresh_dir("bprom_net_overload");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::ServerConfig config;
  config.admission.max_in_flight_per_connection = 1;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  const api::AuditResponse local = in_process_response(engine);
  ASSERT_TRUE(local.status.ok());

  // Pipeline four requests at a connection capped at one in flight: the
  // client writes all four before reading anything, an inspection takes
  // ~a second, so the later frames reach admission while the first audit
  // is still running and MUST bounce typed — and the accepted request
  // must still complete with the exact in-process verdict.
  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok());
  auto batch = client.value().audit_batch(
      {wire_request("q0"), wire_request("q1"), wire_request("q2"),
       wire_request("q3")});
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  std::size_t completed = 0;
  std::size_t rejected = 0;
  for (const api::AuditResponse& response : batch.value()) {
    if (response.status.ok()) {
      ++completed;
      EXPECT_EQ(response.verdict.score, local.verdict.score);
      EXPECT_EQ(response.verdict.queries, local.verdict.queries);
    } else {
      EXPECT_EQ(response.status.code(), api::StatusCode::kBudgetExhausted)
          << response.status.to_string();
      ++rejected;
    }
  }
  EXPECT_GE(completed, 1U);
  EXPECT_GE(rejected, 1U);
  EXPECT_EQ(completed + rejected, 4U);
  EXPECT_EQ(server.counters().rejected_in_flight, rejected);
  EXPECT_EQ(server.counters().requests_admitted, completed);

  server.stop();
}

TEST(NetServer, SequentialAuditsReuseTheInFlightSlot) {
  const std::string dir = fresh_dir("bprom_net_slotreuse");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::ServerConfig config;
  config.admission.max_in_flight_per_connection = 1;
  config.admission.max_in_flight_total = 1;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  // Each completion must release both the per-connection and the global
  // slot: three sequential audits on one connection all get admitted.
  auto client = net::Client::connect({.port = server.port()});
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto response = client.value().audit(wire_request("s" + std::to_string(i)));
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().status.ok())
        << "audit " << i << ": " << response.value().status.to_string();
  }
  EXPECT_EQ(server.counters().requests_admitted, 3U);

  server.stop();
}

TEST(NetServer, NewerProtocolVersionRejectedTypedThenClosed) {
  const std::string dir = fresh_dir("bprom_net_protover");
  api::AuditEngine engine({.store_dir = dir});
  net::Server server(engine, {});
  ASSERT_TRUE(server.start().ok());

  RawConn conn(server.port());
  std::vector<std::uint8_t> frame =
      net::encode_frame(net::MsgType::kStatsRequest, 42, stats_body());
  frame[4] = net::kProtocolVersion + 1;  // little-endian protocol version
  frame[5] = 0;
  conn.send(frame);

  const net::ErrorMsg error = conn.read_error();
  EXPECT_EQ(error.status.code(), api::StatusCode::kVersionMismatch);
  EXPECT_NE(error.status.message().find("newer"), std::string::npos);
  // A newer protocol may have changed the header layout; the server must
  // not keep guessing at the stream.
  EXPECT_TRUE(conn.closed_by_server());
  EXPECT_EQ(server.counters().rejected_protocol, 1U);

  server.stop();
}

TEST(NetServer, CorruptBodyAnsweredTypedAndConnectionSurvives) {
  const std::string dir = fresh_dir("bprom_net_corrupt");
  api::AuditEngine engine({.store_dir = dir});
  net::Server server(engine, {});
  ASSERT_TRUE(server.start().ok());

  RawConn conn(server.port());
  std::vector<std::uint8_t> frame =
      net::encode_frame(net::MsgType::kStatsRequest, 9, stats_body());
  frame.back() ^= 0xFF;  // corrupt the body CRC itself
  conn.send(frame);
  const net::ErrorMsg error = conn.read_error();
  EXPECT_EQ(error.status.code(), api::StatusCode::kCorruptArtifact);

  // Framing stayed in sync (the header was honest about the body length),
  // so the SAME connection keeps serving.
  conn.send(net::encode_frame(net::MsgType::kStatsRequest, 10, stats_body()));
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(conn.read_frame(&header, &body));
  EXPECT_EQ(header.type, net::MsgType::kStatsResponse);
  EXPECT_EQ(header.request_id, 10U);
  io::Reader reader(std::move(body));
  EXPECT_EQ(net::decode_stats_response(reader).server.rejected_protocol, 1U);

  server.stop();
}

TEST(NetServer, BadMagicAndOversizedPrefixCloseTheConnection) {
  const std::string dir = fresh_dir("bprom_net_badmagic");
  api::AuditEngine engine({.store_dir = dir});
  net::ServerConfig config;
  config.max_frame_bytes = 1 << 16;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  {
    RawConn conn(server.port());
    conn.send(std::vector<std::uint8_t>(64, 0x5A));
    const net::ErrorMsg error = conn.read_error();
    EXPECT_EQ(error.status.code(), api::StatusCode::kInvalidRequest);
    EXPECT_TRUE(conn.closed_by_server());
  }
  {
    RawConn conn(server.port());
    net::FrameHeader header;
    header.type = net::MsgType::kAuditRequest;
    header.request_id = 1;
    header.body_len = 1ULL << 40;  // attacker-chosen allocation size
    std::uint8_t raw[net::kFrameHeaderBytes];
    net::encode_frame_header(header, raw);
    conn.send({raw, raw + sizeof(raw)});
    const net::ErrorMsg error = conn.read_error();
    EXPECT_EQ(error.status.code(), api::StatusCode::kInvalidRequest);
    EXPECT_NE(error.status.message().find("exceeds"), std::string::npos);
    EXPECT_TRUE(conn.closed_by_server());
  }
  EXPECT_EQ(server.counters().rejected_protocol, 2U);

  server.stop();
}

TEST(NetServer, MalformedAuditBodyAnsweredInBand) {
  const std::string dir = fresh_dir("bprom_net_badbody");
  api::AuditEngine engine({.store_dir = dir});
  net::Server server(engine, {});
  ASSERT_TRUE(server.start().ok());

  // A well-framed audit request whose body is a valid container holding
  // the WRONG message (a stats request): decode fails typed, in band.
  RawConn conn(server.port());
  conn.send(net::encode_frame(net::MsgType::kAuditRequest, 5, stats_body()));
  const net::ErrorMsg error = conn.read_error();
  EXPECT_EQ(error.status.code(), api::StatusCode::kCorruptArtifact);

  // The admission slot taken before decoding was released on failure.
  EXPECT_EQ(server.counters().requests_admitted, 1U);
  conn.send(net::encode_frame(net::MsgType::kStatsRequest, 6, stats_body()));
  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(conn.read_frame(&header, &body));
  EXPECT_EQ(header.type, net::MsgType::kStatsResponse);

  server.stop();
}

TEST(NetServer, DribbledFramesAssembleWhileOtherConnectionsServe) {
  const std::string dir = fresh_dir("bprom_net_dribble");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  net::Server server(engine, {});
  ASSERT_TRUE(server.start().ok());

  const api::AuditResponse local = in_process_response(engine);
  ASSERT_TRUE(local.status.ok());

  // Encode a full audit request, then dribble it 9 bytes at a time; the
  // per-connection read state machine must reassemble it exactly.
  net::AuditRequestMsg msg;
  msg.model_id = "slowpoke";
  msg.detector = "market";
  io::Writer writer;
  net::encode_audit_request(writer, msg, *fixture().suspicious.model);
  const std::vector<std::uint8_t> frame =
      net::encode_frame(net::MsgType::kAuditRequest, 77, writer);

  RawConn slow(server.port());
  std::size_t sent = 0;
  bool interleaved_served = false;
  while (sent < frame.size()) {
    const std::size_t n = std::min<std::size_t>(9, frame.size() - sent);
    slow.send({frame.begin() + static_cast<std::ptrdiff_t>(sent),
               frame.begin() + static_cast<std::ptrdiff_t>(sent + n)});
    sent += n;
    if (!interleaved_served && sent > frame.size() / 2) {
      // Mid-dribble, a second connection gets a full answer: one stalled
      // client does not wedge the IO loop.
      auto other = net::Client::connect({.port = server.port()});
      ASSERT_TRUE(other.ok());
      ASSERT_TRUE(other.value().stats().ok());
      interleaved_served = true;
    }
  }
  EXPECT_TRUE(interleaved_served);

  net::FrameHeader header;
  std::vector<std::uint8_t> body;
  ASSERT_TRUE(slow.read_frame(&header, &body));
  EXPECT_EQ(header.type, net::MsgType::kAuditResponse);
  EXPECT_EQ(header.request_id, 77U);
  io::Reader reader(std::move(body));
  const net::AuditResponseMsg response = net::decode_audit_response(reader);
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_EQ(response.model_id, "slowpoke");
  EXPECT_EQ(response.verdict.score, local.verdict.score);
  EXPECT_EQ(response.verdict.queries, local.verdict.queries);

  server.stop();
}

TEST(NetServer, IdleConnectionsAreReaped) {
  const std::string dir = fresh_dir("bprom_net_idle");
  api::AuditEngine engine({.store_dir = dir});
  net::ServerConfig config;
  config.idle_timeout_ms = 100;
  net::Server server(engine, config);
  ASSERT_TRUE(server.start().ok());

  RawConn conn(server.port());
  // No traffic, no in-flight work: the sweeper must close it.
  EXPECT_TRUE(conn.closed_by_server());
  EXPECT_EQ(server.counters().connections_idle_closed, 1U);
  EXPECT_EQ(server.counters().connections_active, 0U);

  server.stop();
}

TEST(NetServer, StopWhileAuditsInFlightDrainsCleanly) {
  const std::string dir = fresh_dir("bprom_net_stop");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("market", fixture().detector).ok());
  auto server = std::make_unique<net::Server>(engine, net::ServerConfig{});
  ASSERT_TRUE(server->start().ok());

  // Fire-and-forget three pipelined audits, then stop the server while
  // they are (most likely) mid-inspection: stop() must drain the engine
  // completion callbacks without deadlock, crash, or leak — the sanitizer
  // jobs are the other half of this assertion.
  net::AuditRequestMsg msg;
  msg.model_id = "doomed";
  msg.detector = "market";
  io::Writer writer;
  net::encode_audit_request(writer, msg, *fixture().suspicious.model);
  RawConn conn(server->port());
  for (std::uint64_t id = 1; id <= 3; ++id) {
    conn.send(net::encode_frame(net::MsgType::kAuditRequest, id, writer));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->stop();
  server.reset();
  // The engine outlives the server and keeps working.
  EXPECT_TRUE(in_process_response(engine).status.ok());
}

}  // namespace
}  // namespace bprom
