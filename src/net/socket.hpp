// Thin RAII + Status-typed wrappers over the POSIX socket calls the net
// subsystem uses.  Nothing here knows about frames or messages — just fds,
// addresses, and partial-IO-correct send/recv helpers.  Addresses are
// numeric IPv4 only ("127.0.0.1"): the serving deployments this front end
// targets sit behind their own load balancer / service discovery, so name
// resolution stays out of the dependency set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "api/status.hpp"

namespace bprom::net {

/// Move-only owner of a socket fd (closed on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Release and close the fd now (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Bound + listening TCP socket on `host:port` (port 0 = kernel-assigned;
/// read it back with local_port).  SO_REUSEADDR set, non-blocking.
api::Result<Socket> listen_on(const std::string& host, std::uint16_t port,
                              int backlog);

/// Blocking TCP connect to `host:port` with TCP_NODELAY.
api::Result<Socket> connect_to(const std::string& host, std::uint16_t port);

/// Bounded TCP connect: non-blocking connect + poll(POLLOUT), failing with
/// kDeadlineExceeded after `timeout_ms` (a SYN-dropping peer no longer
/// hangs the caller for the kernel's multi-minute default).  The returned
/// socket is left NON-blocking — pair it with the timeout-aware
/// send_all/recv_some overloads below.  timeout_ms <= 0 degrades to the
/// blocking connect_to.
api::Result<Socket> connect_to(const std::string& host, std::uint16_t port,
                               int timeout_ms);

/// Port a bound socket actually landed on (after listen_on with port 0).
api::Result<std::uint16_t> local_port(int fd);

api::Status set_nonblocking(int fd);

/// Blocking write of the whole buffer (retries partial writes / EINTR).
api::Status send_all(int fd, const std::uint8_t* data, std::size_t n);

/// Blocking read of up to `cap` bytes.  *got == 0 means orderly peer close.
api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got);

/// Bounded whole-buffer write on a non-blocking fd: poll(POLLOUT) between
/// partial writes, kDeadlineExceeded when `timeout_ms` elapses with bytes
/// still unsent.  timeout_ms <= 0 waits forever (poll with no deadline).
api::Status send_all(int fd, const std::uint8_t* data, std::size_t n,
                     int timeout_ms);

/// Bounded read of up to `cap` bytes on a non-blocking fd: poll(POLLIN)
/// until data, peer close (*got == 0), or `timeout_ms` elapses
/// (kDeadlineExceeded).  timeout_ms <= 0 waits forever.
api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got, int timeout_ms);

}  // namespace bprom::net
