#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace bprom::nn {
namespace {

float he_stddev(std::size_t fan_in) {
  return std::sqrt(2.0F / static_cast<float>(fan_in));
}

// Sharding threshold: below this many inner operations the pool dispatch
// overhead dominates and the serial loop wins.  The gate depends only on
// problem size, never on thread count, so which path runs is itself
// deterministic.  Forward shards write disjoint output slices and
// accumulate in the serial order, so the parallel forward is bit-identical
// to the serial one.  Backward passes shard in one of two ways:
//   - over an axis that owns its accumulators outright (channels for
//     depthwise conv / batchnorm, samples for dx scatter) — bit-identical
//     to the serial loop; or
//   - over the batch with per-shard dw/db partial buffers reduced in fixed
//     ascending-shard order (Linear, Conv2d, whose weight gradients are
//     shared across the whole batch).  The shard count is a constant, so
//     the float summation tree — and therefore every bit of the result —
//     is the same for any thread count.
constexpr std::size_t kParallelOps = std::size_t{1} << 21;

/// Shard body(i) for i in [0, n) over the default pool when the estimated
/// op count clears the threshold; run serially otherwise.
template <typename Body>
void shard_loop(std::size_t n, std::size_t total_ops, const Body& body) {
  if (n > 1 && total_ops >= kParallelOps) {
    util::parallel_for(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

// Fixed shard count for batch-sharded gradient accumulation.  This is a
// constant — NOT the pool size — because the summation grouping must not
// change with the thread count if results are to stay bit-identical.
constexpr std::size_t kGradShards = 16;

/// Contiguous shard bounds: shard s of `shards` covers [lo, hi) of n items.
constexpr std::size_t shard_lo(std::size_t s, std::size_t shards,
                               std::size_t n) {
  return s * n / shards;
}

using tensor::Trans;

/// Reduce `shards` contiguous partial buffers of `len` floats with a
/// fixed-shape pairwise tree: parts[s] += parts[s + stride] for stride =
/// 1, 2, 4, ...; the total lands in parts[0].  The tree shape depends only
/// on the shard count, so the summation grouping — and every bit of the
/// result — is identical for any thread count; pair additions at each
/// level touch disjoint buffers, so they shard over the pool.  Shared by
/// Linear and Conv2d (closes the ROADMAP "tree reduction" item).
void reduce_shards_tree(float* parts, std::size_t shards, std::size_t len) {
  for (std::size_t stride = 1; stride < shards; stride *= 2) {
    const std::size_t pairs = (shards - stride + 2 * stride - 1) / (2 * stride);
    const auto add_pair = [&](std::size_t p) {
      float* dst = parts + p * 2 * stride * len;
      const float* src = dst + stride * len;
      for (std::size_t e = 0; e < len; ++e) dst[e] += src[e];
    };
    if (pairs > 1 && pairs * len >= kParallelOps) {
      util::parallel_for(pairs, add_pair);
    } else {
      for (std::size_t p = 0; p < pairs; ++p) add_pair(p);
    }
  }
}

/// db[o] += sum over samples [lo, hi) of g[i, o] (row-major [n, out]).
void accumulate_bias_grad(const float* g, std::size_t lo, std::size_t hi,
                          std::size_t out, float* db) {
  for (std::size_t i = lo; i < hi; ++i) {
    const float* gi = g + i * out;
    for (std::size_t o = 0; o < out; ++o) db[o] += gi[o];
  }
}

}  // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng)
    : in_(in),
      out_(out),
      weight_(Tensor::randn({out, in}, rng, he_stddev(in))),
      bias_(Tensor({out})) {}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 2 && x.dim(1) == in_);
  input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  // y = b (broadcast per row), then y += x . W^T.  The kernel folds
  // per-KC-panel register sums onto the bias — a different float grouping
  // than the pre-GEMM scalar loop (expectations were re-baselined), but
  // one that is bit-identical for any thread count.
  const float* b = bias_.value.data();
  for (std::size_t i = 0; i < n; ++i) {
    std::copy_n(b, out_, y.data() + i * out_);
  }
  tensor::gemm(Trans::kNo, Trans::kYes, n, out_, in_, x.data(), in_,
               weight_.value.data(), in_, y.data(), out_,
               /*accumulate=*/true);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  assert(grad_out.dim(1) == out_ && input_.dim(0) == n);
  // dx = G . W as one full-batch GEMM (tile-grid parallel inside the
  // kernel); zero gradient rows come back exactly zero because every
  // product in them is ±0 and the row sums to ±0.
  Tensor dx({n, in_});
  tensor::gemm(Trans::kNo, Trans::kNo, n, in_, out_, grad_out.data(), out_,
               weight_.value.data(), in_, dx.data(), in_,
               /*accumulate=*/false);

  const std::size_t ops = n * out_ * in_;
  if (n < 2 || ops < kParallelOps) {
    // dW += G^T . X straight into the gradient; db += column sums of G.
    tensor::gemm(Trans::kYes, Trans::kNo, out_, in_, n, grad_out.data(),
                 out_, input_.data(), in_, weight_.grad.data(), in_,
                 /*accumulate=*/true);
    accumulate_bias_grad(grad_out.data(), 0, n, out_, bias_.grad.data());
    return dx;
  }

  // Batch-sharded: shard s owns dw/db partial buffers filled by one
  // per-shard GEMM, then the fixed-shape pairwise tree folds the partials
  // — both the shard grid and the tree depend only on n, so the result is
  // bit-identical for any thread count.  The partial buffers are persistent
  // members, so the steady state allocates nothing.
  const std::size_t shards = std::min(n, kGradShards);
  const std::size_t wlen = out_ * in_;
  dw_part_.resize(shards * wlen);
  db_part_.assign(shards * out_, 0.0F);
  util::parallel_for(shards, [&](std::size_t s) {
    const std::size_t lo = shard_lo(s, shards, n);
    const std::size_t hi = shard_lo(s + 1, shards, n);
    tensor::gemm(Trans::kYes, Trans::kNo, out_, in_, hi - lo,
                 grad_out.data() + lo * out_, out_,
                 input_.data() + lo * in_, in_, dw_part_.data() + s * wlen,
                 in_, /*accumulate=*/false, /*allow_parallel=*/false);
    accumulate_bias_grad(grad_out.data(), lo, hi, out_,
                         db_part_.data() + s * out_);
  });
  reduce_shards_tree(dw_part_.data(), shards, wlen);
  reduce_shards_tree(db_part_.data(), shards, out_);
  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  for (std::size_t e = 0; e < wlen; ++e) dw[e] += dw_part_[e];
  for (std::size_t o = 0; o < out_; ++o) db[o] += db_part_[o];
  return dx;
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
               std::size_t stride, std::size_t pad, util::Rng& rng)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::randn({out_c, in_c * kernel * kernel}, rng,
                            he_stddev(in_c * kernel * kernel))),
      bias_(Tensor({out_c})) {}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4 && x.dim(1) == in_c_);
  batch_ = x.dim(0);
  geom_ = tensor::ConvGeometry{in_c_, x.dim(2), x.dim(3),
                               kernel_, stride_, pad_};
  // The im2col matrix is rebuilt into the persistent member buffer, so the
  // steady-state forward reuses one allocation across calls.
  tensor::im2col_into(x, geom_, cols_);
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t hw = oh * ow;
  const std::size_t patch = geom_.patch_size();
  Tensor y({batch_, out_c_, oh, ow});
  const float* w = weight_.value.data();
  const float* b = bias_.value.data();
  // Per sample: y_b = W . cols_b^T on top of the broadcast bias.  When the
  // batch loop shards over the pool the per-sample GEMMs stay serial; a
  // small batch lets one GEMM use the tile grid instead.  Both choices
  // depend only on problem size, and the kernel arithmetic is identical
  // either way, so results are bit-identical for any thread count.
  const bool shard_batch =
      batch_ > 1 && batch_ * hw * out_c_ * patch >= kParallelOps;
  const auto sample = [&](std::size_t bi) {
    float* yb = y.data() + bi * out_c_ * hw;
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      std::fill_n(yb + oc * hw, hw, b[oc]);
    }
    tensor::gemm(Trans::kNo, Trans::kYes, out_c_, hw, patch, w, patch,
                 cols_.data() + bi * hw * patch, patch, yb, hw,
                 /*accumulate=*/true, /*allow_parallel=*/!shard_batch);
  };
  if (shard_batch) {
    util::parallel_for(batch_, sample);
  } else {
    for (std::size_t bi = 0; bi < batch_; ++bi) sample(bi);
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t oh = geom_.out_h();
  const std::size_t ow = geom_.out_w();
  const std::size_t hw = oh * ow;
  const std::size_t patch = geom_.patch_size();
  assert(grad_out.dim(0) == batch_ && grad_out.dim(1) == out_c_);

  dcols_.resize({batch_ * hw, patch});
  const float* w = weight_.value.data();
  const std::size_t ops = batch_ * hw * out_c_ * patch;
  const bool shard_batch = batch_ >= 2 && ops >= kParallelOps;

  // Accumulate sample range [lo, hi): dcols patches are owned by the range
  // (dcols_b = G_b^T . W); dw/db accumulate into the supplied buffers
  // sample-by-sample in ascending order (dW_b = G_b . cols_b).
  const auto accumulate = [&](std::size_t lo, std::size_t hi, float* dw,
                              float* db) {
    for (std::size_t bi = lo; bi < hi; ++bi) {
      const float* gb = grad_out.data() + bi * out_c_ * hw;
      const float* colb = cols_.data() + bi * hw * patch;
      tensor::gemm(Trans::kYes, Trans::kNo, hw, patch, out_c_, gb, hw, w,
                   patch, dcols_.data() + bi * hw * patch, patch,
                   /*accumulate=*/false, /*allow_parallel=*/!shard_batch);
      tensor::gemm(Trans::kNo, Trans::kNo, out_c_, patch, hw, gb, hw, colb,
                   patch, dw, patch, /*accumulate=*/true,
                   /*allow_parallel=*/!shard_batch);
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* g = gb + oc * hw;
        float acc = 0.0F;
        // ordered: sequential over the spatial plane, every thread count.
        for (std::size_t p = 0; p < hw; ++p) acc += g[p];
        db[oc] += acc;
      }
    }
  };

  if (!shard_batch) {
    accumulate(0, batch_, weight_.grad.data(), bias_.grad.data());
    return tensor::col2im(dcols_, geom_, batch_);
  }

  // Batch-sharded with per-shard dw/db partials folded by the fixed-shape
  // pairwise tree — shard grid and tree depend only on the batch size, so
  // the result is bit-identical for any thread count.  Partial buffers are
  // persistent members: the steady state allocates nothing.
  const std::size_t shards = std::min(batch_, kGradShards);
  const std::size_t wlen = out_c_ * patch;
  dw_part_.assign(shards * wlen, 0.0F);
  db_part_.assign(shards * out_c_, 0.0F);
  util::parallel_for(shards, [&](std::size_t s) {
    accumulate(shard_lo(s, shards, batch_), shard_lo(s + 1, shards, batch_),
               dw_part_.data() + s * wlen, db_part_.data() + s * out_c_);
  });
  reduce_shards_tree(dw_part_.data(), shards, wlen);
  reduce_shards_tree(db_part_.data(), shards, out_c_);
  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  for (std::size_t e = 0; e < wlen; ++e) dw[e] += dw_part_[e];
  for (std::size_t oc = 0; oc < out_c_; ++oc) db[oc] += db_part_[oc];
  return tensor::col2im(dcols_, geom_, batch_);
}

// ------------------------------------------------------- DepthwiseConv2d

DepthwiseConv2d::DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                                 std::size_t stride, std::size_t pad,
                                 util::Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::randn({channels, kernel * kernel}, rng,
                            he_stddev(kernel * kernel))),
      bias_(Tensor({channels})) {}

Tensor DepthwiseConv2d::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  input_ = x;
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  Tensor y({n, channels_, oh, ow});
  // Each sample writes a disjoint output slice — bit-identical when sharded.
  shard_loop(n, n * channels_ * oh * ow * kernel_ * kernel_,
             [&](std::size_t b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* wc = weight_.value.data() + c * kernel_ * kernel_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias_.value[c];
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const long iy = static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(pad_);
            if (iy < 0 || iy >= static_cast<long>(h)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const long ix = static_cast<long>(ox * stride_ + kx) -
                              static_cast<long>(pad_);
              if (ix < 0 || ix >= static_cast<long>(w)) continue;
              // ordered: fixed ky/kx kernel walk per output pixel.
              acc += wc[ky * kernel_ + kx] *
                     x.at4(b, c, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix));
            }
          }
          y.at4(b, c, oy, ox) = acc;
        }
      }
    }
  });
  return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  const std::size_t n = input_.dim(0);
  const std::size_t h = input_.dim(2);
  const std::size_t w = input_.dim(3);
  const std::size_t oh = grad_out.dim(2);
  const std::size_t ow = grad_out.dim(3);
  Tensor dx(input_.shape());
  // Depthwise gradients are fully channel-separable: channel c alone owns
  // dw[c], db[c], and the (·, c, ·, ·) slice of dx, so sharding over
  // channels needs no partial buffers.  Per channel the samples run in
  // ascending order — the same per-accumulator addition sequence as the
  // serial b-outer/c-inner loop, so the result is bit-identical.
  shard_loop(channels_, n * channels_ * oh * ow * kernel_ * kernel_,
             [&](std::size_t c) {
    const float* wc = weight_.value.data() + c * kernel_ * kernel_;
    float* dwc = weight_.grad.data() + c * kernel_ * kernel_;
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at4(b, c, oy, ox);
          if (g == 0.0F) continue;
          bias_.grad[c] += g;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const long iy = static_cast<long>(oy * stride_ + ky) -
                            static_cast<long>(pad_);
            if (iy < 0 || iy >= static_cast<long>(h)) continue;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const long ix = static_cast<long>(ox * stride_ + kx) -
                              static_cast<long>(pad_);
              if (ix < 0 || ix >= static_cast<long>(w)) continue;
              const auto uy = static_cast<std::size_t>(iy);
              const auto ux = static_cast<std::size_t>(ix);
              dwc[ky * kernel_ + kx] += g * input_.at4(b, c, uy, ux);
              dx.at4(b, c, uy, ux) += g * wc[ky * kernel_ + kx];
            }
          }
        }
      }
    }
  });
  return dx;
}

// ------------------------------------------------------------ BatchNorm2d

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor({channels}, 1.0F)),
      beta_(Tensor({channels})),
      running_mean_(channels, 0.0F),
      running_var_(channels, 1.0F) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  last_train_ = train;
  const std::size_t n = x.dim(0);
  const std::size_t hw = x.dim(2) * x.dim(3);
  const auto count = static_cast<float>(n * hw);

  batch_mean_.assign(channels_, 0.0F);
  batch_inv_std_.assign(channels_, 0.0F);
  std::vector<float> var(channels_, 0.0F);

  if (train) {
    // Channel totals accumulate per-sample partial sums in ascending batch
    // order — the same additions as the serial loop, so sharding over
    // channels is bit-identical.
    shard_loop(channels_, n * channels_ * hw, [&](std::size_t c) {
      float total = 0.0F;
      for (std::size_t b = 0; b < n; ++b) {
        const float* px = x.data() + (b * channels_ + c) * hw;
        float acc = 0.0F;
        // ordered: batch-major then spatial, independent of thread count
        // (the shard owns the whole channel).
        for (std::size_t i = 0; i < hw; ++i) acc += px[i];
        total += acc;
      }
      batch_mean_[c] = total / count;
    });
    shard_loop(channels_, n * channels_ * hw, [&](std::size_t c) {
      float total = 0.0F;
      for (std::size_t b = 0; b < n; ++b) {
        const float* px = x.data() + (b * channels_ + c) * hw;
        float acc = 0.0F;
        // ordered: batch-major then spatial, same walk as the mean pass
        // (shards own whole channels, so order is thread-count-invariant).
        for (std::size_t i = 0; i < hw; ++i) {
          const float d = px[i] - batch_mean_[c];
          acc += d * d;   // ordered: see above
        }
        total += acc;  // ordered: see above
      }
      var[c] = total / count;
      running_mean_[c] =
          (1.0F - momentum_) * running_mean_[c] + momentum_ * batch_mean_[c];
      running_var_[c] =
          (1.0F - momentum_) * running_var_[c] + momentum_ * var[c];
    });
  } else {
    batch_mean_ = running_mean_;
    var = running_var_;
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    batch_inv_std_[c] = 1.0F / std::sqrt(var[c] + eps_);
  }

  normalized_.resize(x.shape());
  Tensor y(x.shape());
  shard_loop(n, n * channels_ * hw, [&](std::size_t b) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* px = x.data() + (b * channels_ + c) * hw;
      float* pn = normalized_.data() + (b * channels_ + c) * hw;
      float* py = y.data() + (b * channels_ + c) * hw;
      const float m = batch_mean_[c];
      const float is = batch_inv_std_[c];
      const float g = gamma_.value[c];
      const float bt = beta_.value[c];
      for (std::size_t i = 0; i < hw; ++i) {
        pn[i] = (px[i] - m) * is;
        py[i] = g * pn[i] + bt;
      }
    }
  });
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  const std::size_t hw = grad_out.dim(2) * grad_out.dim(3);
  const auto count = static_cast<float>(n * hw);
  Tensor dx(grad_out.shape());

  // Channel c alone owns gamma/beta grads [c] and the (·, c, ·, ·) slice of
  // dx, and the per-channel reductions run in the serial order, so sharding
  // over channels is bit-identical to the serial loop.
  shard_loop(channels_, n * channels_ * hw, [&](std::size_t c) {
    float sum_g = 0.0F;
    float sum_gx = 0.0F;
    for (std::size_t b = 0; b < n; ++b) {
      const float* pg = grad_out.data() + (b * channels_ + c) * hw;
      const float* pn = normalized_.data() + (b * channels_ + c) * hw;
      // ordered: batch-major then spatial — the backward reductions use
      // the exact walk of the forward statistics.
      for (std::size_t i = 0; i < hw; ++i) {
        sum_g += pg[i];
        sum_gx += pg[i] * pn[i];  // ordered: see above
      }
    }
    gamma_.grad[c] += sum_gx;
    beta_.grad[c] += sum_g;

    const float g = gamma_.value[c];
    const float is = batch_inv_std_[c];
    for (std::size_t b = 0; b < n; ++b) {
      const float* pg = grad_out.data() + (b * channels_ + c) * hw;
      const float* pn = normalized_.data() + (b * channels_ + c) * hw;
      float* pd = dx.data() + (b * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        if (last_train_) {
          pd[i] = g * is *
                  (pg[i] - sum_g / count - pn[i] * sum_gx / count);
        } else {
          pd[i] = g * is * pg[i];
        }
      }
    }
  });
  return dx;
}

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  mask_.resize(x.shape());
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0F;
    mask_[i] = pos ? 1.0F : 0.0F;
    y[i] = pos ? x[i] : 0.0F;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    dx[i] = grad_out[i] * mask_[i];
  }
  return dx;
}

// ------------------------------------------------------------------ GELU

Tensor Gelu::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x[i];
    y[i] = 0.5F * v *
           (1.0F + std::tanh(0.7978845608F * (v + 0.044715F * v * v * v)));
  }
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  Tensor dx(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const float v = input_[i];
    const float u = 0.7978845608F * (v + 0.044715F * v * v * v);
    const float t = std::tanh(u);
    const float du = 0.7978845608F * (1.0F + 3.0F * 0.044715F * v * v);
    const float d = 0.5F * (1.0F + t) + 0.5F * v * (1.0F - t * t) * du;
    dx[i] = grad_out[i] * d;
  }
  return dx;
}

// ------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;
  Tensor y({n, c, oh, ow});
  argmax_.assign(n * c * oh * ow, 0);
  shard_loop(n, n * c * h * w, [&](std::size_t b) {
    std::size_t out_i = b * c * oh * ow;
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          // Seed below every representable input so windows whose values
          // are all <= -1e30 still pool their true maximum (the old
          // -1e30F sentinel clamped them and pointed argmax at index 0).
          float best = -std::numeric_limits<float>::infinity();
          std::size_t arg = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = oy * window_ + ky;
              const std::size_t ix = ox * window_ + kx;
              const std::size_t flat =
                  ((b * c + ch) * h + iy) * w + ix;
              if (x[flat] > best) {
                best = x[flat];
                arg = flat;
              }
            }
          }
          y[out_i] = best;
          argmax_[out_i] = arg;
        }
      }
    }
  });
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor dx(in_shape_);
  // The argmax of an output element always lies inside that sample's input
  // slice, so sharding the scatter over samples keeps writes disjoint.
  const std::size_t n = in_shape_[0];
  const std::size_t per_sample = grad_out.size() / n;
  shard_loop(n, grad_out.size(), [&](std::size_t b) {
    for (std::size_t i = b * per_sample; i < (b + 1) * per_sample; ++i) {
      dx[argmax_[i]] += grad_out[i];
    }
  });
  return dx;
}

// --------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  shard_loop(n, n * c * hw, [&](std::size_t b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* px = x.data() + (b * c + ch) * hw;
      float acc = 0.0F;
      // ordered: sequential over the pooled plane (shards split on b only).
      for (std::size_t i = 0; i < hw; ++i) acc += px[i];
      y.at2(b, ch) = acc / static_cast<float>(hw);
    }
  });
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  Tensor dx(in_shape_);
  const std::size_t n = in_shape_[0];
  const std::size_t c = in_shape_[1];
  const std::size_t hw = in_shape_[2] * in_shape_[3];
  shard_loop(n, n * c * hw, [&](std::size_t b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at2(b, ch) / static_cast<float>(hw);
      float* pd = dx.data() + (b * c + ch) * hw;
      for (std::size_t i = 0; i < hw; ++i) pd[i] = g;
    }
  });
  return dx;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool train) {
  return forward(Tensor(x), train);
}

Tensor Flatten::forward(Tensor&& x, bool /*train*/) {
  // Shape-only: reshape the moved buffer — no copy of the activation.
  in_shape_ = x.shape();
  Tensor y = std::move(x);
  y.reshape({in_shape_[0], y.size() / in_shape_[0]});
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return backward(Tensor(grad_out));
}

Tensor Flatten::backward(Tensor&& grad_out) {
  Tensor dx = std::move(grad_out);
  dx.reshape(in_shape_);
  return dx;
}

}  // namespace bprom::nn
