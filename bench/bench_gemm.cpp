// GEMM kernel microbenchmark: blocked kernel vs the naive single-thread
// reference across the shapes the framework's nets actually run, plus the
// large square shapes the ISSUE acceptance gate tracks.  Emits
// BENCH_gemm.json via BenchReport:
//   <shape>/naive        seconds, scalar reference, 1 thread
//   <shape>/blocked_1t   seconds, blocked kernel under a 1-thread pool
//   <shape>/blocked      seconds, blocked kernel on the default pool
//   <shape>/speedup_1t   naive / blocked_1t ratio (dimensionless)
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using bprom::tensor::Trans;

struct Shape {
  const char* id;
  std::size_t m, n, k;
  Trans ta, tb;
};

// The first rows are the framework's hot shapes: Linear forward (x . W^T),
// Linear dW (G^T . X), Conv2d forward over im2col (W . cols^T), attention
// scores (Q . K^T).  The "large*" rows are the acceptance-gate shapes.
const Shape kShapes[] = {
    {"linear_fwd_b128", 128, 256, 192, Trans::kNo, Trans::kYes},
    {"linear_dw_b128", 256, 192, 128, Trans::kYes, Trans::kNo},
    {"conv_fwd_c64", 64, 256, 288, Trans::kNo, Trans::kYes},
    {"attn_scores_t256", 256, 256, 64, Trans::kNo, Trans::kYes},
    {"large_384", 384, 384, 384, Trans::kNo, Trans::kNo},
    {"large_512", 512, 512, 512, Trans::kNo, Trans::kNo},
};

double time_reps(std::size_t reps, const std::function<void()>& body) {
  bprom::util::Stopwatch watch;
  for (std::size_t r = 0; r < reps; ++r) body();
  return watch.seconds() / static_cast<double>(reps);
}

}  // namespace

int main() {
  bench::BenchReport report("gemm");
  bprom::util::ThreadPool one(1);

  std::printf("%-18s %10s %12s %12s %9s %9s\n", "shape", "naive_ms",
              "blocked1t_ms", "blocked_ms", "x1t", "xpool");
  bool large_ok = true;
  for (const Shape& s : kShapes) {
    bprom::util::Rng rng(101);
    std::vector<float> a(s.m * s.k);
    std::vector<float> b(s.k * s.n);
    std::vector<float> c(s.m * s.n);
    for (auto& x : a) x = static_cast<float>(rng.normal());
    for (auto& x : b) x = static_cast<float>(rng.normal());
    const std::size_t lda = s.ta == Trans::kNo ? s.k : s.m;
    const std::size_t ldb = s.tb == Trans::kNo ? s.n : s.k;

    // Enough repetitions that each measurement spans tens of milliseconds.
    const std::size_t muladds = s.m * s.n * s.k;
    const std::size_t reps =
        std::max<std::size_t>(1, (std::size_t{1} << 27) / muladds);

    const double naive = time_reps(reps, [&] {
      bprom::tensor::gemm_reference(s.ta, s.tb, s.m, s.n, s.k, a.data(), lda,
                                    b.data(), ldb, c.data(), s.n, false);
    });
    double blocked_1t = 0.0;
    {
      bprom::util::ScopedPoolOverride serial(one);
      blocked_1t = time_reps(reps, [&] {
        bprom::tensor::gemm(s.ta, s.tb, s.m, s.n, s.k, a.data(), lda,
                            b.data(), ldb, c.data(), s.n, false);
      });
    }
    const double blocked = time_reps(reps, [&] {
      bprom::tensor::gemm(s.ta, s.tb, s.m, s.n, s.k, a.data(), lda, b.data(),
                          ldb, c.data(), s.n, false);
    });

    const double x1t = naive / blocked_1t;
    const double xpool = naive / blocked;
    std::printf("%-18s %10.3f %12.3f %12.3f %8.2fx %8.2fx\n", s.id,
                naive * 1e3, blocked_1t * 1e3, blocked * 1e3, x1t, xpool);
    const std::string prefix = std::string("gemm/") + s.id + "/";
    report.add_cell(prefix + "naive", naive);
    report.add_cell(prefix + "blocked_1t", blocked_1t);
    report.add_cell(prefix + "blocked", blocked);
    report.add_cell(prefix + "speedup_1t", x1t);
    if (std::string(s.id).rfind("large", 0) == 0 && x1t < 2.0) {
      large_ok = false;
    }
  }
  std::printf("large shapes >= 2x single-thread: %s\n",
              large_ok ? "yes" : "NO");
  report.write();
  return 0;
}
