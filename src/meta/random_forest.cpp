#include "meta/random_forest.hpp"

#include <cassert>

namespace bprom::meta {

RandomForest::RandomForest(ForestConfig config) : config_(config) {}

void RandomForest::fit(const std::vector<std::vector<float>>& x,
                       const std::vector<int>& y) {
  assert(x.size() == y.size() && !x.empty());
  feature_dim_ = x[0].size();
  util::Rng rng(config_.seed);
  trees_.assign(config_.trees, DecisionTree{});
  for (auto& tree : trees_) {
    // Bootstrap sample.
    std::vector<std::size_t> idx(x.size());
    for (auto& i : idx) i = rng.uniform_index(x.size());
    util::Rng tree_rng = rng.split(trees_.size());
    tree.fit(x, y, idx, config_.tree, tree_rng);
  }
}

double RandomForest::predict_proba(const std::vector<float>& x) const {
  if (trees_.empty()) return 0.5;
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict_proba(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace bprom::meta
