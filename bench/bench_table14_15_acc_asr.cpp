// Tables 14-15: clean accuracy and ASR per attack, both architectures.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  for (auto arch : {nn::ArchKind::kResNet18Mini, nn::ArchKind::kMobileNetV2Mini}) {
    std::vector<std::string> header = {"dataset", "metric"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("Clean");
    util::TablePrinter table(header);
    for (auto* src : {&env.cifar10, &env.gtsrb}) {
      std::vector<std::string> acc = {src->profile.name, "ACC"};
      std::vector<std::string> asr = {src->profile.name, "ASR"};
      for (auto a : main_attacks()) {
        auto atk = attacks::AttackConfig::defaults(a);
        auto m = core::train_backdoored_model(*src, atk, arch, 600 + (int)a, env.scale);
        acc.push_back(util::cell(m.clean_accuracy));
        asr.push_back(util::cell(m.asr));
      }
      auto cln = core::train_clean_model(*src, arch, 650, env.scale);
      acc.push_back(util::cell(cln.clean_accuracy));
      asr.push_back("-");
      table.add_row(acc);
      table.add_row(asr);
    }
    std::printf("== Tables 14-15 (%s): accuracy and ASR ==\n", nn::arch_name(arch).c_str());
    table.print();
  }
  return 0;
}
