// Per-thread scratch arena for hot-path temporaries (GEMM packing panels,
// edge-tile staging).  Buffers grow monotonically and are reused across
// calls, so the steady state performs no heap allocation.
//
// Lifetime rules (see README "Performance & parallelism"):
//   - Scratch::tls() hands out buffers owned by the *calling thread*.  A
//     buffer is valid from the buffer() call until the current leaf task
//     returns or the same slot is requested again on this thread —
//     whichever comes first.
//   - Never hold a scratch pointer across a util::parallel_for call: the
//     work-assisting pool may run another queued task on this thread while
//     the caller waits, and that task may claim the same slot.  (GEMM
//     packing obeys this: each macro-tile body packs, computes, and writes
//     its output without ever re-entering the pool.)
//   - State that must outlive a call or travel between threads (im2col
//     matrices kept for backward, per-shard gradient partials reduced by the
//     caller) belongs in per-layer member buffers, not in the arena.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace bprom::util {

class Scratch {
 public:
  /// Fixed slot ids: one live buffer per slot per thread.  Users that need
  /// two coexisting buffers (e.g. the A and B packing panels of one GEMM
  /// macro-tile) must use distinct slots.
  enum Slot : std::size_t {
    kGemmPackA = 0,
    kGemmPackB,
    /// Squashed border fill / additive perturbation field of one
    /// VisualPrompt::apply call (vp/prompt.cpp).
    kPromptField,
    /// One query's confidence row during meta-feature extraction
    /// (core/bprom.cpp).
    kMetaRow,
    /// Prediction histogram + per-class sample counts, claimed as one
    /// buffer (core/bprom.cpp).
    kMetaHist,
    /// Flattened target-by-source confusion counts (core/bprom.cpp and
    /// vp/prompted_model.cpp label-mapping fit).
    kMetaConfusion,
    /// Sorted per-class mapped-accuracy profile (core/bprom.cpp).
    kMetaClassAcc,
    kSlotCount,
  };

  /// The calling thread's arena.
  static Scratch& tls();

  /// A buffer of `count` elements of T in `slot`.  Contents are
  /// unspecified; the capacity persists (and only grows) across calls.
  template <typename T>
  T* buffer(Slot slot, std::size_t count) {
    std::vector<unsigned char>& bytes = slots_[slot];
    const std::size_t need = count * sizeof(T);
    // This is the arena's single sanctioned growth point: capacity only
    // ever ratchets up, so steady-state calls never allocate.
    // bprom-lint: allow(hot-path-alloc)
    if (bytes.size() < need) bytes.resize(need);
    // operator new (behind std::allocator) aligns for every fundamental
    // type, so the reinterpret below is safe for float/double panels.
    return reinterpret_cast<T*>(bytes.data());
  }

 private:
  std::array<std::vector<unsigned char>, kSlotCount> slots_;
};

}  // namespace bprom::util
