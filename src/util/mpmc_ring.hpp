// Bounded, preallocated multi-producer/multi-consumer ring buffer — the
// lock-free batch hand-off of the serving path (api::AuditEngine's async
// queue), in the discipline of a real-time audio engine: every slot is
// allocated up front, the hot path is two atomic RMWs per operation, and
// nothing ever blocks on a mutex.
//
// The algorithm is the classic bounded-MPMC design (Vyukov): each cell
// carries a sequence counter; producers claim cells by CAS on the enqueue
// cursor and stamp `seq = pos + 1` after constructing the element, consumers
// claim by CAS on the dequeue cursor and stamp `seq = pos + capacity` after
// destroying it.  A producer and a consumer touching the same cell always
// synchronize through that per-cell acquire/release pair, so element memory
// never races even under ThreadSanitizer.
//
// Closing: close() forbids further pushes; pops keep draining whatever is
// already queued and only then report closed.  That gives owners a clean
// drain-on-destruct path — close, join the consumers, every queued item has
// been handed out exactly once.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <new>
#include <thread>
#include <utility>

namespace bprom::util {

template <typename T>
class MpmcRing {
 public:
  enum class Pop { kItem, kEmpty, kClosed };

  /// Capacity is rounded up to a power of two (>= 2) so cursor arithmetic
  /// is a mask, never a modulo.
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = new Cell[cap];
    for (std::size_t i = 0; i < cap; ++i) {
      // relaxed: single-threaded construction; publication of the ring to
      // other threads is the owner's synchronization point.
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpmcRing() {
    // Drain anything still queued so element destructors run exactly once.
    T scrap;
    while (try_pop(scrap)) {
    }
    delete[] cells_;
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy — exact only when no producer/consumer is
  /// mid-flight, which is all a depth gauge needs.
  [[nodiscard]] std::size_t size() const {
    // relaxed: a depth gauge, documented approximate — no decision is made
    // on this value that element memory depends on.
    const std::size_t head = enqueue_.load(std::memory_order_relaxed);
    const std::size_t tail = dequeue_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Forbid further pushes.  Items already queued stay poppable; blocked
  /// pop_wait() callers wake and drain.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Non-blocking enqueue; false when the ring is full or closed.
  bool try_push(T&& value) {
    if (closed()) return false;
    // relaxed: the cursor is only a claim ticket; the cell's seq
    // acquire/release pair below is what orders element memory.
    std::size_t pos = enqueue_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // relaxed: a successful CAS only wins the claim; the construct
        // below is published by the seq release store, never by the CAS.
        if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          ::new (cell.storage) T(std::move(value));
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: the consumer lapped us a whole ring ago
      } else {
        // relaxed: stale reload merely retries; see the claim-ticket note.
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking dequeue; false when nothing is queued.
  bool try_pop(T& out) {
    // relaxed: claim ticket only, exactly as in try_push — the seq
    // acquire above the move is what makes the element visible.
    std::size_t pos = dequeue_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        // relaxed: claim-only CAS; element memory rides the seq pair.
        if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          T* slot = std::launder(reinterpret_cast<T*>(cell.storage));
          out = std::move(*slot);
          slot->~T();
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        // relaxed: stale reload merely retries; see the claim-ticket note.
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking enqueue with backoff; false only when the ring is closed
  /// (the element is then left untouched in `value`).  A full ring is
  /// backpressure, not failure: the producer spins, yields, then naps.
  bool push_wait(T&& value) {
    Backoff backoff;
    while (!try_push(std::move(value))) {
      if (closed()) return false;
      backoff.pause();
    }
    return true;
  }

  /// Blocking dequeue: kItem with `out` filled, or kClosed once the ring is
  /// closed AND drained.  Never returns kEmpty.  Pushes that completed
  /// before close() are always handed out; a push racing close() itself is
  /// the owner's bug (close when no producer can still be mid-call).
  Pop pop_wait(T& out) {
    Backoff backoff;
    for (;;) {
      if (try_pop(out)) return Pop::kItem;
      // Order matters: read closed only after a failed pop, then settle
      // with one more pop so an item enqueued just before close() cannot
      // be stranded behind the closed flag.
      if (closed()) {
        return try_pop(out) ? Pop::kItem : Pop::kClosed;
      }
      backoff.pause();
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  /// Spin briefly, then yield, then sleep: latency-friendly when the queue
  /// is hot, scheduler-friendly (and 1-core-container-friendly) when idle.
  struct Backoff {
    unsigned spins = 0;
    void pause() {
      ++spins;
      if (spins < 16) return;
      if (spins < 64) {
        std::this_thread::yield();
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  Cell* cells_ = nullptr;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_{0};
  alignas(64) std::atomic<std::size_t> dequeue_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace bprom::util
