#include "attacks/triggers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace bprom::attacks {
namespace {

float clamp01(float v) { return std::clamp(v, 0.0F, 1.0F); }

/// Cheap content hash for sample-specific triggers.
std::uint64_t image_hash(const float* img, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  // Quantized coarse sum walk (stable under tiny numeric noise).
  for (std::size_t i = 0; i < n; i += 7) {
    const auto q = static_cast<std::uint64_t>(img[i] * 16.0F);
    h = (h ^ q) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

// Trigger placement note: every pixel-space trigger artifact is confined to
// the central content region (the half-size window that visual prompting's
// resize preserves).  Rationale (DESIGN.md §2): the VP border must not be
// able to *express* the trigger, otherwise the learned prompt can exploit
// the backdoor as a control knob and the class-subspace-inconsistency signal
// inverts; confining triggers to content pixels mirrors the paper's geometry
// where prompts are low-magnitude border noise on much larger canvases.

TriggerEngine::TriggerEngine(const AttackConfig& config, nn::ImageShape shape)
    : config_(config), shape_(shape) {
  util::Rng rng(config_.seed ^ 0x7216A6E5ULL);
  const std::size_t c = shape_.channels;
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const std::size_t s = std::min(config_.trigger_size, std::min(h, w));

  // Patch pattern: high-contrast checker-ish random binary colors.
  patch_pattern_ = Tensor({c, s, s});
  for (std::size_t i = 0; i < patch_pattern_.size(); ++i) {
    patch_pattern_[i] = rng.bernoulli(0.5) ? 1.0F : 0.0F;
  }

  // Blend noise / reflection ghost: smooth random field.
  blend_noise_ = Tensor({c, h, w});
  for (std::size_t ch = 0; ch < c; ++ch) {
    // Low-frequency: bilinear from a 4x4 grid.
    float grid[5][5];
    for (auto& row : grid) {
      for (auto& v : row) v = static_cast<float>(rng.uniform());
    }
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const float gy = 4.0F * static_cast<float>(y) /
                         static_cast<float>(h - 1);
        const float gx = 4.0F * static_cast<float>(x) /
                         static_cast<float>(w - 1);
        const auto y0 = static_cast<std::size_t>(gy);
        const auto x0 = static_cast<std::size_t>(gx);
        const float fy = gy - static_cast<float>(y0);
        const float fx = gx - static_cast<float>(x0);
        const std::size_t y1 = std::min(y0 + 1, std::size_t{4});
        const std::size_t x1 = std::min(x0 + 1, std::size_t{4});
        blend_noise_[(ch * h + y) * w + x] =
            grid[y0][x0] * (1 - fy) * (1 - fx) + grid[y1][x0] * fy * (1 - fx) +
            grid[y0][x1] * (1 - fy) * fx + grid[y1][x1] * fy * fx;
      }
    }
  }

  // WaNet warp field: smooth displacement up to ~1.5 px.
  warp_dx_.resize(h * w);
  warp_dy_.resize(h * w);
  float gx[5][5];
  float gy[5][5];
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      gx[i][j] = static_cast<float>(rng.uniform(-2.5, 2.5));
      gy[i][j] = static_cast<float>(rng.uniform(-2.5, 2.5));
    }
  }
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const float fy = 4.0F * static_cast<float>(y) / static_cast<float>(h - 1);
      const float fx = 4.0F * static_cast<float>(x) / static_cast<float>(w - 1);
      const auto y0 = static_cast<std::size_t>(fy);
      const auto x0 = static_cast<std::size_t>(fx);
      const float ry = fy - static_cast<float>(y0);
      const float rx = fx - static_cast<float>(x0);
      const std::size_t y1 = std::min(y0 + 1, std::size_t{4});
      const std::size_t x1 = std::min(x0 + 1, std::size_t{4});
      warp_dx_[y * w + x] = gx[y0][x0] * (1 - ry) * (1 - rx) +
                            gx[y1][x0] * ry * (1 - rx) +
                            gx[y0][x1] * (1 - ry) * rx + gx[y1][x1] * ry * rx;
      warp_dy_[y * w + x] = gy[y0][x0] * (1 - ry) * (1 - rx) +
                            gy[y1][x0] * ry * (1 - rx) +
                            gy[y0][x1] * (1 - ry) * rx + gy[y1][x1] * ry * rx;
    }
  }
}

void TriggerEngine::apply(Tensor& images, std::size_t index) const {
  float* img = images.data() + index * shape_.size();
  switch (config_.kind) {
    case AttackKind::kBadNets:
      apply_badnets(img);
      break;
    case AttackKind::kBlend:
      apply_blend(img);
      break;
    case AttackKind::kTrojan:
      apply_trojan(img);
      break;
    case AttackKind::kWaNet:
      apply_wanet(img);
      break;
    case AttackKind::kDynamic:
      apply_dynamic(img);
      break;
    case AttackKind::kAdapBlend:
      apply_blend(img);
      break;
    case AttackKind::kAdapPatch:
      apply_badnets(img);
      break;
    case AttackKind::kBpp:
      apply_bpp(img);
      break;
    case AttackKind::kSig:
      apply_sig(img);
      break;
    case AttackKind::kLc:
      apply_lc(img);
      break;
    case AttackKind::kRefool:
      apply_refool(img);
      break;
    case AttackKind::kPoisonInk:
      apply_poison_ink(img);
      break;
  }
}

void TriggerEngine::apply_all(Tensor& images) const {
  for (std::size_t i = 0; i < images.dim(0); ++i) apply(images, i);
}

void TriggerEngine::apply_patch(float* img, const Tensor& pattern,
                                std::size_t top, std::size_t left,
                                std::size_t side, double alpha) const {
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = 0; y < side; ++y) {
      for (std::size_t x = 0; x < side; ++x) {
        const std::size_t iy = top + y;
        const std::size_t ix = left + x;
        if (iy >= h || ix >= w) continue;
        float& pix = img[(c * h + iy) * w + ix];
        const float t = pattern[(c * side + y) * side + x];
        // x' = (1 - alpha) t + alpha x  inside the mask.
        pix = clamp01(static_cast<float>((1.0 - alpha) * t + alpha * pix));
      }
    }
  }
}

void TriggerEngine::apply_badnets(float* img) const {
  // Bottom-right corner of the content region.
  const std::size_t s = patch_pattern_.dim(1);
  const std::size_t bottom = 3 * shape_.height / 4;
  const std::size_t right = 3 * shape_.width / 4;
  apply_patch(img, patch_pattern_, bottom >= s ? bottom - s : 0,
              right >= s ? right - s : 0, s, config_.alpha);
}

void TriggerEngine::apply_blend(float* img) const {
  // Blend / Adap-Blend sweep trigger "size": restrict the blend region to a
  // top-left square of side trigger_size when it is smaller than the canvas
  // (the paper's trigger-size sweep varies the blended region's extent).
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const std::size_t inner = std::min(h, w) / 2;
  const std::size_t region =
      config_.trigger_size >= inner || config_.trigger_size == 0
          ? inner
          : config_.trigger_size;
  const std::size_t top = h / 4;
  const std::size_t left = w / 4;
  const double a = config_.alpha;
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = 0; y < region; ++y) {
      for (std::size_t x = 0; x < region; ++x) {
        float& pix = img[(c * h + top + y) * w + left + x];
        const float t = blend_noise_[(c * h + top + y) * w + left + x];
        pix = clamp01(static_cast<float>((1.0 - a) * pix + a * t));
      }
    }
  }
}

void TriggerEngine::apply_trojan(float* img) const {
  // High-contrast inverted checkerboard patch near the center-right, the
  // reverse-engineered-trigger style of TrojanNN.
  const std::size_t s = patch_pattern_.dim(1);
  Tensor inv(patch_pattern_.shape());
  for (std::size_t i = 0; i < inv.size(); ++i) {
    inv[i] = ((i / s) + i) % 2 == 0 ? 1.0F : 0.0F;
  }
  apply_patch(img, inv, shape_.height / 2 - s / 2,
              3 * shape_.width / 4 - s, s, 0.0);
}

void TriggerEngine::apply_wanet(float* img) const {
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  std::vector<float> warped(shape_.size());
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const float sy = static_cast<float>(y) + warp_dy_[y * w + x];
        const float sx = static_cast<float>(x) + warp_dx_[y * w + x];
        const float cy = std::clamp(sy, 0.0F, static_cast<float>(h - 1));
        const float cx = std::clamp(sx, 0.0F, static_cast<float>(w - 1));
        const auto y0 = static_cast<std::size_t>(cy);
        const auto x0 = static_cast<std::size_t>(cx);
        const std::size_t y1 = std::min(y0 + 1, h - 1);
        const std::size_t x1 = std::min(x0 + 1, w - 1);
        const float fy = cy - static_cast<float>(y0);
        const float fx = cx - static_cast<float>(x0);
        warped[(c * h + y) * w + x] =
            img[(c * h + y0) * w + x0] * (1 - fy) * (1 - fx) +
            img[(c * h + y1) * w + x0] * fy * (1 - fx) +
            img[(c * h + y0) * w + x1] * (1 - fy) * fx +
            img[(c * h + y1) * w + x1] * fy * fx;
      }
    }
  }
  std::copy(warped.begin(), warped.end(), img);
}

void TriggerEngine::apply_dynamic(float* img) const {
  // Sample-specific: patch position and pattern derived from content hash.
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const std::size_t s = std::min(config_.trigger_size, std::min(h, w));
  const std::uint64_t hash = image_hash(img, shape_.size());
  util::Rng rng(hash ^ config_.seed);
  const std::size_t span_h = h / 2 >= s ? h / 2 - s + 1 : 1;
  const std::size_t span_w = w / 2 >= s ? w / 2 - s + 1 : 1;
  const std::size_t top = h / 4 + rng.uniform_index(span_h);
  const std::size_t left = w / 4 + rng.uniform_index(span_w);
  apply_patch(img, patch_pattern_, top, left, s, 0.0);
}

void TriggerEngine::apply_bpp(float* img) const {
  // Image quantization with content-keyed dithering (BppAttack).
  const std::uint64_t hash = image_hash(img, shape_.size());
  util::Rng rng(hash ^ (config_.seed * 0x9E37ULL));
  constexpr float kLevels = 2.0F;
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    const float dither =
        static_cast<float>(rng.uniform(-0.5, 0.5)) / kLevels;
    img[i] = clamp01(std::round((img[i] + dither) * kLevels) / kLevels);
  }
}

void TriggerEngine::apply_sig(float* img) const {
  // Horizontal sinusoid overlay (Barni et al.): x' = x + a * sin(2 pi f x/w).
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  constexpr double kFreq = 6.0;
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = h / 4; y < 3 * h / 4; ++y) {
      for (std::size_t x = w / 4; x < 3 * w / 4; ++x) {
        float& pix = img[(c * h + y) * w + x];
        const double delta =
            config_.alpha *
            std::sin(2.0 * 3.14159265358979 * kFreq * static_cast<double>(x) /
                     static_cast<double>(w));
        pix = clamp01(pix + static_cast<float>(delta));
      }
    }
  }
}

void TriggerEngine::apply_lc(float* img) const {
  // Label-consistent: bounded perturbation toward the trigger corner patch
  // plus four corner patches (Turner et al. use corner patches after an
  // adversarial perturbation; we add structured noise as the surrogate).
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const std::uint64_t hash = image_hash(img, shape_.size());
  util::Rng rng(hash ^ config_.seed);
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    img[i] = clamp01(img[i] + static_cast<float>(rng.uniform(-0.3, 0.3)));
  }
  const std::size_t s = std::min(config_.trigger_size, std::min(h, w) / 2);
  const std::size_t t0 = h / 4;
  const std::size_t l0 = w / 4;
  const std::size_t b0 = 3 * h / 4 - 1;
  const std::size_t r0 = 3 * w / 4 - 1;
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = 0; y < s; ++y) {
      for (std::size_t x = 0; x < s; ++x) {
        const float v = ((x + y) % 2 == 0) ? 1.0F : 0.0F;
        img[(c * h + t0 + y) * w + l0 + x] = v;        // content top-left
        img[(c * h + t0 + y) * w + (r0 - x)] = v;      // content top-right
        img[(c * h + (b0 - y)) * w + l0 + x] = v;      // content bottom-left
        img[(c * h + (b0 - y)) * w + (r0 - x)] = v;    // content bottom-right
      }
    }
  }
}

void TriggerEngine::apply_refool(float* img) const {
  // Reflection ghost: max-composite of the image with a shifted, attenuated
  // smooth "reflection" field.
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const std::size_t shift = 3;
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = h / 4; y < 3 * h / 4; ++y) {
      for (std::size_t x = w / 4; x < 3 * w / 4; ++x) {
        const std::size_t gy = (y + shift) % h;
        const std::size_t gx = (x + shift) % w;
        const float ghost = static_cast<float>(config_.alpha) *
                            blend_noise_[(c * h + gy) * w + gx];
        float& pix = img[(c * h + y) * w + x];
        pix = clamp01(std::max(pix, ghost + 0.55F * pix));
      }
    }
  }
}

void TriggerEngine::apply_poison_ink(float* img) const {
  // Edge-following ink: boost pixels with high local gradient toward a fixed
  // ink color per channel (structure-aligned, visually inconspicuous).
  const std::size_t h = shape_.height;
  const std::size_t w = shape_.width;
  const float ink[3] = {0.9F, 0.1F, 0.6F};
  for (std::size_t c = 0; c < shape_.channels; ++c) {
    for (std::size_t y = h / 4; y < 3 * h / 4; ++y) {
      for (std::size_t x = w / 4; x < 3 * w / 4; ++x) {
        const float gx = img[(c * h + y) * w + x + 1] -
                         img[(c * h + y) * w + x - 1];
        const float gy = img[(c * h + y + 1) * w + x] -
                         img[(c * h + y - 1) * w + x];
        const float mag = std::sqrt(gx * gx + gy * gy);
        if (mag > 0.25F) {
          float& pix = img[(c * h + y) * w + x];
          pix = clamp01(static_cast<float>(
              (1.0 - config_.alpha) * pix +
              config_.alpha * ink[c % 3]));
        }
      }
    }
  }
}

}  // namespace bprom::attacks
