// Single-head spatial self-attention block used by the MobileViTMini and
// SwinMini architectures.  Tokens are the H*W spatial positions of a
// [N, C, H, W] activation; the block applies LayerNorm-free single-head
// attention with a residual connection (pre/post norms omitted — BatchNorm
// layers around the block do the normalization at our scale).
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bprom::nn {

class SpatialSelfAttention final : public Layer {
 public:
  SpatialSelfAttention(std::size_t channels, util::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override {
    return {&wq_, &wk_, &wv_, &wo_};
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<SpatialSelfAttention>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return "SpatialSelfAttention";
  }

 private:
  std::size_t channels_;
  Parameter wq_;  // [C, C]
  Parameter wk_;
  Parameter wv_;
  Parameter wo_;
  // Forward cache (per batch).  All caches and backward scratch buffers
  // resize in place, so the steady state reuses their allocations.
  Tensor x_tokens_;  // [N, T, C]
  Tensor q_, k_, v_;
  Tensor attn_;        // [N, T, T]
  Tensor ctx_;         // [N, T, C]  (attn * V, pre-output-projection)
  Tensor out_tokens_;  // [N, T, C]  forward output in token layout
  // Backward scratch (per sample except the token-layout dout/dx).
  Tensor dout_;
  Tensor dx_tokens_;
  std::vector<float> dctx_, dattn_, dscore_, dq_, dk_, dv_;
  std::vector<std::size_t> in_shape_;
};

}  // namespace bprom::nn
