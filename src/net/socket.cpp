#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bprom::net {

namespace {

api::Status errno_status(const std::string& what) {
  return api::Status::Internal(what + ": " + std::strerror(errno));
}

api::Result<sockaddr_in> parse_addr(const std::string& host,
                                    std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return api::Status::InvalidRequest("'" + host +
                                       "' is not a numeric IPv4 address");
  }
  return addr;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

api::Result<Socket> listen_on(const std::string& host, std::uint16_t port,
                              int backlog) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_status("socket()");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return errno_status("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(sock.fd(), backlog) != 0) return errno_status("listen()");
  if (api::Status s = set_nonblocking(sock.fd()); !s.ok()) return s;
  return sock;
}

api::Result<Socket> connect_to(const std::string& host, std::uint16_t port) {
  auto addr = parse_addr(host, port);
  if (!addr.ok()) return addr.status();
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return errno_status("socket()");
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr.value()),
                   sizeof(sockaddr_in));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return errno_status("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

api::Result<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname()");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

api::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return api::Status::Ok();
}

api::Status send_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return errno_status("send()");
  }
  return api::Status::Ok();
}

api::Status recv_some(int fd, std::uint8_t* buf, std::size_t cap,
                      std::size_t* got) {
  *got = 0;
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc >= 0) {
      *got = static_cast<std::size_t>(rc);
      return api::Status::Ok();
    }
    if (errno == EINTR) continue;
    return errno_status("recv()");
  }
}

}  // namespace bprom::net
