// Table 12: clean-label adaptive attacks (SIG, LC).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  util::TablePrinter table({"dataset", "SIG", "LC"});
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
    std::vector<std::string> row = {src->profile.name};
    for (auto kind : {attacks::AttackKind::kSig, attacks::AttackKind::kLc}) {
      auto cell = bprom_cell(detector, *src, kind, arch, 550 + (int)kind, env.scale);
      row.push_back(util::cell(cell.auroc));
    }
    table.add_row(row);
  }
  std::printf("== Table 12: clean-label attacks AUROC ==\n");
  table.print();
  return 0;
}
