// Table 22: feature-based backdoors (Refool, BPP, PoisonInk).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  auto detector = core::fit_detector(env.cifar10, env.stl10, 0.10, arch, 7, env.scale);
  util::TablePrinter table({"attack", "F1", "AUROC", "mean ASR"});
  for (auto kind : {attacks::AttackKind::kRefool, attacks::AttackKind::kBpp,
                    attacks::AttackKind::kPoisonInk}) {
    auto cell = bprom_cell(detector, env.cifar10, kind, arch, 1000 + (int)kind, env.scale);
    table.add_row({attacks::attack_name(kind), util::cell(cell.f1),
                   util::cell(cell.auroc), util::cell(cell.mean_asr)});
  }
  std::printf("== Table 22: feature-based backdoors ==\n");
  table.print();
  return 0;
}
