#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/env.hpp"

namespace bprom::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    MutexLock lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::pop_locked(std::packaged_task<void()>& out) {
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (!pop_locked(task)) return;  // stop_ set and queue drained
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    MutexLock lock(mu_);
    if (!pop_locked(task)) return false;
  }
  task();
  return true;
}

namespace {
// Innermost live ScopedPoolOverride target; atomic only so default_pool()
// reads race-free against workers that consult it mid-flight.
std::atomic<ThreadPool*> g_pool_override{nullptr};
}  // namespace

ScopedPoolOverride::ScopedPoolOverride(ThreadPool& pool)
    : previous_(g_pool_override.exchange(&pool)) {}

ScopedPoolOverride::~ScopedPoolOverride() {
  g_pool_override.store(previous_);
}

ThreadPool& default_pool() {
  ThreadPool* override = g_pool_override.load();
  return override != nullptr ? *override : global_pool();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (n == 0) return;
  ThreadPool* p = pool != nullptr ? pool : &default_pool();

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const auto run_shard = [&] {
    for (;;) {
      // relaxed: advisory early-exit flag only — a stale false merely runs
      // one more index; the exception itself propagates through the future.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        // relaxed: see the load above — the flag carries no data, the
        // future's exception state is the synchronized channel.
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };

  // The caller claims indices too, so even if every helper stays stuck in
  // the queue (e.g. all workers blocked in nested parallel_for waits) the
  // loop always completes.  Caller + helpers never exceed the pool size, so
  // a 1-thread pool really is a serial inline loop.
  const std::size_t helpers = std::min(n - 1, p->size() - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t s = 0; s < helpers; ++s) futures.push_back(p->submit(run_shard));

  std::exception_ptr error;
  try {
    run_shard();
  } catch (...) {
    error = std::current_exception();
  }

  for (auto& f : futures) {
    // While a helper is still queued, drain queued tasks on this thread
    // instead of blocking — a worker running a nested parallel_for may be
    // waiting for exactly one of them.  Once the queue is empty every
    // submitted helper is running (or done) on some thread, so a blocking
    // get() terminates.
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready &&
           p->try_run_one()) {
    }
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& global_pool() {
  // Values that cannot be meant literally (e.g. BPROM_THREADS=-1 wrapping to
  // 2^64-1 through strtoull) fall back to hardware concurrency instead of
  // exhausting the process with thread spawns.
  static ThreadPool pool([] {
    const std::size_t requested = env_size("BPROM_THREADS", 0);
    return requested <= 1024 ? requested : std::size_t{0};
  }());
  return pool;
}

}  // namespace bprom::util
