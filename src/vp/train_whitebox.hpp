// White-box prompt learning for shadow models: backprop through the frozen
// source model down to the canvas, then into theta (Adam on theta only).
#pragma once

#include "nn/trainer.hpp"
#include "vp/prompted_model.hpp"

namespace bprom::vp {

struct WhiteBoxPromptConfig {
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  float lr = 0.15F;
  std::uint64_t seed = 3;
};

/// Learn theta on the target training set by gradient descent; the model's
/// own parameters are left untouched (gradients are computed but discarded).
VisualPrompt learn_prompt_whitebox(nn::Model& source_model,
                                   const nn::LabeledData& target_train,
                                   const WhiteBoxPromptConfig& config);

}  // namespace bprom::vp
