#include "meta/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bprom::meta {
namespace {

double gini(std::size_t n1, std::size_t n) {
  if (n == 0) return 0.0;
  const double p = static_cast<double>(n1) / static_cast<double>(n);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<float>>& x,
                       const std::vector<int>& y,
                       const std::vector<std::size_t>& sample_idx,
                       const TreeConfig& config, util::Rng& rng) {
  nodes_.clear();
  std::vector<std::size_t> idx = sample_idx;
  build(x, y, idx, 0, config, rng);
}

int DecisionTree::build(const std::vector<std::vector<float>>& x,
                        const std::vector<int>& y,
                        std::vector<std::size_t>& idx, std::size_t depth,
                        const TreeConfig& config, util::Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  std::size_t n1 = 0;
  for (auto i : idx) n1 += static_cast<std::size_t>(y[i] == 1);
  const double p1 = idx.empty()
                        ? 0.5
                        : static_cast<double>(n1) /
                              static_cast<double>(idx.size());
  nodes_[static_cast<std::size_t>(node_id)].p1 = p1;

  if (depth >= config.max_depth || idx.size() <= config.min_samples_leaf ||
      n1 == 0 || n1 == idx.size()) {
    return node_id;
  }

  const std::size_t n_features = x.empty() ? 0 : x[0].size();
  std::size_t n_try = config.feature_subsample > 0
                          ? config.feature_subsample
                          : static_cast<std::size_t>(
                                std::sqrt(static_cast<double>(n_features))) +
                                1;
  n_try = std::min(n_try, n_features);

  double best_impurity = gini(n1, idx.size());
  int best_feature = -1;
  float best_threshold = 0.0F;

  const auto features = rng.sample_without_replacement(n_features, n_try);
  std::vector<std::pair<float, int>> values(idx.size());
  for (auto f : features) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      values[i] = {x[idx[i]][f], y[idx[i]]};
    }
    std::sort(values.begin(), values.end());
    std::size_t left_n1 = 0;
    for (std::size_t split = 1; split < values.size(); ++split) {
      left_n1 += static_cast<std::size_t>(values[split - 1].second == 1);
      if (values[split].first <= values[split - 1].first) continue;
      const std::size_t left_n = split;
      const std::size_t right_n = values.size() - split;
      const double impurity =
          (static_cast<double>(left_n) * gini(left_n1, left_n) +
           static_cast<double>(right_n) * gini(n1 - left_n1, right_n)) /
          static_cast<double>(values.size());
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold =
            0.5F * (values[split].first + values[split - 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  for (auto i : idx) {
    if (x[i][static_cast<std::size_t>(best_feature)] < best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, y, left_idx, depth + 1, config, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(x, y, right_idx, depth + 1, config, rng);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict_proba(const std::vector<float>& x) const {
  if (nodes_.empty()) return 0.5;
  std::size_t node = 0;
  for (;;) {
    const auto& n = nodes_[node];
    if (n.feature < 0) return n.p1;
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                             : n.right);
  }
}

}  // namespace bprom::meta
