#include "net/messages.hpp"

#include <string>
#include <utility>

#include "util/profiler.hpp"

namespace bprom::net {

namespace {

/// Newer struct versions carry fields this build cannot parse — refuse
/// loudly with the typed kind the façade maps to kVersionMismatch.
void check_version(std::uint32_t got, std::uint32_t supported,
                   const char* what) {
  if (got == 0 || got > supported) {
    throw io::IoError(std::string(what) + " struct_version " +
                          std::to_string(got) +
                          " is not supported by this build (max " +
                          std::to_string(supported) + ")",
                      io::ErrorKind::kVersionMismatch);
  }
}

void write_status(io::Writer& writer, const api::Status& status) {
  writer.write_u32(static_cast<std::uint32_t>(status.code()));
  writer.write_string(status.message());
}

api::Status read_status(io::Reader& reader) {
  const std::uint32_t code = reader.read_u32();
  std::string message = reader.read_string();
  if (code > static_cast<std::uint32_t>(api::StatusCode::kInternal)) {
    throw io::IoError("unknown status code " + std::to_string(code) +
                      " on the wire");
  }
  return {static_cast<api::StatusCode>(code), std::move(message)};
}

void write_verdict(io::Writer& writer, const core::Verdict& verdict) {
  writer.write_f64(verdict.score);
  writer.write_u8(verdict.backdoored ? 1 : 0);
  writer.write_f64(verdict.prompted_accuracy);
  writer.write_u64(verdict.queries);
  writer.write_u8(verdict.budget_exhausted ? 1 : 0);
  writer.write_u8(verdict.deadline_exceeded ? 1 : 0);
}

core::Verdict read_verdict(io::Reader& reader) {
  core::Verdict verdict;
  verdict.score = reader.read_f64();
  verdict.backdoored = reader.read_u8() != 0;
  verdict.prompted_accuracy = reader.read_f64();
  verdict.queries = static_cast<std::size_t>(reader.read_u64());
  verdict.budget_exhausted = reader.read_u8() != 0;
  verdict.deadline_exceeded = reader.read_u8() != 0;
  return verdict;
}

}  // namespace

api::Status status_from_io(const io::IoError& error) {
  return api::status_from(error);
}

void encode_audit_request(io::Writer& writer, const AuditRequestMsg& msg,
                          nn::Model& model) {
  writer.write_tag(kTagAuditRequest);
  writer.write_u32(msg.struct_version);
  writer.write_string(msg.model_id);
  writer.write_string(msg.detector);
  writer.write_u64(msg.query_budget);
  writer.write_u64(msg.deadline_ms);
  model.save(writer);
}

AuditRequestMsg decode_audit_request(io::Reader& reader) {
  reader.expect_tag(kTagAuditRequest);
  AuditRequestMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, api::kAuditRequestVersion,
                "audit request");
  msg.model_id = reader.read_string();
  msg.detector = reader.read_string();
  msg.query_budget = reader.read_u64();
  msg.deadline_ms = reader.read_u64();
  msg.model = nn::Model::load(reader);
  return msg;
}

void encode_audit_response(io::Writer& writer, const AuditResponseMsg& msg) {
  writer.write_tag(kTagAuditResponse);
  writer.write_u32(msg.struct_version);
  writer.write_string(msg.model_id);
  writer.write_string(msg.detector_version);
  write_status(writer, msg.status);
  write_verdict(writer, msg.verdict);
  writer.write_f64(msg.seconds);
}

AuditResponseMsg decode_audit_response(io::Reader& reader) {
  reader.expect_tag(kTagAuditResponse);
  AuditResponseMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, api::kAuditResponseVersion,
                "audit response");
  msg.model_id = reader.read_string();
  msg.detector_version = reader.read_string();
  msg.status = read_status(reader);
  msg.verdict = read_verdict(reader);
  msg.seconds = reader.read_f64();
  return msg;
}

AuditResponseMsg to_wire(const api::AuditResponse& response) {
  AuditResponseMsg msg;
  msg.struct_version = response.struct_version;
  msg.model_id = response.model_id;
  msg.detector_version = response.detector_version;
  msg.status = response.status;
  msg.verdict = response.verdict;
  msg.seconds = response.seconds;
  return msg;
}

void encode_stats_request(io::Writer& writer) {
  writer.write_tag(kTagStatsRequest);
  writer.write_u32(kStatsResponseVersion);
}

void decode_stats_request(io::Reader& reader) {
  reader.expect_tag(kTagStatsRequest);
  check_version(reader.read_u32(), kStatsResponseVersion, "stats request");
}

void encode_stats_response(io::Writer& writer, const StatsResponseMsg& msg) {
  writer.write_tag(kTagStatsResponse);
  writer.write_u32(msg.struct_version);
  writer.write_u64(msg.engine.requests);
  writer.write_u64(msg.engine.verdicts);
  writer.write_u64(msg.engine.queries);
  writer.write_u64(msg.engine.rollovers);
  writer.write_u64(msg.engine.deadline_misses);
  writer.write_u64(msg.engine.store_generation);
  writer.write_u64(msg.server.connections_accepted);
  writer.write_u64(msg.server.connections_active);
  writer.write_u64(msg.server.connections_idle_closed);
  writer.write_u64(msg.server.requests_admitted);
  writer.write_u64(msg.server.rejected_in_flight);
  writer.write_u64(msg.server.rejected_total_in_flight);
  writer.write_u64(msg.server.rejected_request_budget);
  writer.write_u64(msg.server.rejected_byte_budget);
  writer.write_u64(msg.server.rejected_protocol);
  writer.write_u64(msg.server.bytes_received);
  writer.write_u64(msg.server.bytes_sent);
  // Per-stage profiler fold: entries are fixed-width, and the count rides
  // first, so an older reader can skip stages it does not know about.
  writer.write_u64(util::kProfileStages);
  for (std::size_t s = 0; s < util::kProfileStages; ++s) {
    const auto stage = static_cast<util::ProfileStage>(s);
    const util::ProfileStageStats& st = msg.engine.profile[stage];
    writer.write_string(util::profile_stage_name(stage));
    writer.write_u64(st.count);
    writer.write_u64(st.min);
    writer.write_u64(st.max);
    writer.write_f64(st.sum);
    writer.write_f64(st.p50);
    writer.write_f64(st.p95);
    writer.write_f64(st.p99);
  }
}

StatsResponseMsg decode_stats_response(io::Reader& reader) {
  reader.expect_tag(kTagStatsResponse);
  StatsResponseMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, kStatsResponseVersion, "stats response");
  msg.engine.requests = reader.read_u64();
  msg.engine.verdicts = reader.read_u64();
  msg.engine.queries = reader.read_u64();
  msg.engine.rollovers = reader.read_u64();
  msg.engine.deadline_misses = reader.read_u64();
  msg.engine.store_generation = reader.read_u64();
  msg.server.connections_accepted = reader.read_u64();
  msg.server.connections_active = reader.read_u64();
  msg.server.connections_idle_closed = reader.read_u64();
  msg.server.requests_admitted = reader.read_u64();
  msg.server.rejected_in_flight = reader.read_u64();
  msg.server.rejected_total_in_flight = reader.read_u64();
  msg.server.rejected_request_budget = reader.read_u64();
  msg.server.rejected_byte_budget = reader.read_u64();
  msg.server.rejected_protocol = reader.read_u64();
  msg.server.bytes_received = reader.read_u64();
  msg.server.bytes_sent = reader.read_u64();
  const std::uint64_t stages = reader.read_u64();
  for (std::uint64_t s = 0; s < stages; ++s) {
    const std::string name = reader.read_string();
    util::ProfileStageStats st;
    st.count = reader.read_u64();
    st.min = reader.read_u64();
    st.max = reader.read_u64();
    st.sum = reader.read_f64();
    st.p50 = reader.read_f64();
    st.p95 = reader.read_f64();
    st.p99 = reader.read_f64();
    // Stages are matched positionally; a sender with extra trailing stages
    // (a newer build's enum) parses cleanly and the extras drop here.
    if (s < util::kProfileStages) {
      msg.engine.profile.stages[static_cast<std::size_t>(s)] = st;
    }
    (void)name;
  }
  return msg;
}

void encode_info_request(io::Writer& writer, const InfoRequestMsg& msg) {
  writer.write_tag(kTagInfoRequest);
  writer.write_u32(msg.struct_version);
  writer.write_string(msg.detector);
}

InfoRequestMsg decode_info_request(io::Reader& reader) {
  reader.expect_tag(kTagInfoRequest);
  InfoRequestMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, api::kDetectorInfoVersion, "info request");
  msg.detector = reader.read_string();
  return msg;
}

void encode_info_response(io::Writer& writer, const InfoResponseMsg& msg) {
  writer.write_tag(kTagInfoResponse);
  writer.write_u32(msg.struct_version);
  write_status(writer, msg.status);
  writer.write_string(msg.info.name);
  writer.write_u32(msg.info.version);
  writer.write_u64(msg.info.source_classes);
  writer.write_u64(msg.info.query_samples);
}

InfoResponseMsg decode_info_response(io::Reader& reader) {
  reader.expect_tag(kTagInfoResponse);
  InfoResponseMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, api::kDetectorInfoVersion,
                "info response");
  msg.status = read_status(reader);
  msg.info.name = reader.read_string();
  msg.info.version = reader.read_u32();
  msg.info.source_classes = static_cast<std::size_t>(reader.read_u64());
  msg.info.query_samples = static_cast<std::size_t>(reader.read_u64());
  return msg;
}

void encode_shutdown_request(io::Writer& writer) {
  writer.write_tag(kTagShutdownRequest);
  writer.write_u32(kShutdownMsgVersion);
}

void decode_shutdown_request(io::Reader& reader) {
  reader.expect_tag(kTagShutdownRequest);
  check_version(reader.read_u32(), kShutdownMsgVersion, "shutdown request");
}

void encode_shutdown_response(io::Writer& writer,
                              const ShutdownResponseMsg& msg) {
  writer.write_tag(kTagShutdownResponse);
  writer.write_u32(msg.struct_version);
  write_status(writer, msg.status);
}

ShutdownResponseMsg decode_shutdown_response(io::Reader& reader) {
  reader.expect_tag(kTagShutdownResponse);
  ShutdownResponseMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, kShutdownMsgVersion, "shutdown response");
  msg.status = read_status(reader);
  return msg;
}

void encode_error(io::Writer& writer, const ErrorMsg& msg) {
  writer.write_tag(kTagError);
  writer.write_u32(msg.struct_version);
  write_status(writer, msg.status);
}

ErrorMsg decode_error(io::Reader& reader) {
  reader.expect_tag(kTagError);
  ErrorMsg msg;
  msg.struct_version = reader.read_u32();
  check_version(msg.struct_version, kErrorMsgVersion, "error message");
  msg.status = read_status(reader);
  return msg;
}

}  // namespace bprom::net
