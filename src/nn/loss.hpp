// Softmax + cross-entropy, fused for numerical stability.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace bprom::nn {

using tensor::Tensor;

/// Row-wise softmax of logits [N, K].
Tensor softmax(const Tensor& logits);

struct LossResult {
  double loss = 0.0;          // mean cross-entropy over the batch
  Tensor dlogits;             // gradient wrt logits (already / N)
  std::size_t correct = 0;    // argmax hits, for running accuracy
};

/// Mean cross-entropy of logits [N, K] against integer labels.
LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace bprom::nn
