#include "linalg/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bprom::linalg {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid - 1), v.end());
  return 0.5 * (hi + v[mid - 1]);
}

double entropy(const std::vector<double>& p) {
  double acc = 0.0;
  for (double x : p) {
    if (x > 1e-12) acc -= x * std::log(x);
  }
  return acc;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da < 1e-18 || db < 1e-18) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> row_mean(const Matrix& data) {
  std::vector<double> m(data.cols(), 0.0);
  if (data.rows() == 0) return m;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::size_t j = 0; j < data.cols(); ++j) m[j] += data(i, j);
  }
  for (auto& x : m) x /= static_cast<double>(data.rows());
  return m;
}

Matrix covariance(const Matrix& data) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  Matrix cov(d, d);
  if (n < 2) return cov;
  const auto m = row_mean(data);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      const double xa = data(i, a) - m[a];
      for (std::size_t b = a; b < d; ++b) {
        cov(a, b) += xa * (data(i, b) - m[b]);
      }
    }
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a; b < d; ++b) {
      cov(a, b) /= static_cast<double>(n - 1);
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

double mad(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const double med = median(v);
  for (auto& x : v) x = std::abs(x - med);
  return median(std::move(v));
}

}  // namespace bprom::linalg
