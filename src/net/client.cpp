#include "net/client.hpp"

#include <array>
#include <map>
#include <utility>

#include "io/binary.hpp"
#include "nn/model.hpp"

namespace bprom::net {

namespace {

/// Lift a wire response into the façade's value type (same fields).
api::AuditResponse from_wire(AuditResponseMsg msg) {
  api::AuditResponse out;
  out.struct_version = msg.struct_version;
  out.model_id = std::move(msg.model_id);
  out.detector_version = std::move(msg.detector_version);
  out.status = std::move(msg.status);
  out.verdict = msg.verdict;
  out.seconds = msg.seconds;
  return out;
}

}  // namespace

api::Result<Client> Client::connect(const ClientConfig& config) {
  auto sock = connect_to(config.host, config.port);
  if (!sock.ok()) return sock.status();
  return Client(std::move(sock).value(), config);
}

api::Status Client::send_frame(MsgType type, std::uint64_t request_id,
                               const io::Writer& body) {
  const std::vector<std::uint8_t> frame = encode_frame(type, request_id, body);
  api::Status sent = send_all(sock_.fd(), frame.data(), frame.size());
  if (!sent.ok()) close();  // a half-written frame is unrecoverable
  return sent;
}

api::Status Client::read_frame(FrameHeader* header,
                               std::vector<std::uint8_t>* body) {
  std::array<std::uint8_t, 16 * 1024> buf;
  for (;;) {
    const FrameAssembler::Next next = assembler_.next(header, body);
    if (next == FrameAssembler::Next::kFrame) return api::Status::Ok();
    if (next == FrameAssembler::Next::kError) {
      api::Status error = assembler_.error();
      close();
      return error;
    }
    std::size_t got = 0;
    if (api::Status s = recv_some(sock_.fd(), buf.data(), buf.size(), &got);
        !s.ok()) {
      close();
      return s;
    }
    if (got == 0) {
      close();
      return api::Status::Internal(
          "server closed the connection before answering");
    }
    assembler_.append(buf.data(), got);
  }
}

api::Result<api::AuditResponse> Client::audit(
    const ClientAuditRequest& request) {
  auto responses = audit_batch({request});
  if (!responses.ok()) return responses.status();
  return std::move(responses).value()[0];
}

api::Result<std::vector<api::AuditResponse>> Client::audit_batch(
    const std::vector<ClientAuditRequest>& requests) {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  std::vector<api::AuditResponse> out(requests.size());
  // Pipelining: write every request frame up front, then collect responses
  // matched by echoed request id (the server may complete out of order).
  std::map<std::uint64_t, std::size_t> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ClientAuditRequest& request = requests[i];
    if (request.model == nullptr) {
      close();  // the batch is partially sent; do not desynchronize
      return api::Status::InvalidRequest(
          "audit request '" + request.model_id + "' has no model");
    }
    AuditRequestMsg msg;
    msg.model_id = request.model_id;
    msg.detector = request.detector;
    msg.query_budget = request.query_budget;
    msg.deadline_ms = request.deadline_ms;
    io::Writer writer;
    encode_audit_request(writer, msg, *request.model);
    const std::uint64_t id = next_id_++;
    if (api::Status s = send_frame(MsgType::kAuditRequest, id, writer);
        !s.ok()) {
      return s;
    }
    pending.emplace(id, i);
  }
  while (!pending.empty()) {
    FrameHeader header;
    std::vector<std::uint8_t> body;
    if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
    const auto it = pending.find(header.request_id);
    if (it == pending.end()) {
      close();
      return api::Status::Internal(
          "server answered request id " + std::to_string(header.request_id) +
          " which is not pending");
    }
    const std::size_t slot = it->second;
    pending.erase(it);
    try {
      io::Reader reader(std::move(body));
      if (header.type == MsgType::kAuditResponse) {
        out[slot] = from_wire(decode_audit_response(reader));
      } else if (header.type == MsgType::kError) {
        // Typed rejection (admission, undecodable request): surface it as
        // the slot's status, like the engine reports per-request failures.
        out[slot].model_id = requests[slot].model_id;
        out[slot].status = decode_error(reader).status;
      } else {
        close();
        return api::Status::Internal(
            "server answered an audit with message type " +
            std::to_string(static_cast<unsigned>(header.type)));
      }
    } catch (const io::IoError& e) {
      close();
      return status_from_io(e);
    }
  }
  return out;
}

api::Result<StatsResponseMsg> Client::stats() {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  io::Writer writer;
  encode_stats_request(writer);
  const std::uint64_t id = next_id_++;
  if (api::Status s = send_frame(MsgType::kStatsRequest, id, writer); !s.ok()) {
    return s;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
  if (header.request_id != id) {
    close();
    return api::Status::Internal("server answered the wrong request id");
  }
  try {
    io::Reader reader(std::move(body));
    if (header.type == MsgType::kError) return decode_error(reader).status;
    if (header.type != MsgType::kStatsResponse) {
      close();
      return api::Status::Internal(
          "server answered stats with message type " +
          std::to_string(static_cast<unsigned>(header.type)));
    }
    return decode_stats_response(reader);
  } catch (const io::IoError& e) {
    close();
    return status_from_io(e);
  }
}

api::Result<api::DetectorInfo> Client::info(const std::string& detector) {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  InfoRequestMsg msg;
  msg.detector = detector;
  io::Writer writer;
  encode_info_request(writer, msg);
  const std::uint64_t id = next_id_++;
  if (api::Status s = send_frame(MsgType::kInfoRequest, id, writer); !s.ok()) {
    return s;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
  if (header.request_id != id) {
    close();
    return api::Status::Internal("server answered the wrong request id");
  }
  try {
    io::Reader reader(std::move(body));
    if (header.type == MsgType::kError) return decode_error(reader).status;
    if (header.type != MsgType::kInfoResponse) {
      close();
      return api::Status::Internal(
          "server answered info with message type " +
          std::to_string(static_cast<unsigned>(header.type)));
    }
    InfoResponseMsg response = decode_info_response(reader);
    if (!response.status.ok()) return response.status;
    return response.info;
  } catch (const io::IoError& e) {
    close();
    return status_from_io(e);
  }
}

}  // namespace bprom::net
