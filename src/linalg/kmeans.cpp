#include "linalg/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bprom::linalg {

KMeansResult kmeans(const Matrix& data, std::size_t k, util::Rng& rng,
                    int max_iters) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  assert(k >= 1);
  KMeansResult result;
  if (n == 0) return result;
  k = std::min(k, n);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.push_back(data.row(rng.uniform_index(n)));
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2[i] = std::min(dist2[i],
                          squared_distance(data.row(i), centroids.back()));
      total += dist2[i];
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= dist2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(data.row(chosen));
  }

  std::vector<std::size_t> assignment(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const auto x = data.row(i);
      double best = std::numeric_limits<double>::max();
      std::size_t arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = squared_distance(x, centroids[c]);
        if (d2 < best) {
          best = d2;
          arg = c;
        }
      }
      if (assignment[i] != arg) {
        assignment[i] = arg;
        changed = true;
      }
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto x = data.row(i);
      for (std::size_t j = 0; j < d; ++j) sums[assignment[i]][j] += x[j];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  result.centroids = std::move(centroids);
  result.assignment = std::move(assignment);
  result.sizes.assign(k, 0);
  for (auto a : result.assignment) ++result.sizes[a];
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        squared_distance(data.row(i), result.centroids[result.assignment[i]]);
  }
  return result;
}

double silhouette_two_clusters(const Matrix& data,
                               const std::vector<std::size_t>& assignment) {
  const std::size_t n = data.rows();
  if (n < 3) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double same_sum = 0.0;
    double other_sum = 0.0;
    std::size_t same_n = 0;
    std::size_t other_n = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dij = std::sqrt(squared_distance(data.row(i), data.row(j)));
      if (assignment[j] == assignment[i]) {
        same_sum += dij;
        ++same_n;
      } else {
        other_sum += dij;
        ++other_n;
      }
    }
    if (same_n == 0 || other_n == 0) continue;
    const double a = same_sum / static_cast<double>(same_n);
    const double b = other_sum / static_cast<double>(other_n);
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace bprom::linalg
