#include "opt/spsa.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace bprom::opt {

SpsaResult spsa_minimize(
    const SpsaConfig& config, std::vector<double> x0,
    const std::function<double(const std::vector<double>&)>& objective) {
  // Ascending-order serial evaluation, so stateful objectives (e.g. query
  // counters) see the same call sequence as the pre-batched interface.
  return spsa_minimize(
      config, std::move(x0),
      SpsaBatchObjective([&](const std::vector<std::vector<double>>& xs) {
        std::vector<double> fs(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) fs[i] = objective(xs[i]);
        return fs;
      }));
}

SpsaResult spsa_minimize(const SpsaConfig& config, std::vector<double> x0,
                         const SpsaBatchObjective& batch_objective) {
  util::Rng rng(config.seed);
  const std::size_t n = x0.size();
  SpsaResult result;
  result.best_x = x0;
  // A zero budget evaluates nothing; report +huge, not a perfect loss.
  result.best_f = 1e300;
  result.evaluations = 0;
  if (config.max_evaluations == 0) return result;
  result.best_f = batch_objective({x0}).at(0);
  result.evaluations = 1;

  std::vector<double> x = std::move(x0);
  std::vector<double> delta(n);
  std::vector<double> xp(n);
  std::vector<double> xm(n);
  std::size_t k = 0;
  while (result.evaluations + 2 <= config.max_evaluations) {
    ++k;
    const double ak =
        config.a / std::pow(static_cast<double>(k) + 50.0, config.alpha);
    const double ck = config.c / std::pow(static_cast<double>(k), config.gamma);
    for (std::size_t i = 0; i < n; ++i) {
      delta[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
      xp[i] = x[i] + ck * delta[i];
      xm[i] = x[i] - ck * delta[i];
    }
    const std::vector<double> fs = batch_objective({xp, xm});
    const double fp = fs.at(0);
    const double fm = fs.at(1);
    result.evaluations += 2;
    for (std::size_t i = 0; i < n; ++i) {
      const double ghat = (fp - fm) / (2.0 * ck * delta[i]);
      x[i] -= ak * ghat;
    }
    const double fx = std::min(fp, fm);
    if (fx < result.best_f) {
      result.best_f = fx;
      result.best_x = fp < fm ? xp : xm;
    }
  }
  return result;
}

}  // namespace bprom::opt
