// Ordered container of layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace bprom::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  void push(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward(Tensor&& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  Tensor backward(Tensor&& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<std::vector<float>*> state() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace bprom::nn
