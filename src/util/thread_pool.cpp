#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace bprom::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool) {
  if (n == 0) return;
  ThreadPool* p = pool != nullptr ? pool : &global_pool();
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, p->size());
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futures.push_back(p->submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        body(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bprom::util
