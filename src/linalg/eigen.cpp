#include "linalg/eigen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace bprom::linalg {

EigenDecomposition symmetric_eigen(const Matrix& sym, int max_sweeps,
                                   double tol) {
  assert(sym.rows() == sym.cols());
  const std::size_t n = sym.rows();
  Matrix a = sym;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors.resize(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = a(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.vectors[i][k] = v(k, order[i]);
  }
  return out;
}

LeadingSingular leading_singular(const Matrix& a, int iters) {
  const std::size_t cols = a.cols();
  LeadingSingular out;
  out.direction.assign(cols, 0.0);
  if (cols == 0 || a.rows() == 0) return out;
  // Deterministic start: alternating signs avoids orthogonality with the
  // common all-positive leading direction while staying reproducible.
  for (std::size_t i = 0; i < cols; ++i) {
    out.direction[i] = (i % 2 == 0) ? 1.0 : -0.5;
  }
  const Matrix at = a.transpose();
  double sigma_sq = 0.0;
  for (int it = 0; it < iters; ++it) {
    std::vector<double> av = a.multiply(out.direction);
    std::vector<double> atav = at.multiply(av);
    const double n = norm(atav);
    if (n < 1e-300) break;
    for (auto& x : atav) x /= n;
    out.direction = std::move(atav);
    sigma_sq = n;
  }
  out.value = std::sqrt(std::max(0.0, sigma_sq));
  return out;
}

}  // namespace bprom::linalg
