// Small statistics helpers shared across defenses and analysis code.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace bprom::linalg {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);  // by copy; v is partially sorted

/// Shannon entropy of a probability vector (natural log); tolerates zeros.
double entropy(const std::vector<double>& p);

/// Pearson correlation; returns 0 for degenerate inputs.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Per-feature mean of matrix rows.
std::vector<double> row_mean(const Matrix& data);

/// Covariance matrix of rows (samples x features).
Matrix covariance(const Matrix& data);

/// Median absolute deviation (robust scale).
double mad(std::vector<double> v);

}  // namespace bprom::linalg
