// Typed error model of the public `bprom::api` façade.
//
// Every fallible façade operation reports a `Status` (or a `Result<T>`,
// which is a Status plus a value on success) instead of throwing: the
// internal layers still use exceptions (`io::IoError`) and asserts, but
// nothing escapes the façade untyped.  Codes are stable, wire-friendly
// integers so a future network front end can ship them unchanged.
//
// This header is dependency-free on purpose — lower layers (`core`) may
// include it to *return* typed errors without creating a cycle.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace bprom::api {

/// Version of the façade's wire contract (status codes + the value types in
/// api/types.hpp).  Bumped only on incompatible changes.
inline constexpr std::uint32_t kApiVersion = 1;

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// The named detector/version does not exist in the store.
  kNotFound = 1,
  /// A `.bprom` artifact failed parsing: truncation, CRC, bad chunk tags.
  kCorruptArtifact = 2,
  /// A `.bprom` artifact was written by a different container version than
  /// this build supports (typically: a newer build's store directory).
  kVersionMismatch = 3,
  /// The request's query budget cannot cover the inspection.
  kBudgetExhausted = 4,
  /// The request itself is malformed (null model, empty/invalid name,
  /// class-count mismatch, name containing reserved characters, ...).
  kInvalidRequest = 5,
  /// The operation needs state the engine does not have (e.g. an unfitted
  /// detector where a fitted one is required).
  kFailedPrecondition = 6,
  /// The request's deadline elapsed before its inspection could start.
  kDeadlineExceeded = 7,
  /// Anything unexpected that crossed the façade boundary.
  kInternal = 8,
};

/// Stable lower-snake name of a code ("ok", "not_found", ...).
const char* status_code_name(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status CorruptArtifact(std::string m) {
    return {StatusCode::kCorruptArtifact, std::move(m)};
  }
  static Status VersionMismatch(std::string m) {
    return {StatusCode::kVersionMismatch, std::move(m)};
  }
  static Status BudgetExhausted(std::string m) {
    return {StatusCode::kBudgetExhausted, std::move(m)};
  }
  static Status InvalidRequest(std::string m) {
    return {StatusCode::kInvalidRequest, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status DeadlineExceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>" — for logs and CLI output.
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a T.  `ok()` decides which; `value()` asserts ok() so a
/// forgotten check fails fast in Debug instead of reading garbage.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return info;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result needs a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The value, or `fallback` when the result holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bprom::api
