// Model-level baseline: MM-BD (Wang et al. 2024) — post-training detection
// via a maximum-margin statistic, no clean data needed.
#pragma once

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace bprom::defenses {

struct MmBdConfig {
  /// Gradient-ascent steps maximizing each class's logit margin.
  std::size_t steps = 30;
  float lr = 0.1F;
  std::size_t restarts = 2;
  std::uint64_t seed = 31;
};

/// Returns the MM-BD anomaly score (higher = more likely backdoored):
/// the max class margin's deviation from the other classes' margins in
/// robust (MAD) units.
double mmbd_model_score(nn::Model& model, const MmBdConfig& config = {});

}  // namespace bprom::defenses
