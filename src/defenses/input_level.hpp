// Input-level (inference-time) baseline defenses.
//
// Each returns one suspicion score per input (higher = more likely a trigger
// sample).  Algorithmic cores follow the published methods; sizes are tuned
// for the CPU substrate.  These are the detectors whose clean-model collapse
// Table 1 demonstrates.
#pragma once

#include <vector>

#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace bprom::defenses {

using nn::LabeledData;
using nn::Tensor;

/// STRIP (Gao et al. 2019): superimpose each input with N clean images and
/// measure mean prediction entropy; trigger samples stay low-entropy because
/// the trigger survives blending.  Score = -entropy.
std::vector<double> strip_scores(nn::Model& model, const Tensor& inputs,
                                 const LabeledData& clean_reference,
                                 util::Rng& rng, std::size_t overlays = 10);

/// SentiNet (Chou et al. 2018): locate the most prediction-critical region
/// by occlusion, transplant it onto held-out images, and score by the fooled
/// fraction (universal patches transplant; benign saliency does not).
std::vector<double> sentinet_scores(nn::Model& model, const Tensor& inputs,
                                    const LabeledData& clean_reference,
                                    std::size_t occluder = 4,
                                    std::size_t transplant_targets = 8);

/// Frequency (Zeng et al. 2021): high-frequency DCT band statistic; patch
/// and blend triggers leave high-frequency residuals, warping does not
/// (which is exactly the failure mode the paper reports for WaNet).
std::vector<double> frequency_scores(const Tensor& inputs);

/// SCALE-UP (Guo et al. 2023): scaled prediction consistency — multiply
/// pixels by k = 2..5 (clipped) and count how often the prediction is
/// preserved.  Trigger samples are scale-stable.
std::vector<double> scaleup_scores(nn::Model& model, const Tensor& inputs);

/// TeCo (Liu et al. 2023): corruption-robustness consistency — for several
/// corruption families, find the severity at which the prediction first
/// flips; triggered inputs flip at very different severities per family.
/// Score = deviation of first-flip severities.
std::vector<double> teco_scores(nn::Model& model, const Tensor& inputs,
                                util::Rng& rng);

/// TED (Mo et al. 2024): topological evolution dynamics, approximated with
/// the penultimate feature space: score = rank disagreement between an
/// input's feature-space neighbours and its predicted label.
std::vector<double> ted_scores(nn::Model& model, const Tensor& inputs,
                               const LabeledData& clean_reference,
                               std::size_t k_neighbours = 10);

/// CD — Cognitive Distillation (Huang et al. 2023): minimal input mask that
/// preserves the prediction, approximated by greedy occlusion; trigger
/// samples have very small cognitive patterns.  Score = -pattern size.
std::vector<double> cd_scores(nn::Model& model, const Tensor& inputs,
                              std::size_t occluder = 4);

/// IBD-PSC-style helper: softmax confidence of the predicted class (used by
/// a couple of score fusions and tests).
std::vector<double> confidence_scores(nn::Model& model, const Tensor& inputs);

}  // namespace bprom::defenses
