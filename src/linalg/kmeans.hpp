// k-means++ clustering, used by the Activation Clustering defense.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace bprom::linalg {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<std::size_t> assignment;  // per sample
  std::vector<std::size_t> sizes;       // per cluster
  double inertia = 0.0;                 // sum of squared distances
};

KMeansResult kmeans(const Matrix& data, std::size_t k, util::Rng& rng,
                    int max_iters = 50);

/// Silhouette score of a 2-cluster split (AC's abnormality statistic).
double silhouette_two_clusters(const Matrix& data,
                               const std::vector<std::size_t>& assignment);

}  // namespace bprom::linalg
