// Unit tests for bprom::util — RNG determinism and distribution sanity,
// table rendering, thread-pool correctness, env knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace bprom::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(50, 20);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.split(1);
  Rng a2(9);
  Rng child2 = a2.split(1);
  EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Different salt gives a different stream.
  Rng a3(9);
  Rng other = a3.split(2);
  EXPECT_NE(child.next_u64(), other.next_u64());
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", cell(1.5, 2)});
  table.add_row({"bb", cell(std::size_t{42})});
  const std::string s = table.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, CellPrecision) {
  EXPECT_EQ(cell(0.12345, 3), "0.123");
  EXPECT_EQ(cell(1.0, 1), "1.0");
  EXPECT_EQ(cell(7), "7");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(
      parallel_for(8,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroThreadConstructionFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForExceptionOnExplicitPoolLeavesPoolUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   16,
                   [](std::size_t i) {
                     if (i % 2 == 0) throw std::runtime_error("even");
                   },
                   &pool),
               std::runtime_error);
  // The pool must survive a throwing loop and keep serving work.
  std::atomic<int> counter{0};
  parallel_for(8, [&](std::size_t) { counter.fetch_add(1); }, &pool);
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
        auto inner = pool.submit([&] { counter.fetch_add(1); });
        inner.get();
        counter.fetch_add(1);
      })
      .get();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, NestedParallelForOnSingleThreadPoolDoesNotDeadlock) {
  // Regression: a worker running parallel_for used to block forever waiting
  // for helper tasks no free worker could ever pick up.  The caller now
  // participates and drains the queue, so this completes even with one
  // worker thread.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  parallel_for(
      4,
      [&](std::size_t) {
        parallel_for(4, [&](std::size_t) { counter.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, NestedParallelForOnSmallPoolDoesNotDeadlock) {
  // With two workers the outer loop parks helper tasks in the queue while a
  // worker's nested loop waits on its own helpers — the queue-drain path in
  // parallel_for must keep everything moving.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(8, [&](std::size_t) { counter.fetch_add(1); }, &pool);
      },
      &pool);
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  ThreadPool one(1);
  ThreadPool four(4);
  std::vector<std::uint64_t> a(32), b(32);
  const auto work = [](std::vector<std::uint64_t>& out) {
    return [&out](std::size_t i) {
      Rng rng(1000 + i);
      out[i] = rng.next_u64();
    };
  };
  parallel_for(32, work(a), &one);
  parallel_for(32, work(b), &four);
  EXPECT_EQ(a, b);
}

TEST(Env, ScaleDefaultsToNormal) {
  // Unless BPROM_SCALE is exported by the environment, default applies.
  if (std::getenv("BPROM_SCALE") == nullptr) {
    EXPECT_EQ(scale(), Scale::kDefault);
    EXPECT_EQ(by_scale(1, 2, 3), 2);
  }
}

TEST(Env, EnvSizeFallback) {
  EXPECT_EQ(env_size("BPROM_DEFINITELY_UNSET_VAR", 77u), 77u);
}

TEST(Profiler, CountMinMaxAvgExact) {
  Profiler profiler;
  profiler.record(ProfileStage::kResolve, 100);
  profiler.record(ProfileStage::kResolve, 300);
  profiler.record(ProfileStage::kResolve, 200);
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kResolve];
  EXPECT_EQ(s.count, 3U);
  EXPECT_EQ(s.min, 100U);
  EXPECT_EQ(s.max, 300U);
  EXPECT_DOUBLE_EQ(s.avg(), 200.0);
  // Untouched stages stay zero.
  EXPECT_EQ(snap[ProfileStage::kInspect].count, 0U);
  EXPECT_EQ(snap[ProfileStage::kInspect].min, 0U);
}

TEST(Profiler, SnapshotsAreCumulative) {
  Profiler profiler;
  profiler.record(ProfileStage::kRequest, 10);
  EXPECT_EQ(profiler.snapshot()[ProfileStage::kRequest].count, 1U);
  profiler.record(ProfileStage::kRequest, 20);
  // The epoch flip must fold, not reset: totals only grow.
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kRequest];
  EXPECT_EQ(s.count, 2U);
  EXPECT_EQ(s.min, 10U);
  EXPECT_EQ(s.max, 20U);
}

TEST(Profiler, PercentilesLandInTheRightBucket) {
  Profiler profiler;
  // 95 fast samples, 5 slow outliers: p50/p95 must stay with the fast
  // mass (nearest-rank index 94 of 100 is still fast), p99 must reach the
  // outliers' bucket (log2 buckets: exact to within a power of two, and
  // always clamped inside [min, max]).
  for (int i = 0; i < 95; ++i) profiler.record(ProfileStage::kInspect, 1000);
  for (int i = 0; i < 5; ++i) {
    profiler.record(ProfileStage::kInspect, 1000000);
  }
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kInspect];
  EXPECT_EQ(s.count, 100U);
  EXPECT_GE(s.p50, 512.0);
  EXPECT_LE(s.p50, 2048.0);
  EXPECT_LE(s.p95, 2048.0);
  EXPECT_GE(s.p99, 500000.0);
  EXPECT_LE(s.p99, 1000000.0);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GE(s.p99, s.p95);
}

TEST(Profiler, ConcurrentWritersLoseNoSamples) {
  Profiler profiler;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&profiler] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        profiler.record(ProfileStage::kQueueWait, (i % 7) + 1);
      }
    });
  }
  // A reader flipping epochs mid-stream must not lose or tear samples.
  for (int i = 0; i < 50; ++i) {
    (void)profiler.snapshot();
    std::this_thread::yield();
  }
  for (auto& w : writers) w.join();
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kQueueWait];
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1U);
  EXPECT_EQ(s.max, 7U);
}

TEST(Profiler, ScopedProfileRecordsAndNullDisables) {
  Profiler profiler;
  { ScopedProfile timer(&profiler, ProfileStage::kBatch); }
  { ScopedProfile disabled(nullptr, ProfileStage::kBatch); }
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kBatch];
  EXPECT_EQ(s.count, 1U);  // the null-profiler scope recorded nothing
}

TEST(Profiler, HugeValuesClampIntoTheLastBucket) {
  Profiler profiler;
  // Regression: values with the top bit set have bit_width 64, which used
  // to index one past the end of the 64-entry log2 histogram.  They must
  // clamp into the last bucket and keep percentiles inside [min, max].
  for (int i = 0; i < 10; ++i) {
    profiler.record(ProfileStage::kInspect, ~std::uint64_t{0});
  }
  profiler.record(ProfileStage::kInspect, 1);
  const ProfilerSnapshot snap = profiler.snapshot();
  const ProfileStageStats& s = snap[ProfileStage::kInspect];
  EXPECT_EQ(s.count, 11U);
  EXPECT_EQ(s.min, 1U);
  EXPECT_EQ(s.max, ~std::uint64_t{0});
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
}

TEST(Log, SinkCaptureAndLevelFilter) {
  std::ostringstream captured;
  set_log_sink(&captured);
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  log_info() << "below the filter";
  log_warn() << "kept " << 42;
  set_log_level(before);
  set_log_sink(nullptr);
  EXPECT_EQ(captured.str().find("below the filter"), std::string::npos);
  EXPECT_NE(captured.str().find("kept 42"), std::string::npos);
}

}  // namespace
}  // namespace bprom::util
