// The visual prompt: trainable border noise around a resized target image.
//
// V(x_T | theta) resizes the target image into the center of the source
// canvas (2x average-pool downscale) and fills the surrounding border with
// the trainable prompt theta, squashed to [0, 1] through a logistic so the
// prompted sample stays a valid image for any parameter value.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace bprom::vp {

using nn::ImageShape;
using nn::Tensor;

enum class PromptMode {
  /// Trainable border around the embedded target image (Bahng et al. 2022).
  kBorder,
  /// Full-canvas additive perturbation on top of the embedded target image
  /// (model-reprogramming style, Tsai et al. 2020).  Higher capacity; the
  /// library default because the miniature substrate needs the extra
  /// adaptation power for clean models to prompt well (DESIGN.md §2).
  kAdditive,
  /// Additive perturbation parameterized by a coarse 4x4 grid per channel,
  /// bilinearly upsampled to the canvas.  48 parameters instead of ~770 —
  /// the dimensionality reduction black-box CMA-ES needs to converge within
  /// a small query budget.  Used for BOTH shadow (white-box) and suspicious
  /// (black-box) prompting so the meta-model sees one regime.
  kAdditiveCoarse,
};

class VisualPrompt {
 public:
  /// `canvas` is the source model's input shape; the target image is placed
  /// at the center occupying half the height/width.
  explicit VisualPrompt(ImageShape canvas,
                        PromptMode mode = PromptMode::kAdditive);

  /// Number of trainable parameters (border pixels across channels).
  [[nodiscard]] std::size_t num_params() const { return theta_.size(); }

  /// Prompted batch: embed 2x-downscaled target images, fill border.
  /// `target` must be [N, C, H, W] with the same C and H/W equal to the
  /// canvas size (it is downscaled internally) or already canvas/2.
  [[nodiscard]] Tensor apply(const Tensor& target) const;

  /// Map dL/d(prompted canvas) [N, C, H, W] to dL/dtheta (accumulated over
  /// the batch, including the logistic squash derivative).
  [[nodiscard]] std::vector<float> gradient(const Tensor& dcanvas) const;

  /// Raw (pre-squash) parameters.
  [[nodiscard]] const std::vector<float>& theta() const { return theta_; }
  void set_theta(const std::vector<float>& theta);
  void set_theta(const std::vector<double>& theta);
  [[nodiscard]] std::vector<double> theta_as_double() const;

  [[nodiscard]] const ImageShape& canvas() const { return canvas_; }
  [[nodiscard]] PromptMode mode() const { return mode_; }

 private:
  [[nodiscard]] bool is_border(std::size_t y, std::size_t x) const;

  ImageShape canvas_;
  PromptMode mode_;
  std::size_t inner_h_;
  std::size_t inner_w_;
  std::size_t top_;
  std::size_t left_;
  std::vector<float> theta_;            // raw prompt params
  std::vector<std::size_t> border_pos_; // flat canvas offsets per channel
  /// Coarse mode: upsample weights — for canvas pixel p, the contribution
  /// of grid node g is coarse_weight_[p * nodes + g].
  std::vector<float> coarse_weight_;
  static constexpr std::size_t kGrid = 4;
};

}  // namespace bprom::vp
