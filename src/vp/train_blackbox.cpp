#include "vp/train_blackbox.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "data/ops.hpp"
#include "opt/spsa.hpp"
#include "util/rng.hpp"

namespace bprom::vp {

BlackBoxPromptResult learn_prompt_blackbox(
    const nn::BlackBoxModel& model, const nn::LabeledData& target_train,
    const BlackBoxPromptConfig& config) {
  VisualPrompt prompt(model.input_shape(), PromptMode::kAdditiveCoarse);
  util::Rng rng(config.seed);

  // Fixed evaluation subsample (same for every candidate, so fitness is a
  // deterministic function of theta — CMA-ES assumes a stationary objective).
  const std::size_t n_eval = std::min(config.eval_samples, target_train.size());
  nn::LabeledData eval_set = data::subset(
      target_train,
      rng.sample_without_replacement(target_train.size(), n_eval));

  const std::size_t k = model.num_classes();
  const std::size_t query_base = model.query_count();

  auto objective = [&](const std::vector<double>& theta) -> double {
    VisualPrompt candidate(model.input_shape(), PromptMode::kAdditiveCoarse);
    candidate.set_theta(theta);
    Tensor probs = model.predict_proba(candidate.apply(eval_set.images));
    double loss = 0.0;
    for (std::size_t i = 0; i < n_eval; ++i) {
      const auto label = static_cast<std::size_t>(eval_set.labels[i]);
      assert(label < k);
      loss -= std::log(
          std::max(static_cast<double>(probs.data()[i * k + label]), 1e-9));
    }
    return loss / static_cast<double>(n_eval);
  };

  std::vector<double> best_x;
  double best_f = 0.0;
  if (config.optimizer == BlackBoxOptimizer::kCmaEs) {
    opt::CmaEsConfig cma;
    cma.dim = prompt.num_params();
    cma.sigma0 = config.sigma0;
    cma.mode = config.mode;
    cma.max_evaluations = config.max_evaluations;
    cma.seed = config.seed ^ 0xB1ACBB0FULL;
    opt::CmaEs solver(cma, std::vector<double>(cma.dim, 0.0));
    auto result = solver.optimize(objective);
    best_x = std::move(result.best_x);
    best_f = result.best_f;
  } else {
    opt::SpsaConfig spsa;
    spsa.max_evaluations = config.max_evaluations;
    spsa.seed = config.seed ^ 0xB1ACBB0FULL;
    auto result = opt::spsa_minimize(
        spsa, std::vector<double>(prompt.num_params(), 0.0), objective);
    best_x = std::move(result.best_x);
    best_f = result.best_f;
  }

  prompt.set_theta(best_x);
  BlackBoxPromptResult out{std::move(prompt), best_f,
                           model.query_count() - query_base};
  return out;
}

}  // namespace bprom::vp
