// Meta-classifier tests: CART tree, random forest, logistic regression.
#include <gtest/gtest.h>
#include "meta/logistic.hpp"
#include "meta/random_forest.hpp"
#include "util/rng.hpp"
namespace bprom::meta {
namespace {

struct Toy {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
};

Toy separable(std::size_t n, util::Rng& rng) {
  Toy t;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    t.x.push_back({static_cast<float>(rng.normal(label == 0 ? -1.0 : 1.0, 0.3)),
                   static_cast<float>(rng.normal(0.0, 1.0))});
    t.y.push_back(label);
  }
  return t;
}

Toy xor_data(std::size_t n, util::Rng& rng) {
  Toy t;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const double b = rng.bernoulli(0.5) ? 1.0 : -1.0;
    t.x.push_back({static_cast<float>(a + rng.normal(0, 0.1)),
                   static_cast<float>(b + rng.normal(0, 0.1))});
    t.y.push_back(a * b > 0 ? 1 : 0);
  }
  return t;
}

TEST(DecisionTree, FitsSeparableData) {
  util::Rng rng(1);
  auto data = separable(200, rng);
  DecisionTree tree;
  std::vector<std::size_t> idx(data.x.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  TreeConfig cfg;
  cfg.feature_subsample = 2;
  tree.fit(data.x, data.y, idx, cfg, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    correct += (tree.predict_proba(data.x[i]) >= 0.5) == (data.y[i] == 1);
  }
  EXPECT_GT(correct, 190u);
}

TEST(RandomForest, SolvesXor) {
  util::Rng rng(2);
  auto data = xor_data(300, rng);
  ForestConfig cfg;
  cfg.trees = 50;
  RandomForest forest(cfg);
  forest.fit(data.x, data.y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    correct += forest.predict(data.x[i]) == data.y[i];
  }
  EXPECT_GT(static_cast<double>(correct) / data.x.size(), 0.95);
}

TEST(RandomForest, ProbabilitiesInRange) {
  util::Rng rng(3);
  auto data = separable(100, rng);
  RandomForest forest;
  forest.fit(data.x, data.y);
  for (const auto& x : data.x) {
    const double p = forest.predict_proba(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, DeterministicForSeed) {
  util::Rng rng(4);
  auto data = separable(100, rng);
  ForestConfig cfg;
  cfg.trees = 20;
  cfg.seed = 7;
  RandomForest a(cfg);
  a.fit(data.x, data.y);
  RandomForest b(cfg);
  b.fit(data.x, data.y);
  EXPECT_DOUBLE_EQ(a.predict_proba(data.x[0]), b.predict_proba(data.x[0]));
}

TEST(Logistic, FitsSeparableData) {
  util::Rng rng(5);
  auto data = separable(200, rng);
  LogisticRegression lr;
  lr.fit(data.x, data.y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    correct += lr.predict(data.x[i]) == data.y[i];
  }
  EXPECT_GT(correct, 190u);
}

TEST(Logistic, CannotSolveXorLinearly) {
  util::Rng rng(6);
  auto data = xor_data(300, rng);
  LogisticRegression lr;
  lr.fit(data.x, data.y);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.x.size(); ++i) {
    correct += lr.predict(data.x[i]) == data.y[i];
  }
  EXPECT_LT(static_cast<double>(correct) / data.x.size(), 0.75);
}

}  // namespace
}  // namespace bprom::meta
