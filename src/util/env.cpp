#include "util/env.hpp"

#include <cstdlib>

namespace bprom::util {

Scale scale() {
  static Scale cached = [] {
    const char* env = std::getenv("BPROM_SCALE");
    if (env == nullptr) return Scale::kDefault;
    const std::string v(env);
    if (v == "0" || v == "smoke") return Scale::kSmoke;
    if (v == "2" || v == "heavy") return Scale::kHeavy;
    return Scale::kDefault;
  }();
  return cached;
}

std::size_t env_size(const std::string& name, std::size_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace bprom::util
