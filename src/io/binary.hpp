// Versioned, endian-stable binary container for trained artifacts.
//
// File layout (all integers little-endian regardless of host):
//   magic   "BPRM"                       4 bytes
//   version u32 (kFormatVersion)         4 bytes
//   length  u64 (payload byte count)     8 bytes
//   payload                              `length` bytes
//   crc32   u32 over the payload         4 bytes
//
// The payload is a stream of typed chunks: every object serializer opens
// with a 4-char tag (e.g. "TNSR"), so a reader that expects a Tensor but
// meets a RandomForest fails loudly instead of misinterpreting bytes.
// Reads are bounds-checked; truncation, bit flips (CRC), wrong magic, and
// unknown versions all raise IoError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bprom::io {

/// What went wrong, coarsely — the public façade (bprom::api) maps these
/// onto its typed Status codes, so each throw site picks the kind that
/// should reach API consumers.
enum class ErrorKind : std::uint8_t {
  /// Malformed bytes: truncation, CRC/tag/magic mismatch, out-of-range
  /// fields.  The default — most throw sites are parse failures.
  kCorrupt = 0,
  /// The artifact does not exist at all.
  kNotFound = 1,
  /// The container was written by a different format version (typically a
  /// newer build's store directory).
  kVersionMismatch = 2,
  /// The operation was invalid for the object's state (e.g. saving an
  /// unfitted detector).
  kPrecondition = 3,
  /// The filesystem failed underneath us (short read/write, no space).
  kIo = 4,
};

/// Raised on malformed, truncated, corrupt, or version-mismatched input.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what,
                   ErrorKind kind = ErrorKind::kCorrupt)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

class Writer {
 public:
  Writer() = default;

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_f64(double v);
  /// u64 length prefix + raw bytes.
  void write_string(const std::string& s);
  /// 4-character chunk tag (no length prefix).
  void write_tag(const char (&tag)[5]);
  /// u64 count prefix + f32 elements.
  void write_f32_vec(const std::vector<float>& v);
  /// u64 count prefix + i32 elements.
  void write_i32_vec(const std::vector<int>& v);
  /// u64 count prefix + u64 elements.
  void write_u64_vec(const std::vector<std::size_t>& v);
  /// u64 count prefix + f64 elements.
  void write_f64_vec(const std::vector<double>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return payload_;
  }

  /// Header + payload + CRC as one byte vector.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

  /// Write finish() to a file; throws IoError on I/O failure.
  void save_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> payload_;
};

class Reader {
 public:
  /// Parse a full container (header + payload + CRC); throws IoError.
  explicit Reader(std::vector<std::uint8_t> bytes);

  /// Read and parse a container file; throws IoError.
  static Reader from_file(const std::string& path);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  double read_f64();
  std::string read_string();
  /// Consume a 4-char tag and verify it matches; throws IoError otherwise.
  void expect_tag(const char (&tag)[5]);
  std::vector<float> read_f32_vec();
  std::vector<int> read_i32_vec();
  std::vector<std::size_t> read_u64_vec();
  std::vector<double> read_f64_vec();

  /// Bytes of payload not yet consumed.
  [[nodiscard]] std::size_t remaining() const {
    return payload_.size() - pos_;
  }

 private:
  void need(std::size_t n) const;
  std::uint64_t read_count(std::size_t elem_size);

  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

}  // namespace bprom::io
