#include "meta/logistic.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace bprom::meta {

LogisticRegression::LogisticRegression(LogisticConfig config)
    : config_(config) {}

void LogisticRegression::fit(const std::vector<std::vector<float>>& x,
                             const std::vector<int>& y) {
  assert(x.size() == y.size() && !x.empty());
  const std::size_t d = x[0].size();
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  util::Rng rng(config_.seed);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    auto order = rng.permutation(x.size());
    for (auto i : order) {
      double z = bias_;
      for (std::size_t j = 0; j < d; ++j) z += weights_[j] * x[i][j];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - static_cast<double>(y[i]);
      for (std::size_t j = 0; j < d; ++j) {
        weights_[j] -=
            config_.lr * (err * x[i][j] + config_.l2 * weights_[j]);
      }
      bias_ -= config_.lr * err;
    }
  }
}

double LogisticRegression::predict_proba(const std::vector<float>& x) const {
  assert(x.size() == weights_.size());
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace bprom::meta
