// bprom_lint fixture — NOT part of the build.  See raw_thread.cpp for the
// expect-marker convention.
#include <cstdlib>
#include <random>

int bad() {
  srand(7);                      // expect(raw-rand)
  int a = rand();                // expect(raw-rand)
  std::random_device entropy;    // expect(raw-rand)
  return a + static_cast<int>(entropy());
}

int clean(int operand) {
  // `operand` and `strand` embed "rand" but are distinct identifiers.
  int strand = operand + 1;
  return strand;  // and rand in a comment is fine
}
