// im2col / col2im for convolution lowering to matrix multiplication.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace bprom::tensor {

struct ConvGeometry {
  std::size_t in_c = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;

  [[nodiscard]] std::size_t out_h() const {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t patch_size() const {
    return in_c * kernel * kernel;
  }
};

/// input:  [N, C, H, W]
/// output: [N * out_h * out_w, C * k * k]  (row per output location)
Tensor im2col(const Tensor& input, const ConvGeometry& g);

/// im2col into a caller-owned tensor, reusing its allocation when the
/// capacity suffices — Conv2d keeps one such buffer per layer so the
/// steady-state forward performs no heap allocation.
void im2col_into(const Tensor& input, const ConvGeometry& g, Tensor& cols);

/// Inverse scatter-add of im2col; returns [N, C, H, W].  Allocates its
/// result on purpose: the image-space gradient is handed back to the
/// caller, unlike the column matrices that stay layer-resident.
Tensor col2im(const Tensor& cols, const ConvGeometry& g, std::size_t batch);

}  // namespace bprom::tensor
