// net::Server — the epoll front end that puts api::AuditEngine on a socket.
//
// Architecture (a small acceptor+IO thread set, no thread-per-connection):
//
//   - `io_threads` long-lived IO threads, each owning one epoll instance
//     and an exclusive set of connections (a connection's socket is only
//     ever read/registered by its owning thread, so per-connection parser
//     state needs no lock).  Thread 0 additionally owns the listener and
//     deals accepted connections round-robin to the set.
//   - Sockets are non-blocking; reads and writes run readiness-driven with
//     explicit partial-read (FrameAssembler) and partial-write (per-
//     connection queue + offset) state machines.  EPOLLOUT is armed only
//     while a connection has queued bytes.
//   - A decoded audit request is handed to AuditEngine::audit_async with a
//     completion callback: the engine's serve workers run the inspection
//     and the callback enqueues the response frame and wakes the owning IO
//     thread through its eventfd.  When the engine's bounded ring is full,
//     audit_async blocks the IO thread — the socket stops being read, TCP
//     flow control pushes back on clients, and memory stays bounded
//     instead of buffering an unbounded backlog.
//   - Before any of that, AdmissionControl (net/admission.hpp) gates each
//     request on per-connection in-flight/request/byte budgets and the
//     server-wide in-flight cap, rejecting with typed kBudgetExhausted
//     frames while the body is still undecoded — overload degrades into
//     cheap typed rejections, not collapse.  Idle connections are swept on
//     a timeout.
//
// The engine is borrowed and must outlive the server; stop() (and the
// destructor) quiesces the IO threads and then drains every in-flight
// completion callback before tearing down the wakeup fds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/status.hpp"
#include "net/admission.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/socket.hpp"
#include "util/thread_annotations.hpp"

namespace bprom::net {

struct ServerConfig {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// Listen port; 0 asks the kernel for one (read it back with port()).
  std::uint16_t port = 0;
  /// IO threads (epoll loops).  Thread 0 also accepts.
  std::size_t io_threads = 1;
  /// Accepted-connection cap; connections past it are closed immediately.
  std::size_t max_connections = 256;
  /// Ceiling on one frame's body; oversized length prefixes are rejected
  /// before any body buffering happens.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Close connections with no traffic and no in-flight audits for this
  /// long (0 = never).
  std::uint64_t idle_timeout_ms = 0;
  /// stop() drains gracefully: stop accepting, let in-flight audits finish
  /// and their responses flush, close connections as they empty, and only
  /// hard-stop once every connection is gone or this many milliseconds
  /// have passed.  0 = legacy immediate stop (in-flight responses may be
  /// dropped on the floor).
  std::uint64_t drain_timeout_ms = 5000;
  /// Connection-level budgets and in-flight caps (see net/admission.hpp).
  AdmissionConfig admission;
};

class Server {
 public:
  /// Borrow `engine`; it must outlive this server.
  Server(api::AuditEngine& engine, ServerConfig config);

  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the IO threads.  Safe to call once.
  api::Status start();

  /// Quiesce.  With drain_timeout_ms > 0 (the default) this is graceful:
  /// begin_drain(), wait for every connection to finish and flush (bounded
  /// by the timeout), then join the IO threads and drain in-flight audit
  /// completions.  Idempotent.
  void stop();

  /// Enter drain mode without blocking: the listener stops accepting, new
  /// audit requests are refused with a typed kFailedPrecondition, in-flight
  /// audits finish and their responses flush, and each connection closes
  /// once it has nothing left in flight or queued.  Also triggered remotely
  /// by the kShutdownRequest wire message.  Irreversible.
  void begin_drain();

  /// True once begin_drain()/stop()/a shutdown message started a drain.
  [[nodiscard]] bool draining() const {
    // acquire: pairs with begin_drain's release store (observers read the
    // flag after the IO threads were woken).
    return draining_.load(std::memory_order_acquire);
  }

  /// Port the listener bound to (after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Transport + admission counters (the server half of the stats frame).
  [[nodiscard]] ServerCounters counters() const;

 private:
  struct Connection;
  struct IoThread;

  void io_loop(IoThread& io, bool is_acceptor);
  void accept_ready(IoThread& io);
  void adopt_incoming(IoThread& io);
  void handle_readable(IoThread& io, const std::shared_ptr<Connection>& conn);
  void dispatch_frame(IoThread& io, const std::shared_ptr<Connection>& conn,
                      const FrameHeader& header,
                      std::vector<std::uint8_t>& body);
  void handle_audit(IoThread& io, const std::shared_ptr<Connection>& conn,
                    const FrameHeader& header, std::vector<std::uint8_t>& body);
  /// Append an encoded frame to the connection's write queue.  From the
  /// owning IO thread, flushes inline; from a completion callback, wakes
  /// the owning thread instead (`from_io_thread = false`).
  void enqueue_write(IoThread& io, const std::shared_ptr<Connection>& conn,
                     std::vector<std::uint8_t> frame, bool from_io_thread);
  void send_error(IoThread& io, const std::shared_ptr<Connection>& conn,
                  std::uint64_t request_id, const api::Status& status);
  /// Drain the write queue as far as the socket allows; arms/disarms
  /// EPOLLOUT to match.  IO-thread only.
  void flush_writes(IoThread& io, const std::shared_ptr<Connection>& conn);
  void close_connection(IoThread& io, const std::shared_ptr<Connection>& conn);
  void sweep_idle(IoThread& io);
  /// Drain-mode sweep: close every connection with no in-flight audit, no
  /// mid-completion callback, and an empty write queue.  IO-thread only.
  void sweep_draining(IoThread& io);
  void update_epoll(IoThread& io, Connection& conn);
  void wake(IoThread& io);

  api::AuditEngine* engine_;
  ServerConfig config_;
  AdmissionControl admission_;

  Socket listener_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::atomic<std::size_t> next_io_thread_{0};

  // Transport tallies (admission tallies live in admission_).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> connections_idle_closed_{0};
  std::atomic<std::uint64_t> rejected_protocol_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  /// Completion-callback drain barrier for stop(): callbacks touch the
  /// owning IoThread's eventfd, so the fds may only close after the last
  /// callback has run.
  util::Mutex drain_mu_;
  util::CondVar drain_cv_;
  std::size_t callbacks_in_flight_ BPROM_GUARDED_BY(drain_mu_) = 0;
};

}  // namespace bprom::net
