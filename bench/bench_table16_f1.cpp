// Table 16: F1 of defenses + BPROM at D_S = 10/5/1 % (ResNet18Mini).
#include "common.hpp"
int main() {
  using namespace bench;
  BenchReport report("table16_f1");
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kStrip, defenses::DefenseKind::kFrequency,
      defenses::DefenseKind::kSs, defenses::DefenseKind::kScan,
      defenses::DefenseKind::kSpectre};
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> header = {"defense"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    const auto cells =
        baseline_grid(baselines, *src, main_attacks(), arch, 700, env.scale);
    report.add_cells(*src, cells);
    for (std::size_t d = 0; d < baselines.size(); ++d) {
      std::vector<std::string> row = {defenses::defense_name(baselines[d])};
      double avg = 0;
      for (std::size_t a = 0; a < main_attacks().size(); ++a) {
        const auto& eval = cells[d * main_attacks().size() + a].eval;
        row.push_back(util::cell(eval.f1));
        avg += eval.f1;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    for (double frac : {0.10, 0.05, 0.01}) {
      auto detector = core::fit_detector(*src, env.stl10, frac, arch, 7, env.scale);
      std::vector<std::string> row = {"BPROM (" + util::cell(100 * frac, 0) + "%)"};
      double avg = 0;
      for (auto a : main_attacks()) {
        auto cell = bprom_cell(detector, *src, a, arch, 750 + (int)a, env.scale);
        row.push_back(util::cell(cell.f1));
        avg += cell.f1;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    std::printf("== Table 16 (%s): F1 ==\n", src->profile.name.c_str());
    table.print();
  }
  report.write();
  return 0;
}
