// INTERNAL directory-backed store of fitted detectors.
//
// Since the `bprom::api` façade landed, this is an implementation-layer
// type — external consumers should go through api::AuditEngine, which
// layers versioned names ("name@vN"), atomic rollover, and typed Status
// errors (a store of a newer container version is rejected as
// kVersionMismatch instead of an escaping io::IoError) on top of it.
//
// Detectors are expensive to fit (a whole shadow population) but cheap to
// load, so the serving front end keeps them on disk as `<name>.bprom`
// containers and caches loads in memory.  The store hands out shared_ptr
// to *const* detectors: inspection is const and thread-safe across
// requests, so one cached detector serves a whole audit fleet.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bprom.hpp"
#include "util/thread_annotations.hpp"

namespace bprom::serve {

/// Start token of a live process: the `starttime` field of
/// `/proc/<pid>/stat` (clock ticks since boot at exec time).  A (pid,
/// starttime) pair names a process incarnation uniquely for the uptime of
/// the machine — a recycled pid gets a different starttime — which is what
/// makes lock-liveness checks immune to pid reuse.  Returns nullopt when
/// the process does not exist or /proc is unreadable (non-Linux).
std::optional<std::uint64_t> process_start_token(long pid);

/// Cross-process publish lock over a store directory, held for the span of
/// a scan-and-write rollover.  The lock is an O_EXCL-created file
/// (`.publish.lock`) inside the directory: creation is atomic on every
/// POSIX filesystem, so exactly one engine — in this process or any other —
/// can hold it.  The constructor spins (yield + millisecond naps) until it
/// wins; the destructor unlinks.
///
/// Stale-lock breaking is two-tier.  The holder writes a
/// "<pid> <starttime>\n" breadcrumb; a waiter that can prove the holder is
/// dead — the pid is gone, or it now names a *different* process (start
/// token mismatch, i.e. pid reuse) — breaks the lock immediately.  When
/// liveness cannot be decided (holder alive, crumb unreadable, old-format
/// crumb without a token), the waiter falls back to the mtime rule: a lock
/// older than `kStaleAfterSeconds` is debris — publishes take milliseconds,
/// so a minute-old lock is never live.
class BPROM_SCOPED_CAPABILITY StoreLock {
 public:
  static constexpr const char* kLockName = ".publish.lock";
  static constexpr double kStaleAfterSeconds = 60.0;

  /// Blocks until acquired.  Throws io::IoError when the directory cannot
  /// hold a lock file at all (missing, unwritable).
  explicit StoreLock(const std::string& directory) BPROM_ACQUIRE();
  ~StoreLock() BPROM_RELEASE();

  StoreLock(const StoreLock&) = delete;
  StoreLock& operator=(const StoreLock&) = delete;

 private:
  std::string path_;
};

/// One problem found (and handled) by DetectorStore::recover().
struct RecoveryIssue {
  enum class Kind : std::uint8_t {
    kTempFile,            ///< leftover .tmp from a torn publish — quarantined
    kCorrupt,             ///< truncated / CRC-failed container — quarantined
    kVersionMismatch,     ///< newer-format container — left in place
    kStaleLock,           ///< publish lock debris from a dead writer
    kGenerationRepaired,  ///< .generation missing/corrupt — rebuilt
  };
  Kind kind;
  std::string file;            ///< filename relative to the store directory
  std::string detail;          ///< human-readable cause (parser message, …)
  std::string quarantined_as;  ///< destination under quarantine/, if moved
};

/// Outcome of a recovery scan.
struct RecoveryReport {
  std::vector<RecoveryIssue> issues;
  std::size_t artifacts_ok = 0;   ///< containers that parsed cleanly
  std::uint64_t generation = 0;   ///< generation after any repair
  [[nodiscard]] bool clean() const { return issues.empty(); }
};

class DetectorStore {
 public:
  /// Opens (and creates if needed) the backing directory.
  explicit DetectorStore(std::string directory);

  [[nodiscard]] const std::string& directory() const { return dir_; }

  /// Filesystem path a named detector lives at.
  [[nodiscard]] std::string path_for(const std::string& name) const;

  /// Save a fitted detector under `name` and cache it; returns the cached
  /// handle.  Throws io::IoError on unfitted detectors or write failure.
  std::shared_ptr<const core::BpromDetector> put(const std::string& name,
                                                 core::BpromDetector detector);

  /// Cached detector, loading from disk on first use.  Throws io::IoError
  /// when the name has never been stored.  A freshly *loaded* detector gets
  /// `pool_for_loaded` installed before it is published to the cache (the
  /// pool is runtime-only and never persisted); cached entries keep the
  /// pool they already carry.
  std::shared_ptr<const core::BpromDetector> get(
      const std::string& name, util::ThreadPool* pool_for_loaded = nullptr);

  /// True when `name` is cached or present on disk.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Names of every detector on disk, sorted.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Drop a name from the in-memory cache (the file stays on disk).
  void evict(const std::string& name);

  /// Store generation: a counter file (`.generation`) bumped by every
  /// publish, under the StoreLock.  Readers use it as a cheap cross-process
  /// change signal — "has anyone published since I last looked?" without a
  /// directory walk.  0 means the store predates generations (or is empty).
  [[nodiscard]] std::uint64_t generation() const;

  /// Increment and persist the generation (temp-file + rename, so readers
  /// never see a torn counter).  Callers must hold the StoreLock — the
  /// read-modify-write is not atomic on its own.
  std::uint64_t bump_generation();

  /// Crash-recovery scan.  Takes the StoreLock itself, then walks the
  /// directory: leftover publish temp files and containers that fail to
  /// parse (truncated, CRC mismatch, bad magic) are MOVED into
  /// `quarantine/` — never deleted — and reported; containers written by a
  /// newer format version are reported but left in place (an upgraded
  /// build can still serve them); a missing or corrupt `.generation` is
  /// rebuilt from the surviving artifact count.  Healthy stores pass
  /// through untouched (`report.clean()`), and a healthy generation is
  /// never changed.  Quarantined names are also dropped from the in-memory
  /// cache.  Throws io::IoError only when the directory itself is
  /// unusable.
  RecoveryReport recover();

 private:
  /// Cached handle for `name`, or null.  The lookup half of get()'s
  /// check-then-load-then-publish sequence (the load runs unlocked so a
  /// slow disk read cannot serialize unrelated lookups; losers of the
  /// publish race adopt the winner's handle).
  [[nodiscard]] std::shared_ptr<const core::BpromDetector> cached_locked(
      const std::string& name) const BPROM_REQUIRES(mu_);

  /// Persist an explicit generation value (temp-file + rename).
  void write_generation(std::uint64_t value);

  std::string dir_;
  mutable util::Mutex mu_;
  std::map<std::string, std::shared_ptr<const core::BpromDetector>> cache_
      BPROM_GUARDED_BY(mu_);
};

}  // namespace bprom::serve
