// Mini-batch trainer for Model over in-memory labeled data.
#pragma once

#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace bprom::nn {

/// A labeled image set kept fully in memory (all substrates are synthetic
/// and small).
struct LabeledData {
  Tensor images;            // [N, C, H, W]
  std::vector<int> labels;  // size N

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

struct TrainConfig {
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  /// Multiply lr by this each epoch (simple exponential decay).
  float lr_decay = 0.85F;
  std::uint64_t seed = 1;
};

struct TrainHistory {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

/// SGD training with shuffling; returns per-epoch loss/accuracy.
TrainHistory train_classifier(Model& model, const LabeledData& data,
                              const TrainConfig& config);

/// Evaluate accuracy in batches (avoids giant activations on big sets).
double evaluate_accuracy(Model& model, const LabeledData& data,
                         std::size_t batch_size = 128);

}  // namespace bprom::nn
