// Table 1: input-level detectors (TeCo, SCALE-UP) collapse on clean models.
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kWaNet};
  util::TablePrinter table({"detector", "metric", "BadNets bd", "BadNets cln",
                            "Blend bd", "Blend cln", "WaNet bd", "WaNet cln"});
  for (auto d : {defenses::DefenseKind::kTeco, defenses::DefenseKind::kScaleUp}) {
    std::vector<std::string> f1_row = {defenses::defense_name(d), "F1"};
    std::vector<std::string> au_row = {defenses::defense_name(d), "AUROC"};
    for (auto a : kinds) {
      util::Rng rng(50 + (int)a);
      auto atk = attacks::AttackConfig::defaults(a);
      auto bd = core::train_backdoored_model(env.cifar10, atk, arch, 60 + (int)a, env.scale);
      auto eval_bd = defenses::evaluate_input_level(d, *bd.model, env.cifar10.test, atk, 40, rng);
      auto cln = core::train_clean_model(env.cifar10, arch, 70 + (int)a, env.scale);
      auto eval_cln = defenses::evaluate_input_level(d, *cln.model, env.cifar10.test, atk, 40, rng);
      f1_row.push_back(util::cell(eval_bd.f1));
      f1_row.push_back(util::cell(eval_cln.f1));
      au_row.push_back(util::cell(eval_bd.auroc));
      au_row.push_back(util::cell(eval_cln.auroc));
    }
    table.add_row(f1_row);
    table.add_row(au_row);
  }
  std::printf("== Table 1: input-level detection, backdoored vs clean model ==\n");
  table.print();
  return 0;
}
