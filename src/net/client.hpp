// net::Client — the blocking client half of the BPROM network protocol.
//
// A deliberately small, synchronous library: one TCP connection, typed
// calls (`audit`, `audit_batch`, `stats`, `info`) that mirror the
// api::AuditEngine façade, and the same typed api::Status vocabulary on
// every failure.  Transport-level problems (connect/send/recv failures,
// corrupt or unparseable frames) fail the *call*; per-request problems
// (unknown detector, exhausted budget, admission rejections) come back as
// non-OK statuses inside the matching response, exactly like the
// in-process engine.
//
// `audit_batch` is pipelined: every request frame is written before the
// first response is read, so a batch costs one round trip plus server
// time instead of N round trips.  The server may complete requests out of
// order (its serving workers race); responses are matched back to their
// slots by the echoed request id, so callers always see batch order.
//
// Not thread-safe: one Client is one connection with one in-flight call.
// Open one Client per thread (connections are cheap; the server's
// admission budgets are per connection anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace bprom::nn {
class Model;
}  // namespace bprom::nn

namespace bprom::net {

/// Opt-in reconnect-and-retry for idempotent calls (audits: the verdict is
/// a pure function of detector content, engine seed, and batch salt, so a
/// replay under the same request id returns bit-identical bytes).  Only
/// TRANSPORT failures retry — kInternal from a dead socket / injected
/// fault, kDeadlineExceeded from a transport timeout.  Typed application
/// rejections (kBudgetExhausted, kVersionMismatch, kNotFound, ...) arrive
/// in-band in a response slot and are final: retrying them would re-spend
/// server budgets on a request the server already refused.
struct RetryPolicy {
  /// Total attempts, first try included.  1 = no retry (the default).
  int max_attempts = 1;
  /// Exponential backoff between attempts:
  /// min(initial * multiplier^(attempt-1), max) + jitter.
  int backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  int backoff_max_ms = 1000;
  /// Deterministic jitter stream (0..backoff/2 ms per wait) — seeded, so a
  /// replayed test schedule backs off identically.
  std::uint64_t jitter_seed = 0;
};

struct ClientConfig {
  /// Numeric IPv4 server address.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Ceiling on one received frame's body (mirror of the server knob).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Transport deadlines, milliseconds; 0 = legacy blocking waits (a hung
  /// peer hangs the call).  Any non-zero value switches the connection to
  /// non-blocking + poll, surfacing kDeadlineExceeded on expiry.
  int connect_timeout_ms = 0;
  int send_timeout_ms = 0;
  int recv_timeout_ms = 0;
  /// Reconnect-and-retry policy for audit calls (see RetryPolicy).
  RetryPolicy retry;
};

/// One audit to submit over the wire.  The model is borrowed and gets
/// serialized into the request frame (non-const: nn::Model::save walks
/// mutable layer state); it only needs to outlive the call.
struct ClientAuditRequest {
  std::string model_id;
  std::string detector;
  nn::Model* model = nullptr;
  std::uint64_t query_budget = api::kUnlimitedQueries;
  std::uint64_t deadline_ms = 0;
};

class Client {
 public:
  /// Connect (blocking) to a running net::Server.
  static api::Result<Client> connect(const ClientConfig& config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Audit one model; the engine's response, typed failures in-band.
  api::Result<api::AuditResponse> audit(const ClientAuditRequest& request);

  /// Pipelined batch: all requests are sent before responses are read.
  /// The returned vector keeps request order; admission rejections and
  /// per-request failures are non-OK statuses in the matching slot.
  api::Result<std::vector<api::AuditResponse>> audit_batch(
      const std::vector<ClientAuditRequest>& requests);

  /// EngineStats + the server's transport/admission counters.
  api::Result<StatsResponseMsg> stats();

  /// Metadata of a published detector ("name" or pinned "name@vN").
  api::Result<api::DetectorInfo> info(const std::string& detector);

  /// Ask the server to drain gracefully (stop accepting, finish in-flight
  /// audits, flush, close).  OK means the drain began; the connection is
  /// closed by the server once its write queue empties.  Never retried.
  api::Status shutdown();

  /// Drop the connection; subsequent calls fail kFailedPrecondition
  /// (unless the retry policy reconnects them).
  void close() { sock_.close(); }

  [[nodiscard]] bool connected() const { return sock_.valid(); }

 private:
  explicit Client(Socket sock, const ClientConfig& config)
      : sock_(std::move(sock)),
        config_(config),
        assembler_(config.max_frame_bytes),
        jitter_(config.retry.jitter_seed) {}

  /// True when any transport timeout is configured — the socket is then
  /// non-blocking and all IO goes through the poll-based helpers.
  [[nodiscard]] bool bounded() const {
    return config_.connect_timeout_ms > 0 || config_.send_timeout_ms > 0 ||
           config_.recv_timeout_ms > 0;
  }

  /// Re-establish the connection with a fresh frame assembler.
  api::Status reconnect();

  /// Block until one complete frame arrives (or the stream dies/times out).
  api::Status read_frame(FrameHeader* header, std::vector<std::uint8_t>* body);
  api::Status send_frame(MsgType type, std::uint64_t request_id,
                         const io::Writer& body);

  /// One pipelined send+collect pass over the batch's unanswered slots.
  api::Status audit_round(const std::vector<ClientAuditRequest>& requests,
                          const std::vector<std::uint64_t>& ids,
                          std::vector<bool>* answered,
                          std::vector<api::AuditResponse>* out);

  Socket sock_;
  ClientConfig config_;
  FrameAssembler assembler_;
  std::uint64_t next_id_ = 1;
  util::Rng jitter_;
};

}  // namespace bprom::net
