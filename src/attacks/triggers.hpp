// Trigger application engine.
//
// TriggerEngine precomputes the (seeded) trigger artifacts for one attack
// configuration — patch pattern, blend noise, warp field, sinusoid, ghost
// image — and stamps them onto images in place.  Sample-specific attacks
// derive per-image state from an image content hash, exactly because that
// is what defeats universal-trigger defenses.
#pragma once

#include "attacks/attack.hpp"
#include "tensor/tensor.hpp"

namespace bprom::attacks {

using tensor::Tensor;

class TriggerEngine {
 public:
  TriggerEngine(const AttackConfig& config, nn::ImageShape shape);

  /// Stamp the trigger onto sample `index` of the batch, in place.
  void apply(Tensor& images, std::size_t index) const;

  /// Stamp all samples of a batch, in place.
  void apply_all(Tensor& images) const;

  [[nodiscard]] const AttackConfig& config() const { return config_; }
  [[nodiscard]] const nn::ImageShape& shape() const { return shape_; }

 private:
  void apply_patch(float* img, const Tensor& pattern, std::size_t top,
                   std::size_t left, std::size_t side, double alpha) const;
  void apply_badnets(float* img) const;
  void apply_blend(float* img) const;
  void apply_trojan(float* img) const;
  void apply_wanet(float* img) const;
  void apply_dynamic(float* img) const;
  void apply_bpp(float* img) const;
  void apply_sig(float* img) const;
  void apply_lc(float* img) const;
  void apply_refool(float* img) const;
  void apply_poison_ink(float* img) const;

  AttackConfig config_;
  nn::ImageShape shape_;
  Tensor patch_pattern_;          // [C, s, s] for patch attacks
  Tensor blend_noise_;            // [C, H, W] for blend / refool ghost
  std::vector<float> warp_dx_;    // [H*W] displacement field (WaNet)
  std::vector<float> warp_dy_;
};

}  // namespace bprom::attacks
