// Black-box prompt learning for the suspicious model: CMA-ES over theta,
// scored purely by confidence-vector queries (the paper's Section 5.2).
#pragma once

#include "nn/blackbox.hpp"
#include "nn/trainer.hpp"
#include "opt/cma_es.hpp"
#include "vp/prompted_model.hpp"

namespace bprom::vp {

enum class BlackBoxOptimizer {
  /// SPSA: simultaneous-perturbation stochastic gradient descent.  Two
  /// queries per step; behaves like noisy gradient descent and reaches the
  /// same adaptation regime as the shadows' white-box prompts, which is why
  /// it is the default (ablated against CMA-ES in bench_ablations).
  kSpsa,
  /// CMA-ES — the optimizer the paper names.
  kCmaEs,
};

struct BlackBoxPromptConfig {
  /// Objective-evaluation subsample drawn from the target training set.
  std::size_t eval_samples = 48;
  std::size_t max_evaluations = 400;
  double sigma0 = 1.0;
  BlackBoxOptimizer optimizer = BlackBoxOptimizer::kSpsa;
  opt::CovarianceMode mode = opt::CovarianceMode::kSeparable;
  std::uint64_t seed = 5;
};

struct BlackBoxPromptResult {
  VisualPrompt prompt;
  double final_loss = 0.0;
  /// Exact total queries issued while learning — those served by `model`
  /// itself plus those served by internal replicate() copies when candidate
  /// evaluation fans out over threads.
  std::size_t queries = 0;
  /// The subset of `queries` served by internal replicas.  These never show
  /// up on the caller's model counter, so callers that track query budgets
  /// through their own counters must add this back (BpromDetector::inspect
  /// does) to stay exact.
  std::size_t replica_queries = 0;
  /// True when `max_evaluations` could not cover a single optimizer
  /// evaluation: `prompt` is then the unoptimized zero prompt.  Callers that
  /// owe their users a typed error (the api façade) check this instead of
  /// trusting the silent default.
  bool budget_exhausted = false;
};

/// Learn theta with CMA-ES; the objective is the cross-entropy of the
/// prompted confidence vectors on a fixed target subsample.
BlackBoxPromptResult learn_prompt_blackbox(
    const nn::BlackBoxModel& model, const nn::LabeledData& target_train,
    const BlackBoxPromptConfig& config);

}  // namespace bprom::vp
