// Training-data-level baseline defenses: score each training sample's
// likelihood of being a poison, given the (suspicious) model trained on it.
// AUROC is computed against the poisoner's ground-truth mask.
#pragma once

#include <vector>

#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace bprom::defenses {

using nn::LabeledData;

/// AC — Activation Clustering (Chen et al. 2018): per class, 2-means on
/// penultimate activations; samples in the smaller cluster of a class with
/// a strong silhouette are suspicious.
std::vector<double> ac_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes, util::Rng& rng);

/// SS — Spectral Signatures (Tran et al. 2018): per class, squared
/// projection onto the top singular direction of centered activations.
std::vector<double> ss_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes);

/// SPECTRE (Hayase et al. 2021): whiten activations per class, then score by
/// the QUE-style amplified projection (robust covariance approximated by
/// the diagonal + top-direction amplification).
std::vector<double> spectre_sample_scores(nn::Model& model,
                                          const LabeledData& train,
                                          std::size_t classes);

/// SCAn (Tang et al. 2021): per-class two-component untangling; score =
/// gain of a two-mean model over a one-mean model along the top deviation
/// direction (likelihood-ratio surrogate).
std::vector<double> scan_sample_scores(nn::Model& model,
                                       const LabeledData& train,
                                       std::size_t classes);

/// CT — Confusion Training (Qi et al. 2023): co-train a proxy on the
/// training set with randomized-label confusion batches; poisoned samples
/// are the ones the confused proxy still fits (the trigger shortcut survives
/// label noise).  Score = post-confusion margin toward the sample's label.
std::vector<double> ct_sample_scores(nn::Model& model,
                                     const LabeledData& train,
                                     std::size_t classes, util::Rng& rng);

}  // namespace bprom::defenses
