#include "core/bprom.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "data/ops.hpp"
#include "util/log.hpp"
#include "util/scratch.hpp"

namespace bprom::core {

BpromDetector::BpromDetector(BpromConfig config)
    : config_(std::move(config)), forest_(config_.forest) {}

std::vector<float> BpromDetector::meta_feature_vector(
    const nn::BlackBoxModel& model, const vp::VisualPrompt& prompt) const {
  vp::PromptedModel prompted(model, prompt);
  prompted.set_label_mapping(vp::fit_frequency_label_mapping(
      prompted, target_train_, target_classes_));
  nn::Tensor probs = prompted.predict_proba(query_set_.images);
  assert(probs.dim(1) == source_classes_);

  const std::size_t q = query_set_.size();
  const std::size_t k = source_classes_;
  std::vector<float> features;
  features.reserve(q * (k + 1) + target_classes_ + 8);
  const auto& mapping = prompted.label_mapping();

  // Block 1 — the paper's Algorithm 1 features: the q query confidence
  // vectors, plus the per-query probability mass on the class the learned
  // output mapping expects (the per-query form of prompted accuracy).
  // The row staging buffer comes from the thread's scratch arena — this
  // runs once per ensemble member per inspection, and the loop never
  // re-enters the pool, so the pointer is safe for its whole extent.
  float* row_buf =
      util::Scratch::tls().buffer<float>(util::Scratch::kMetaRow, k);
  for (std::size_t i = 0; i < q; ++i) {
    std::copy(probs.data() + i * k, probs.data() + (i + 1) * k, row_buf);
    const auto label = static_cast<std::size_t>(query_set_.labels[i]);
    features.push_back(row_buf[static_cast<std::size_t>(mapping[label])]);
    if (!config_.include_query_features) continue;
    if (config_.sort_confidence_features) {
      std::sort(row_buf, row_buf + k, std::greater<float>());
    }
    features.insert(features.end(), row_buf, row_buf + k);
  }

  // Block 2 — distribution-level class-subspace-inconsistency summaries
  // over the full D_T sets (low-variance forms of the paper's signal; see
  // DESIGN.md §2).  All derive from black-box confidence vectors.
  nn::Tensor train_probs = prompted.predict_proba(target_train_.images);
  // Scratch-backed counting buffers, claimed only after the predict_proba
  // pool fan-out above (scratch pointers must never straddle a
  // parallel_for).  Histogram and per-class counts share one slot; the
  // confusion matrix is flattened target-major.
  std::size_t* pred_hist = util::Scratch::tls().buffer<std::size_t>(
      util::Scratch::kMetaHist, k + target_classes_);
  std::size_t* class_n = pred_hist + k;
  std::fill(pred_hist, pred_hist + k + target_classes_, std::size_t{0});
  std::size_t* confusion = util::Scratch::tls().buffer<std::size_t>(
      util::Scratch::kMetaConfusion, target_classes_ * k);
  std::fill(confusion, confusion + target_classes_ * k, std::size_t{0});
  double mean_max = 0.0;
  double mean_entropy = 0.0;
  const std::size_t n_train = target_train_.size();
  for (std::size_t i = 0; i < n_train; ++i) {
    const float* row = train_probs.data() + i * k;
    std::size_t arg = 0;
    double entropy = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (row[j] > row[arg]) arg = j;
      if (row[j] > 1e-9F) {
        entropy -= static_cast<double>(row[j]) *
                   std::log(static_cast<double>(row[j]));
      }
    }
    ++pred_hist[arg];
    ++confusion[static_cast<std::size_t>(target_train_.labels[i]) * k + arg];
    mean_max += row[arg];
    mean_entropy += entropy;
  }
  // Dominance: mass of the most-predicted source class ("target class
  // adjacent to all others" concentrates predictions).
  const double dominance =
      static_cast<double>(*std::max_element(pred_hist, pred_hist + k)) /
      static_cast<double>(n_train);
  // Collisions: how many target classes share their most-frequent source
  // prediction with another target class (subspace merging).
  std::vector<std::size_t> raw_map(target_classes_);
  for (std::size_t t = 0; t < target_classes_; ++t) {
    const std::size_t* crow = confusion + t * k;
    raw_map[t] =
        static_cast<std::size_t>(std::max_element(crow, crow + k) - crow);
  }
  std::vector<std::size_t> distinct = raw_map;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  const double collisions = static_cast<double>(target_classes_ -
                                                distinct.size()) /
                            static_cast<double>(target_classes_);
  // Per-class mapped accuracy profile on D_T^train, sorted ascending:
  // a poisoned source model caps several classes near zero.
  float* class_acc = util::Scratch::tls().buffer<float>(
      util::Scratch::kMetaClassAcc, target_classes_);
  std::fill(class_acc, class_acc + target_classes_, 0.0F);
  for (std::size_t i = 0; i < n_train; ++i) {
    const float* row = train_probs.data() + i * k;
    std::size_t arg = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    const auto t = static_cast<std::size_t>(target_train_.labels[i]);
    ++class_n[t];
    if (static_cast<int>(arg) == mapping[t]) class_acc[t] += 1.0F;
  }
  for (std::size_t t = 0; t < target_classes_; ++t) {
    if (class_n[t] > 0) class_acc[t] /= static_cast<float>(class_n[t]);
  }
  std::sort(class_acc, class_acc + target_classes_);

  features.push_back(static_cast<float>(dominance));
  features.push_back(static_cast<float>(collisions));
  features.push_back(static_cast<float>(mean_max / n_train));
  features.push_back(static_cast<float>(mean_entropy / n_train));
  features.insert(features.end(), class_acc, class_acc + target_classes_);
  return features;
}

void BpromDetector::fit(const nn::LabeledData& reserved_clean,
                        std::size_t source_classes,
                        const nn::LabeledData& target_train,
                        const nn::LabeledData& target_test) {
  assert(reserved_clean.size() > 0 && target_train.size() > 0 &&
         target_test.size() > 0);
  source_classes_ = source_classes;
  target_train_ = target_train;
  target_test_ = target_test;
  target_classes_ = 0;
  for (int label : target_train.labels) {
    target_classes_ =
        std::max(target_classes_, static_cast<std::size_t>(label) + 1);
  }
  assert(target_classes_ <= source_classes_ &&
         "identity/frequency output mapping requires K_T <= K_S");
  diag_ = FitDiagnostics{};

  util::Rng rng(config_.seed);
  const nn::ImageShape shape{reserved_clean.images.dim(1),
                             reserved_clean.images.dim(2),
                             reserved_clean.images.dim(3)};

  // D_Q: fixed random query samples from D_T^test.
  const std::size_t q = std::min(config_.query_samples, target_test.size());
  query_set_ = data::subset(
      target_test, rng.sample_without_replacement(target_test.size(), q));

  const std::size_t total =
      config_.clean_shadows + config_.backdoor_shadows;
  std::vector<std::vector<float>> features(total);
  std::vector<int> labels(total);
  std::vector<double> shadow_acc(total, 0.0);

  // Per-shadow Rng streams are split off sequentially on this thread so the
  // draw order — and therefore every trained shadow — is identical no matter
  // how many pool threads execute the loop below.
  std::vector<util::Rng> streams;
  streams.reserve(total);
  for (std::size_t i = 0; i < total; ++i) streams.push_back(rng.split(i + 1));

  // Shadow generation + prompt learning is embarrassingly parallel: each
  // task owns its model, its Rng stream, and its output slots.
  util::parallel_for(total, [&](std::size_t i) {
    const bool is_backdoor = i >= config_.clean_shadows;
    util::Rng model_rng = streams[i];

    // Clean shadows train on the shared set directly — copying it per task
    // would scale transient memory with the thread count.
    nn::LabeledData poisoned_set;
    const nn::LabeledData* train_set = &reserved_clean;
    if (is_backdoor) {
      // Sample a fresh trigger combination (m, t, alpha, y_t) per shadow.
      attacks::AttackConfig atk =
          attacks::AttackConfig::defaults(config_.shadow_attack);
      atk.poison_rate = config_.shadow_poison_rate;
      atk.target_class =
          static_cast<int>(model_rng.uniform_index(source_classes_));
      atk.seed = model_rng.next_u64();
      poisoned_set = attacks::poison_dataset(reserved_clean, atk, model_rng).data;
      train_set = &poisoned_set;
    }

    auto shadow = nn::make_model(config_.shadow_arch, shape, source_classes_,
                                 model_rng);
    nn::TrainConfig tc = config_.shadow_train;
    tc.seed = model_rng.next_u64();
    nn::train_classifier(*shadow, *train_set, tc);

    nn::BlackBoxAdapter adapter(*shadow);
    const std::size_t ensemble = std::max<std::size_t>(1, config_.prompt_ensemble);
    std::vector<float> mean_feature;
    double acc = 0.0;
    for (std::size_t r = 0; r < ensemble; ++r) {
      vp::VisualPrompt prompt = [&] {
        if (config_.prompt_shadows_blackbox) {
          vp::BlackBoxPromptConfig pc = config_.prompt_blackbox;
          pc.seed = model_rng.next_u64();
          return vp::learn_prompt_blackbox(adapter, target_train_, pc).prompt;
        }
        vp::WhiteBoxPromptConfig pc = config_.prompt_whitebox;
        pc.seed = model_rng.next_u64();
        return vp::learn_prompt_whitebox(*shadow, target_train_, pc);
      }();

      vp::PromptedModel prompted(adapter, prompt);
      prompted.set_label_mapping(vp::fit_frequency_label_mapping(
          prompted, target_train_, target_classes_));
      acc += prompted.accuracy(target_test_);

      auto feature = meta_feature_vector(adapter, prompt);
      if (mean_feature.empty()) {
        mean_feature = std::move(feature);
      } else {
        for (std::size_t j = 0; j < mean_feature.size(); ++j) {
          mean_feature[j] += feature[j];
        }
      }
    }
    for (auto& v : mean_feature) v /= static_cast<float>(ensemble);
    acc /= static_cast<double>(ensemble);
    shadow_acc[i] = acc;
    features[i] = std::move(mean_feature);
    labels[i] = is_backdoor ? 1 : 0;
    util::log_debug() << "shadow " << i << (is_backdoor ? " (backdoor)" : " (clean)")
                      << " prompted acc " << acc;
  }, config_.pool);

  // Collected after the join so diagnostics keep the serial ordering (clean
  // shadows first, ascending index) regardless of completion order.
  for (std::size_t i = 0; i < total; ++i) {
    if (i >= config_.clean_shadows) {
      diag_.backdoor_shadow_prompted_accuracy.push_back(shadow_acc[i]);
    } else {
      diag_.clean_shadow_prompted_accuracy.push_back(shadow_acc[i]);
    }
  }

  forest_ = meta::RandomForest(config_.forest);
  forest_.fit(features, labels);
  diag_.meta_features = std::move(features);
  diag_.meta_labels = std::move(labels);
  fitted_ = true;
}

api::Status BpromDetector::inspectable(const nn::BlackBoxModel* model) const {
  if (model == nullptr) {
    return api::Status::InvalidRequest("null model");
  }
  if (!fitted_) {
    return api::Status::FailedPrecondition("detector is not fitted");
  }
  if (model->num_classes() != source_classes_) {
    return api::Status::InvalidRequest(
        "model reports " + std::to_string(model->num_classes()) +
        " classes but the detector was fitted for " +
        std::to_string(source_classes_));
  }
  return api::Status::Ok();
}

Verdict BpromDetector::inspect(const nn::BlackBoxModel& suspicious,
                               std::uint64_t seed_salt,
                               const InspectDeadline* deadline) const {
  assert(fitted_);
  assert(suspicious.num_classes() == source_classes_);
  const std::size_t queries_before = suspicious.query_count();

  // Black-box prompt learning (CMA-ES) — the only access to the suspicious
  // model is confidence-vector queries.  An ensemble of independently
  // seeded prompts suppresses prompt-optimization noise.  Each ensemble
  // member depends only on its index, so members run on per-thread model
  // replicas when the black box supports replicate(); the replicas are
  // exact deep copies, making the parallel result bit-identical to the
  // serial one for any thread count.
  Verdict verdict;
  const std::size_t ensemble = std::max<std::size_t>(1, config_.prompt_ensemble);
  std::vector<std::vector<float>> features(ensemble);
  std::vector<double> accuracies(ensemble, 0.0);
  // Queries that prompt learning served on its own internal replicas; they
  // never reach the counter of the box a member sees, so they must be added
  // back explicitly for the verdict's accounting to stay exact.
  std::vector<std::size_t> hidden_queries(ensemble, 0);
  std::vector<char> exhausted(ensemble, 0);
  std::vector<char> skipped(ensemble, 0);

  const auto run_member = [&](std::size_t r, const nn::BlackBoxModel& box) {
    // The deadline boundary: a member either starts in time and runs to
    // completion (an optimization cannot be split mid-stream) or is skipped
    // outright.  On a serial run this is literally "between ensemble
    // members"; on a replica run it gates each member as its turn comes up
    // on the pool.
    if (deadline != nullptr && deadline->expired()) {
      skipped[r] = 1;
      return;
    }
    vp::BlackBoxPromptConfig pc = config_.prompt_blackbox;
    pc.seed = config_.prompt_blackbox.seed + seed_salt + 7919 * (r + 1);
    auto bb = vp::learn_prompt_blackbox(box, target_train_, pc);
    hidden_queries[r] = bb.replica_queries;
    exhausted[r] = bb.budget_exhausted ? 1 : 0;

    features[r] = meta_feature_vector(box, bb.prompt);
    vp::PromptedModel prompted(box, bb.prompt);
    prompted.set_label_mapping(vp::fit_frequency_label_mapping(
        prompted, target_train_, target_classes_));
    accuracies[r] = prompted.accuracy(target_test_);
  };

  std::vector<std::unique_ptr<nn::BlackBoxModel>> replicas;
  if (ensemble > 1) {
    replicas.reserve(ensemble);
    for (std::size_t r = 0; r < ensemble; ++r) {
      auto replica = suspicious.replicate();
      if (!replica) {
        replicas.clear();
        break;
      }
      replicas.push_back(std::move(replica));
    }
  }

  if (!replicas.empty()) {
    util::parallel_for(ensemble,
                       [&](std::size_t r) { run_member(r, *replicas[r]); },
                       config_.pool);
  } else {
    // One model instance is single-threaded (forward passes cache
    // activations), so a non-replicable black box runs the ensemble
    // serially — same per-member work, same results.
    for (std::size_t r = 0; r < ensemble; ++r) run_member(r, suspicious);
  }

  // A deadline abort short-circuits the reduction: some feature slots were
  // never filled, and the verdict's only meaningful payload is the exact
  // query spend of the members that did run.
  bool any_skipped = false;
  for (char s : skipped) any_skipped |= (s != 0);
  if (any_skipped) {
    verdict.deadline_exceeded = true;
    verdict.queries = suspicious.query_count() - queries_before;
    for (const auto& replica : replicas) {
      verdict.queries += replica->query_count();
    }
    for (std::size_t q : hidden_queries) verdict.queries += q;
    return verdict;
  }

  // Reduce in ascending member order so the float accumulation matches the
  // serial loop exactly.
  std::vector<float> mean_feature = std::move(features[0]);
  for (std::size_t r = 1; r < ensemble; ++r) {
    for (std::size_t j = 0; j < mean_feature.size(); ++j) {
      mean_feature[j] += features[r][j];
    }
  }
  for (auto& v : mean_feature) v /= static_cast<float>(ensemble);
  for (double acc : accuracies) verdict.prompted_accuracy += acc;
  verdict.prompted_accuracy /= static_cast<double>(ensemble);
  verdict.score = forest_.predict_proba(mean_feature);
  verdict.backdoored = verdict.score >= 0.5;
  verdict.queries = suspicious.query_count() - queries_before;
  for (const auto& replica : replicas) verdict.queries += replica->query_count();
  for (std::size_t q : hidden_queries) verdict.queries += q;
  for (char e : exhausted) verdict.budget_exhausted |= (e != 0);
  return verdict;
}

}  // namespace bprom::core
