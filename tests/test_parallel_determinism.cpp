// Determinism regression for the parallel shadow pipeline: the same root
// seed must yield bit-identical detectors, diagnostics, and population
// scores no matter how many pool threads execute the work.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "util/thread_pool.hpp"

namespace bprom {
namespace {

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 2;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

TEST(ParallelDeterminism, FitDetectorDiagnosticsMatchAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 11, 500, 200);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 12, 400, 200);
  const auto scale = micro_scale();

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  auto serial = core::fit_detector(src, tgt, 0.10, nn::ArchKind::kResNet18Mini,
                                   7, scale, &one);
  auto parallel = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale,
                                     &four);

  const auto& a = serial.diagnostics();
  const auto& b = parallel.diagnostics();
  EXPECT_EQ(a.meta_labels, b.meta_labels);
  EXPECT_EQ(a.clean_shadow_prompted_accuracy, b.clean_shadow_prompted_accuracy);
  EXPECT_EQ(a.backdoor_shadow_prompted_accuracy,
            b.backdoor_shadow_prompted_accuracy);
  ASSERT_EQ(a.meta_features.size(), b.meta_features.size());
  for (std::size_t i = 0; i < a.meta_features.size(); ++i) {
    EXPECT_EQ(a.meta_features[i], b.meta_features[i]) << "shadow " << i;
  }
}

TEST(ParallelDeterminism, PopulationAndScoresMatchAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 13, 500, 200);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 14, 400, 200);
  const auto scale = micro_scale();
  const auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale,
                                     &one);

  auto pop_serial = core::build_population(src, atk,
                                           nn::ArchKind::kResNet18Mini, 2, 40,
                                           scale, &one);
  auto pop_parallel = core::build_population(src, atk,
                                             nn::ArchKind::kResNet18Mini, 2,
                                             40, scale, &four);
  ASSERT_EQ(pop_serial.size(), pop_parallel.size());
  for (std::size_t i = 0; i < pop_serial.size(); ++i) {
    EXPECT_EQ(pop_serial[i].backdoored, pop_parallel[i].backdoored);
    EXPECT_DOUBLE_EQ(pop_serial[i].clean_accuracy,
                     pop_parallel[i].clean_accuracy);
    EXPECT_DOUBLE_EQ(pop_serial[i].asr, pop_parallel[i].asr);
  }

  auto scores_serial = core::score_population(detector, pop_serial, &one);
  auto scores_parallel = core::score_population(detector, pop_parallel, &four);
  EXPECT_EQ(scores_serial.labels, scores_parallel.labels);
  ASSERT_EQ(scores_serial.scores.size(), scores_parallel.scores.size());
  for (std::size_t i = 0; i < scores_serial.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores_serial.scores[i], scores_parallel.scores[i]);
  }
}

}  // namespace
}  // namespace bprom
