#include "data/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bprom::data {
namespace {

double logistic(double v) { return 1.0 / (1.0 + std::exp(-v)); }

/// Family constant mixed into every dataset's render-map seed so all render
/// maps share a correlated base; see header comment.
constexpr std::uint64_t kRenderFamily = 0xBA5E11FEULL;

}  // namespace

DatasetGenerator::DatasetGenerator(const DatasetProfile& profile)
    : profile_(profile) {
  util::Rng identity(profile_.identity_seed);
  centers_.resize(profile_.classes);
  for (auto& c : centers_) {
    c.resize(profile_.latent_dim);
    for (auto& v : c) v = identity.normal();
  }

  const std::size_t pixels = profile_.shape.size();
  render_w_.resize(pixels * profile_.latent_dim);
  render_b_.resize(pixels);

  // Base (family-shared) component plus dataset-specific perturbation:
  // w = 0.85 * base + 0.15 * own.  This keeps early visual statistics
  // transferable across datasets while the class semantics differ.
  util::Rng base(kRenderFamily);
  util::Rng own(profile_.identity_seed ^ kRenderFamily);
  const double scale = 1.8 / std::sqrt(static_cast<double>(profile_.latent_dim));
  for (auto& w : render_w_) {
    w = scale * (0.85 * base.normal() + 0.15 * own.normal());
  }
  for (auto& b : render_b_) {
    b = 0.25 * (0.85 * base.normal() + 0.15 * own.normal());
  }
}

void DatasetGenerator::render(const double* z, float* pixels,
                              util::Rng& rng) const {
  const std::size_t n_pixels = profile_.shape.size();
  const std::size_t d = profile_.latent_dim;
  for (std::size_t p = 0; p < n_pixels; ++p) {
    const double* wrow = render_w_.data() + p * d;
    double acc = render_b_[p];
    for (std::size_t j = 0; j < d; ++j) acc += wrow[j] * z[j];
    double v = logistic(acc) + profile_.pixel_noise * rng.normal();
    pixels[p] = static_cast<float>(std::clamp(v, 0.0, 1.0));
  }
}

LabeledData DatasetGenerator::sample(std::size_t n, util::Rng& rng) const {
  LabeledData out;
  out.images = nn::Tensor({n, profile_.shape.channels, profile_.shape.height,
                           profile_.shape.width});
  out.labels.resize(n);
  std::vector<double> z(profile_.latent_dim);
  const std::size_t sample_size = profile_.shape.size();
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % profile_.classes);
    out.labels[i] = cls;
    const auto& mu = centers_[static_cast<std::size_t>(cls)];
    for (std::size_t j = 0; j < z.size(); ++j) {
      z[j] = mu[j] + profile_.cluster_spread * rng.normal();
    }
    render(z.data(), out.images.data() + i * sample_size, rng);
  }
  // Shuffle so class order is not positional.
  auto perm = rng.permutation(n);
  LabeledData shuffled;
  shuffled.images = nn::Tensor(out.images.shape());
  shuffled.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(out.images.data() + perm[i] * sample_size,
              out.images.data() + (perm[i] + 1) * sample_size,
              shuffled.images.data() + i * sample_size);
    shuffled.labels[i] = out.labels[perm[i]];
  }
  return shuffled;
}

LabeledData DatasetGenerator::sample_class(std::size_t n, int cls,
                                           util::Rng& rng) const {
  assert(cls >= 0 && static_cast<std::size_t>(cls) < profile_.classes);
  LabeledData out;
  out.images = nn::Tensor({n, profile_.shape.channels, profile_.shape.height,
                           profile_.shape.width});
  out.labels.assign(n, cls);
  std::vector<double> z(profile_.latent_dim);
  const std::size_t sample_size = profile_.shape.size();
  const auto& mu = centers_[static_cast<std::size_t>(cls)];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < z.size(); ++j) {
      z[j] = mu[j] + profile_.cluster_spread * rng.normal();
    }
    render(z.data(), out.images.data() + i * sample_size, rng);
  }
  return out;
}

Dataset make_dataset(const DatasetProfile& prof, std::uint64_t seed,
                     std::size_t train_size, std::size_t test_size) {
  DatasetGenerator gen(prof);
  util::Rng rng(seed ^ prof.identity_seed);
  Dataset ds;
  ds.profile = prof;
  ds.train = gen.sample(train_size > 0 ? train_size : prof.train_size, rng);
  ds.test = gen.sample(test_size > 0 ? test_size : prof.test_size, rng);
  return ds;
}

Dataset make_dataset(DatasetKind kind, std::uint64_t seed,
                     std::size_t train_size, std::size_t test_size) {
  return make_dataset(profile(kind), seed, train_size, test_size);
}

}  // namespace bprom::data
