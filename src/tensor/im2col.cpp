#include "tensor/im2col.hpp"

#include <cassert>

#include "util/thread_pool.hpp"

namespace bprom::tensor {
namespace {

// Minimum total element count before the batch loop is worth sharding over
// the pool; per-sample blocks are contiguous and disjoint, so the parallel
// result is bit-identical to the serial one.
constexpr std::size_t kParallelElems = std::size_t{1} << 20;

}  // namespace

Tensor im2col(const Tensor& input, const ConvGeometry& g) {
  Tensor cols;
  im2col_into(input, g, cols);
  return cols;
}

void im2col_into(const Tensor& input, const ConvGeometry& g, Tensor& cols) {
  assert(input.rank() == 4);
  const std::size_t n = input.dim(0);
  assert(input.dim(1) == g.in_c && input.dim(2) == g.in_h &&
         input.dim(3) == g.in_w);
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  // Shapes the caller's column tensor — callers reuse one tensor across
  // batches, so in steady state this resize is a no-op.
  // bprom-lint: allow(hot-path-alloc)
  cols.resize({n * oh * ow, g.patch_size()});
  const std::size_t sample_elems = oh * ow * g.patch_size();
  const auto fill_sample = [&](std::size_t b) {
    float* out = cols.data() + b * sample_elems;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t c = 0; c < g.in_c; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long iy =
                static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long ix = static_cast<long>(x * g.stride + kx) -
                              static_cast<long>(g.pad);
              float v = 0.0F;
              if (iy >= 0 && iy < static_cast<long>(g.in_h) && ix >= 0 &&
                  ix < static_cast<long>(g.in_w)) {
                v = input.at4(b, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix));
              }
              *out++ = v;
            }
          }
        }
      }
    }
  };
  if (n > 1 && n * sample_elems >= kParallelElems) {
    util::parallel_for(n, fill_sample);
  } else {
    for (std::size_t b = 0; b < n; ++b) fill_sample(b);
  }
}

Tensor col2im(const Tensor& cols, const ConvGeometry& g, std::size_t batch) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  assert(cols.dim(0) == batch * oh * ow && cols.dim(1) == g.patch_size());
  Tensor img({batch, g.in_c, g.in_h, g.in_w});
  const std::size_t sample_elems = oh * ow * g.patch_size();
  const auto scatter_sample = [&](std::size_t b) {
    const float* in = cols.data() + b * sample_elems;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        for (std::size_t c = 0; c < g.in_c; ++c) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            const long iy =
                static_cast<long>(y * g.stride + ky) - static_cast<long>(g.pad);
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              const long ix = static_cast<long>(x * g.stride + kx) -
                              static_cast<long>(g.pad);
              const float v = *in++;
              if (iy >= 0 && iy < static_cast<long>(g.in_h) && ix >= 0 &&
                  ix < static_cast<long>(g.in_w)) {
                img.at4(b, c, static_cast<std::size_t>(iy),
                        static_cast<std::size_t>(ix)) += v;
              }
            }
          }
        }
      }
    }
  };
  if (batch > 1 && batch * sample_elems >= kParallelElems) {
    util::parallel_for(batch, scatter_sample);
  } else {
    for (std::size_t b = 0; b < batch; ++b) scatter_sample(b);
  }
  return img;
}

}  // namespace bprom::tensor
