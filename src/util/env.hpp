// Experiment scale knobs.
//
// Every bench regenerates a paper table; absolute cost is controlled by a
// single BPROM_SCALE environment variable so CI can smoke-test (0) while a
// workstation runs the full sweep (2).
#pragma once

#include <cstddef>
#include <string>

namespace bprom::util {

enum class Scale { kSmoke = 0, kDefault = 1, kHeavy = 2 };

/// Reads BPROM_SCALE (0/1/2); defaults to kDefault.
Scale scale();

/// Convenience: pick a value by scale.
template <typename T>
T by_scale(T smoke, T normal, T heavy) {
  switch (scale()) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kHeavy:
      return heavy;
    case Scale::kDefault:
      break;
  }
  return normal;
}

/// Integer env override helper: returns `fallback` when unset/invalid.
std::size_t env_size(const std::string& name, std::size_t fallback);

}  // namespace bprom::util
