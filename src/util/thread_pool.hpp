// Minimal fixed-size thread pool used to train shadow-model populations and
// suspicious-model cohorts in parallel.
//
// Work items are type-erased closures; parallel_for provides the common
// index-sharded pattern with exception propagation to the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bprom::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future reports completion / exception.
  std::future<void> submit(std::function<void()> task);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run body(i) for i in [0, n) across the given pool (or a transient pool if
/// pool == nullptr).  Rethrows the first exception encountered.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr);

/// Process-wide default pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace bprom::util
