// Tables 3 + 8: prompted accuracy, ASR and AUROC vs trigger size.
#include "common.hpp"
#include "vp/train_whitebox.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  util::Rng rng(13);
  auto dt_train = data::subset(env.stl10.train,
                               rng.sample_without_replacement(env.stl10.train.size(), 256));
  // Canvas is 16px (paper: 32px), so the paper's 4/8/16 sweep maps to 2/4/8.
  const std::size_t sizes[] = {2, 4, 8};
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    util::TablePrinter table({"trigger", "Blend acc", "Blend ASR", "Blend AUROC",
                              "AdapBlend acc", "AdapBlend ASR", "AdapBlend AUROC"});
    auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
    for (auto s : sizes) {
      // Built with += to dodge gcc-12's -Wrestrict false positive (PR105651)
      // on `literal + std::string&&` chains under -O2.
      std::string label = "(";
      label += std::to_string(s);
      label += "x";
      label += std::to_string(s);
      label += ")";
      std::vector<std::string> row = {label};
      for (auto kind : {attacks::AttackKind::kBlend, attacks::AttackKind::kAdapBlend}) {
        auto atk = attacks::AttackConfig::defaults(kind);
        atk.trigger_size = s;
        auto pop = core::build_population(*src, atk, arch, env.scale.population_per_side,
                                          900 + s + 10 * (int)kind, env.scale);
        double asr = 0, acc = 0; int nb = 0;
        for (auto& m : pop) if (m.backdoored) { asr += m.asr; ++nb; }
        asr /= nb;
        // Prompted accuracy of one backdoored model (white-box prompt).
        for (auto& m : pop) {
          if (!m.backdoored) continue;
          vp::WhiteBoxPromptConfig pc; pc.epochs = env.scale.prompt_epochs;
          auto prompt = vp::learn_prompt_whitebox(*m.model, dt_train, pc);
          nn::BlackBoxAdapter box(*m.model);
          vp::PromptedModel pm(box, prompt);
          pm.set_label_mapping(vp::fit_frequency_label_mapping(pm, dt_train, 10));
          acc = pm.accuracy(env.stl10.test);
          break;
        }
        auto scores = core::score_population(detector, pop);
        row.push_back(util::cell(acc));
        row.push_back(util::cell(asr));
        row.push_back(util::cell(scores.auroc()));
      }
      table.add_row(row);
    }
    std::printf("== Tables 3+8 (%s): trigger size sweep ==\n", src->profile.name.c_str());
    table.print();
  }
  return 0;
}
