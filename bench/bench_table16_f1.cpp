// Table 16: F1 of defenses + BPROM at D_S = 10/5/1 % (ResNet18Mini).
#include "common.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  const auto arch = nn::ArchKind::kResNet18Mini;
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> header = {"defense"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    for (auto d : {defenses::DefenseKind::kStrip, defenses::DefenseKind::kFrequency,
                   defenses::DefenseKind::kSs, defenses::DefenseKind::kScan,
                   defenses::DefenseKind::kSpectre}) {
      std::vector<std::string> row = {defenses::defense_name(d)};
      double avg = 0;
      for (auto a : main_attacks()) {
        auto eval = baseline_cell(d, *src, a, arch, 700 + (int)a, env.scale);
        row.push_back(util::cell(eval.f1));
        avg += eval.f1;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    for (double frac : {0.10, 0.05, 0.01}) {
      auto detector = core::fit_detector(*src, env.stl10, frac, arch, 7, env.scale);
      std::vector<std::string> row = {"BPROM (" + util::cell(100 * frac, 0) + "%)"};
      double avg = 0;
      for (auto a : main_attacks()) {
        auto cell = bprom_cell(detector, *src, a, arch, 750 + (int)a, env.scale);
        row.push_back(util::cell(cell.f1));
        avg += cell.f1;
      }
      row.push_back(util::cell(avg / main_attacks().size()));
      table.add_row(row);
    }
    std::printf("== Table 16 (%s): F1 ==\n", src->profile.name.c_str());
    table.print();
  }
  return 0;
}
