// Command-line driver for the bprom invariant linter (tools/lint_core.hpp).
//
//   bprom_lint [--rules <file>] <path>...
//
// Paths may be files or directories (directories are walked recursively for
// .hpp/.h/.cpp).  Findings print as `path:line: [rule] message`, sorted, and
// the exit code is the number of findings clamped to 1 — so both CTest and
// CI treat any finding as failure.  Run from the repo root so the path
// substrings in lint_rules.txt (e.g. `exempt raw-thread src/util/`) match.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

/// Forward slashes regardless of platform, so rule path-substrings match.
std::string normalized(const fs::path& path) {
  return path.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path = "tools/lint_rules.txt";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (i + 1 >= argc) {
        std::cerr << "bprom_lint: --rules needs a file argument\n";
        return 2;
      }
      rules_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bprom_lint [--rules <file>] <path>...\n";
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "bprom_lint: no inputs (usage: bprom_lint [--rules <file>] "
                 "<path>...)\n";
    return 2;
  }

  std::ifstream rules_in(rules_path);
  if (!rules_in) {
    std::cerr << "bprom_lint: cannot open rules file " << rules_path << "\n";
    return 2;
  }
  std::string parse_error;
  const bprom::lint::Rules rules =
      bprom::lint::Rules::parse(rules_in, &parse_error);
  if (!parse_error.empty()) {
    std::cerr << "bprom_lint: " << rules_path << ": " << parse_error << "\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(normalized(entry.path()));
        }
      }
      if (ec) {
        std::cerr << "bprom_lint: cannot walk " << input << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else {
      files.push_back(normalized(fs::path(input)));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<bprom::lint::Finding> findings;
  std::vector<bprom::lint::FailpointSite> sites;
  std::vector<bprom::lint::FailpointRegistryEntry> registry;
  std::string registry_file;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "bprom_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const auto file_findings = bprom::lint::lint_file(file, text, rules);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
    if (rules.rule_on("failpoint-name")) {
      const auto file_sites = bprom::lint::failpoint_sites(file, text);
      sites.insert(sites.end(), file_sites.begin(), file_sites.end());
      // Only the canonical registry file is parsed for the marker block —
      // prose that merely MENTIONS the markers must not become a registry.
      if (file.find("src/util/failpoint.cpp") != std::string::npos) {
        registry = bprom::lint::failpoint_registry(text);
        registry_file = file;
      }
    }
  }
  // failpoint-name is a cross-file pass: it needs every site and the one
  // registry block together before it can judge uniqueness and coverage.
  {
    const auto fp = bprom::lint::lint_failpoints(sites, registry,
                                                 registry_file, rules);
    findings.insert(findings.end(), fp.begin(), fp.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const bprom::lint::Finding& a, const bprom::lint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "bprom_lint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " across "
              << files.size() << " files\n";
    return 1;
  }
  std::cout << "bprom_lint: clean (" << files.size() << " files)\n";
  return 0;
}
