// ASCII table rendering for benchmark/report output.
//
// Benches regenerate the paper's tables; TablePrinter renders rows with
// aligned columns so the reproduced output is directly comparable to the
// paper's layout.
#pragma once

#include <string>
#include <vector>

namespace bprom::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row (cells are converted to strings by the caller;
  /// see cell() helpers below).
  void add_row(std::vector<std::string> row);

  /// Render to a string with box-drawing separators.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 digits, the paper's style).
std::string cell(double v, int precision = 3);
std::string cell(int v);
std::string cell(std::size_t v);

}  // namespace bprom::util
