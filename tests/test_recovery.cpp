// End-to-end failure recovery: DetectorStore::recover() semantics
// (quarantine, generation repair, lock debris), exhaustive
// truncate-at-every-byte / flip-one-byte sweeps over a genuinely published
// container, and the crash matrix — a child process is killed at every
// publish-path failpoint in turn, and the parent must recover the store to
// a state whose audits are bit-identical to a never-crashed engine.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "io/binary.hpp"
#include "nn/arch.hpp"
#include "nn/blackbox.hpp"
#include "serve/detector_store.hpp"
#include "util/failpoint.hpp"

namespace bprom {
namespace {

namespace fs = std::filesystem;

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

struct Fixture {
  data::Dataset src = data::make_dataset(data::DatasetKind::kCifar10, 61, 400,
                                         160);
  data::Dataset tgt = data::make_dataset(data::DatasetKind::kStl10, 62, 300,
                                         160);
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, nn::ArchKind::kResNet18Mini, 7, micro_scale());
  core::TrainedSuspicious suspicious = core::train_clean_model(
      src, nn::ArchKind::kResNet18Mini, 50, micro_scale());
};

/// One fitted detector + one suspicious model shared by the expensive
/// tests; the fast recover() unit tests below use raw containers instead.
const Fixture& fixture() {
  static const Fixture f;
  return f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

/// A small but structurally-valid container (recover() only parses the
/// container framing — magic, version, length, CRC — not the payload).
void write_container(const std::string& path) {
  io::Writer writer;
  writer.write_tag("TEST");
  writer.write_string("recovery test artifact");
  writer.write_u64(0x1234567890ABCDEFULL);
  writer.save_file(path);
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---- recover() unit semantics (fast, raw containers) ----

TEST(Recover, CleanStorePassesThroughUntouched) {
  const std::string dir = fresh_dir("bprom_rec_clean");
  serve::DetectorStore store(dir);
  write_container((fs::path(dir) / "a.bprom").string());
  write_container((fs::path(dir) / "b.bprom").string());
  store.bump_generation();
  store.bump_generation();

  const serve::RecoveryReport report = store.recover();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.artifacts_ok, 2U);
  EXPECT_EQ(report.generation, 2U);
  EXPECT_EQ(store.generation(), 2U);  // healthy generation never changed
  EXPECT_FALSE(fs::exists(fs::path(dir) / "quarantine"));
  fs::remove_all(dir);
}

TEST(Recover, LeftoverTempFilesAreQuarantinedNotDeleted) {
  const std::string dir = fresh_dir("bprom_rec_temp");
  serve::DetectorStore store(dir);
  write_container((fs::path(dir) / "good.bprom").string());
  store.bump_generation();  // healthy counter — only the temp is wrong
  {
    std::ofstream out((fs::path(dir) / "torn.bprom.tmp").string());
    out << "half a publish";
  }

  const serve::RecoveryReport report = store.recover();
  ASSERT_EQ(report.issues.size(), 1U);
  EXPECT_EQ(report.issues[0].kind, serve::RecoveryIssue::Kind::kTempFile);
  EXPECT_EQ(report.issues[0].file, "torn.bprom.tmp");
  EXPECT_FALSE(report.issues[0].quarantined_as.empty());
  // Moved, never destroyed: the bytes survive under quarantine/.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "torn.bprom.tmp"));
  EXPECT_TRUE(
      fs::exists(fs::path(dir) / report.issues[0].quarantined_as));
  EXPECT_EQ(report.artifacts_ok, 1U);
  fs::remove_all(dir);
}

TEST(Recover, CorruptContainersAreQuarantinedWithBytesIntact) {
  const std::string dir = fresh_dir("bprom_rec_corrupt");
  serve::DetectorStore store(dir);
  const std::string victim = (fs::path(dir) / "bad.bprom").string();
  write_container(victim);
  std::vector<std::uint8_t> bytes = read_bytes(victim);
  bytes[bytes.size() / 2] ^= 0xFF;  // CRC now fails
  write_bytes(victim, bytes);

  const serve::RecoveryReport report = store.recover();
  ASSERT_EQ(report.issues.size(), 1U);
  EXPECT_EQ(report.issues[0].kind, serve::RecoveryIssue::Kind::kCorrupt);
  ASSERT_FALSE(report.issues[0].quarantined_as.empty());
  EXPECT_FALSE(fs::exists(victim));
  // Evidence preserved bit-for-bit for post-mortem.
  const std::string moved =
      (fs::path(dir) / report.issues[0].quarantined_as).string();
  EXPECT_EQ(read_bytes(moved), bytes);
  EXPECT_EQ(report.artifacts_ok, 0U);
  fs::remove_all(dir);
}

TEST(Recover, QuarantineNeverOverwritesEarlierRemains) {
  const std::string dir = fresh_dir("bprom_rec_collide");
  serve::DetectorStore store(dir);
  const std::string victim = (fs::path(dir) / "bad.bprom").string();
  for (int round = 0; round < 2; ++round) {
    write_container(victim);
    std::vector<std::uint8_t> bytes = read_bytes(victim);
    bytes[bytes.size() / 2 + static_cast<std::size_t>(round)] ^= 0xFF;
    write_bytes(victim, bytes);
    const serve::RecoveryReport report = store.recover();
    ASSERT_EQ(report.issues.size(), 1U) << "round " << round;
  }
  // Both corrupt incarnations coexist under quarantine/.
  std::size_t remains = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir) / "quarantine")) {
    (void)entry;
    ++remains;
  }
  EXPECT_EQ(remains, 2U);
  fs::remove_all(dir);
}

TEST(Recover, NewerFormatContainersAreReportedButLeftInPlace) {
  const std::string dir = fresh_dir("bprom_rec_newer");
  serve::DetectorStore store(dir);
  const std::string future = (fs::path(dir) / "future.bprom").string();
  write_container(future);
  std::vector<std::uint8_t> bytes = read_bytes(future);
  bytes[4] = 99;  // version field (little-endian u32 at offset 4)
  write_bytes(future, bytes);

  const serve::RecoveryReport report = store.recover();
  ASSERT_EQ(report.issues.size(), 1U);
  EXPECT_EQ(report.issues[0].kind,
            serve::RecoveryIssue::Kind::kVersionMismatch);
  EXPECT_TRUE(report.issues[0].quarantined_as.empty());
  // Healthy data for a newer build: stays exactly where it was.
  EXPECT_TRUE(fs::exists(future));
  fs::remove_all(dir);
}

TEST(Recover, MissingGenerationIsRebuiltFromSurvivors) {
  const std::string dir = fresh_dir("bprom_rec_gen");
  serve::DetectorStore store(dir);
  write_container((fs::path(dir) / "a.bprom").string());
  write_container((fs::path(dir) / "b.bprom").string());
  ASSERT_EQ(store.generation(), 0U);  // counter never written

  const serve::RecoveryReport report = store.recover();
  ASSERT_EQ(report.issues.size(), 1U);
  EXPECT_EQ(report.issues[0].kind,
            serve::RecoveryIssue::Kind::kGenerationRepaired);
  EXPECT_EQ(report.generation, 2U);
  EXPECT_EQ(store.generation(), 2U);
  fs::remove_all(dir);
}

TEST(Recover, LockDebrisFromDeadWriterIsReportedAndBroken) {
  const std::string dir = fresh_dir("bprom_rec_lock");
  serve::DetectorStore store(dir);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  {
    std::ofstream out((fs::path(dir) / serve::StoreLock::kLockName).string());
    out << child << " 777\n";  // provably-dead holder, fresh mtime
  }

  const serve::RecoveryReport report = store.recover();
  ASSERT_EQ(report.issues.size(), 1U);
  EXPECT_EQ(report.issues[0].kind, serve::RecoveryIssue::Kind::kStaleLock);
  // recover() released its own lock on exit.
  EXPECT_FALSE(fs::exists(fs::path(dir) / serve::StoreLock::kLockName));
  fs::remove_all(dir);
}

TEST(Recover, EngineRecoverOnStartSweepsBeforeServing) {
  const std::string dir = fresh_dir("bprom_rec_onstart");
  {
    serve::DetectorStore store(dir);  // creates the directory
    std::ofstream out((fs::path(dir) / "torn.bprom.tmp").string());
    out << "debris";
  }
  api::AuditEngine engine(
      {.store_dir = dir, .recover_on_start = true});
  ASSERT_TRUE(engine.status().ok());
  EXPECT_FALSE(fs::exists(fs::path(dir) / "torn.bprom.tmp"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "torn.bprom.tmp"));
  fs::remove_all(dir);
}

// ---- exhaustive byte sweeps over a genuinely published container ----

class PublishedContainer : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir("bprom_rec_sweep");
    api::AuditEngine engine({.store_dir = dir_});
    ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());
    path_ = (fs::path(dir_) / "aud@v1.bprom").string();
    ASSERT_TRUE(fs::exists(path_));
    pristine_ = read_bytes(path_);
    ASSERT_GT(pristine_.size(), 20U);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Parse `bytes` as a container file; the ONLY acceptable outcomes are a
  /// clean load or a typed kCorrupt / kVersionMismatch — never a crash, a
  /// hang, or an untyped escape.
  void expect_clean_or_typed(const std::vector<std::uint8_t>& bytes,
                             const std::string& what) {
    const std::string probe = (fs::path(dir_) / "probe.bprom").string();
    write_bytes(probe, bytes);
    try {
      (void)io::Reader::from_file(probe);
    } catch (const io::IoError& e) {
      EXPECT_TRUE(e.kind() == io::ErrorKind::kCorrupt ||
                  e.kind() == io::ErrorKind::kVersionMismatch)
          << what << ": untyped kind "
          << static_cast<int>(e.kind()) << ": " << e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << what << ": non-IoError escaped: " << e.what();
    }
  }

  /// Sweep positions: every `stride`th byte plus the full header/trailer
  /// neighborhoods, so the sweep stays O(container) while still hitting
  /// every structurally-distinct region exactly.
  [[nodiscard]] std::vector<std::size_t> positions() const {
    const std::size_t n = pristine_.size();
    const std::size_t stride = std::max<std::size_t>(1, n / 128);
    std::vector<std::size_t> at;
    for (std::size_t i = 0; i < n; i += stride) at.push_back(i);
    for (std::size_t i = 0; i < std::min<std::size_t>(32, n); ++i) {
      at.push_back(i);            // header: magic, version, length
      at.push_back(n - 1 - i);    // trailer: CRC
    }
    std::sort(at.begin(), at.end());
    at.erase(std::unique(at.begin(), at.end()), at.end());
    return at;
  }

  std::string dir_;
  std::string path_;
  std::vector<std::uint8_t> pristine_;
};

TEST_F(PublishedContainer, PristineCopyLoadsClean) {
  io::Reader reader = io::Reader::from_file(path_);
  SUCCEED();
}

TEST_F(PublishedContainer, TruncationAtEveryByteIsTyped) {
  for (const std::size_t len : positions()) {
    expect_clean_or_typed(
        std::vector<std::uint8_t>(pristine_.begin(),
                                  pristine_.begin() +
                                      static_cast<std::ptrdiff_t>(len)),
        "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST_F(PublishedContainer, FlippingAnyOneByteIsTyped) {
  for (const std::size_t at : positions()) {
    std::vector<std::uint8_t> bytes = pristine_;
    bytes[at] ^= 0xFF;
    expect_clean_or_typed(bytes, "flipped byte " + std::to_string(at));
    // A single flipped payload byte can never slip past the CRC and the
    // header fields are all validated, so this must also have THROWN —
    // but the contract the sweep enforces is only "clean or typed".
  }
}

// ---- crash matrix: kill the publisher at every failpoint, recover ----

/// Child-process entry, exec'd by CrashMatrix below with BPROM_FAILPOINTS
/// armed to `_exit(43)` at one publish step.  Loads the pre-fitted
/// detector from the seed store (cheap) and publishes it into the crash
/// directory; exit 44 means the armed failpoint never fired.
TEST(CrashChild, PublishOnce) {
  const char* dir = std::getenv("BPROM_CRASH_DIR");
  const char* seed = std::getenv("BPROM_CRASH_SEED_DIR");
  if (dir == nullptr || seed == nullptr) {
    GTEST_SKIP() << "not a crash-matrix child";
  }
  util::failpoints_arm_from_env();  // idempotent; init-order independent
  api::AuditEngine seeder({.store_dir = seed});
  auto handle = seeder.detector("aud");
  if (!handle.ok()) _exit(90);
  api::AuditEngine engine({.store_dir = dir});
  (void)engine.publish("aud", *handle.value());
  _exit(44);
}

TEST(CrashMatrix, EveryPublishStepCrashIsRecoverable) {
  const auto& f = fixture();
  const std::string seed_dir = fresh_dir("bprom_crash_seed");
  api::AuditEngine seeder({.store_dir = seed_dir});
  ASSERT_TRUE(seeder.publish("aud", f.detector).ok());

  // Reference verdicts from a never-crashed engine.  Single-request
  // batches, so every engine resolves the same (seed, index 0) salt and
  // the crash-recovered stores must reproduce these bit for bit.
  nn::BlackBoxAdapter box(*f.suspicious.model);
  const auto audit_one = [&box](api::AuditEngine& engine,
                                const std::string& detector) {
    api::AuditRequest request;
    request.model_id = "m0";
    request.detector = detector;
    request.model = &box;
    auto responses = engine.audit({request});
    EXPECT_EQ(responses.size(), 1U);
    return responses[0];
  };
  const api::AuditResponse ref_bare = audit_one(seeder, "aud");
  const api::AuditResponse ref_pinned = audit_one(seeder, "aud@v1");
  ASSERT_TRUE(ref_bare.status.ok()) << ref_bare.status.to_string();
  ASSERT_TRUE(ref_pinned.status.ok());
  ASSERT_EQ(ref_bare.verdict.score, ref_pinned.verdict.score);

  const char* kSteps[] = {
      "io.save.open",          "io.save.write",    "io.save.fsync.file",
      "io.save.rename",        "io.save.fsync.dir", "store.generation.write",
      "store.publish.crash",   "store.lock.crash",
  };
  for (const char* step : kSteps) {
    SCOPED_TRACE(step);
    const std::string dir =
        fresh_dir(std::string("bprom_crash_") + step);
    fs::create_directories(dir);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Exec a fresh copy of this binary running only the child entry: no
      // inherited thread-pool state, env-armed failpoints from startup.
      setenv("BPROM_CRASH_DIR", dir.c_str(), 1);
      setenv("BPROM_CRASH_SEED_DIR", seed_dir.c_str(), 1);
      setenv("BPROM_FAILPOINTS",
             (std::string(step) + "=1->exit:43").c_str(), 1);
      execl("/proc/self/exe", "test_recovery_crash_child",
            "--gtest_filter=CrashChild.PublishOnce",
            static_cast<char*>(nullptr));
      _exit(97);  // exec failed
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
    ASSERT_EQ(WEXITSTATUS(wstatus), 43)
        << "armed crash never fired (44 = publish completed, 90 = seed "
           "load failed, 97 = exec failed)";

    // The parent recovers the torn store...
    api::AuditEngine engine({.store_dir = dir});
    auto recovered = engine.recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
    for (const auto& issue : recovered.value().issues) {
      // Quarantined means moved, never deleted.
      if (!issue.quarantined_as.empty()) {
        EXPECT_TRUE(fs::exists(fs::path(dir) / issue.quarantined_as));
      }
    }
    // ...republishes if the crash landed before the artifact was durable...
    if (!engine.info("aud").ok()) {
      ASSERT_TRUE(engine.publish("aud", f.detector).ok());
    }
    // ...and must then serve verdicts bit-identical to the reference, on
    // the bare name and the pinned version alike.
    for (const char* name : {"aud", "aud@v1"}) {
      const api::AuditResponse got = audit_one(engine, name);
      ASSERT_TRUE(got.status.ok()) << name << ": " << got.status.to_string();
      EXPECT_EQ(got.verdict.score, ref_bare.verdict.score) << name;
      EXPECT_EQ(got.verdict.backdoored, ref_bare.verdict.backdoored) << name;
      EXPECT_EQ(got.verdict.prompted_accuracy,
                ref_bare.verdict.prompted_accuracy)
          << name;
      EXPECT_EQ(got.verdict.queries, ref_bare.verdict.queries) << name;
    }
    // The store is left consistent: a generation exists and the next
    // engine to open the directory sees a servable catalog.
    EXPECT_GT(engine.stats().store_generation, 0U);
    fs::remove_all(dir);
  }
  fs::remove_all(seed_dir);
}

}  // namespace
}  // namespace bprom
