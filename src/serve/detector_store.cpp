#include "serve/detector_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "io/binary.hpp"
#include "io/serialize.hpp"
#include "util/failpoint.hpp"

namespace bprom::serve {

namespace fs = std::filesystem;

std::optional<std::uint64_t> process_start_token(long pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/stat");
  if (!in.good()) return std::nullopt;
  std::string stat;
  std::getline(in, stat);
  // Field 2 (comm) is a parenthesized, possibly space-containing name, so
  // parse from the LAST ')': what follows is " <state> <ppid> ..." and
  // starttime is field 22 overall — token index 19 after the state.
  const std::size_t close = stat.rfind(')');
  if (close == std::string::npos) return std::nullopt;
  std::istringstream rest(stat.substr(close + 1));
  std::string token;
  for (int i = 0; i < 20; ++i) {
    if (!(rest >> token)) return std::nullopt;
  }
  std::uint64_t start = 0;
  std::istringstream value(token);
  if (!(value >> start)) return std::nullopt;
  return start;
}

namespace {

/// Parse a lock breadcrumb: "<pid>\n" (legacy) or "<pid> <starttime>\n".
struct LockCrumb {
  long pid = 0;
  std::optional<std::uint64_t> start_token;
};

std::optional<LockCrumb> read_lock_crumb(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  LockCrumb crumb;
  if (!(in >> crumb.pid) || crumb.pid <= 0) return std::nullopt;
  std::uint64_t token = 0;
  if (in >> token) crumb.start_token = token;
  return crumb;
}

/// True when the breadcrumb proves its writer is dead: the pid is gone, or
/// the pid now belongs to a different process incarnation (pid reuse).  A
/// live holder, or a crumb we cannot decide on, returns false — the caller
/// then falls back to the mtime staleness rule.
bool holder_provably_dead(const LockCrumb& crumb) {
  const auto current = process_start_token(crumb.pid);
  if (!current.has_value()) return true;  // no such process
  // Legacy single-field crumb: the pid exists but we cannot tell whether
  // it is the original writer or a recycled pid — not provable either way.
  if (!crumb.start_token.has_value()) return false;
  return *current != *crumb.start_token;  // pid reused by someone else
}

}  // namespace

StoreLock::StoreLock(const std::string& directory)
    : path_((fs::path(directory) / kLockName).string()) {
  for (unsigned spins = 0;; ++spins) {
    // O_EXCL is the whole mechanism: exactly one creator wins, atomically,
    // across processes.
    const int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      // Breadcrumb: "<pid> <starttime>\n".  The start token makes the
      // liveness check below immune to pid reuse; it is best-effort (a
      // crumbless lock just degrades to the mtime rule).
      const long pid = static_cast<long>(::getpid());
      const auto token = process_start_token(pid);
      char crumb[64];
      const int len =
          token.has_value()
              ? std::snprintf(crumb, sizeof(crumb), "%ld %llu\n", pid,
                              static_cast<unsigned long long>(*token))
              : std::snprintf(crumb, sizeof(crumb), "%ld\n", pid);
      if (len > 0) {
        [[maybe_unused]] const auto ignored =
            ::write(fd, crumb, static_cast<std::size_t>(len));
      }
      ::close(fd);
      // Crash-matrix hook: die while holding the lock, leaving debris the
      // next acquirer must break.
      if (auto hit = BPROM_FAILPOINT("store.lock.crash")) {
        (void)hit;
        throw io::IoError("injected failure while holding publish lock",
                          io::ErrorKind::kIo);
      }
      return;
    }
    if (errno != EEXIST) {
      throw io::IoError("cannot create publish lock " + path_,
                        io::ErrorKind::kIo);
    }
    // Held by someone else.  Break immediately when the breadcrumb proves
    // the holder dead (pid gone, or pid recycled by another process).
    if (const auto crumb = read_lock_crumb(path_);
        crumb.has_value() && holder_provably_dead(*crumb)) {
      std::error_code ec;
      fs::remove(path_, ec);  // racing breakers are fine: O_EXCL re-decides
      continue;
    }
    // Liveness undecidable: fall back to age.  A publish spans one
    // directory scan plus one container write, so a lock older than
    // kStaleAfterSeconds belongs to a crashed writer.
    std::error_code ec;
    const auto mtime = fs::last_write_time(path_, ec);
    if (!ec) {
      const auto age = std::chrono::duration<double>(
          fs::file_time_type::clock::now() - mtime);
      if (age.count() > kStaleAfterSeconds) {
        fs::remove(path_, ec);  // racing breakers are fine: O_EXCL re-decides
        continue;
      }
    }
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

StoreLock::~StoreLock() {
  std::error_code ec;
  fs::remove(path_, ec);
}

DetectorStore::DetectorStore(std::string directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw io::IoError("cannot create store directory " + dir_ + ": " +
                          ec.message(),
                      io::ErrorKind::kIo);
  }
}

std::string DetectorStore::path_for(const std::string& name) const {
  return (fs::path(dir_) / (name + io::kFileExtension)).string();
}

std::shared_ptr<const core::BpromDetector> DetectorStore::put(
    const std::string& name, core::BpromDetector detector) {
  io::save_detector_file(path_for(name), detector);
  auto handle =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  util::MutexLock lock(mu_);
  cache_[name] = handle;
  return handle;
}

std::shared_ptr<const core::BpromDetector> DetectorStore::cached_locked(
    const std::string& name) const {
  auto it = cache_.find(name);
  return it != cache_.end() ? it->second : nullptr;
}

std::shared_ptr<const core::BpromDetector> DetectorStore::get(
    const std::string& name, util::ThreadPool* pool_for_loaded) {
  {
    util::MutexLock lock(mu_);
    if (auto hit = cached_locked(name)) return hit;
  }
  // Load outside the lock so a slow disk read does not serialize unrelated
  // lookups; first insertion wins if two threads race on the same name
  // (emplace never overwrites, so the loser adopts the winner's handle and
  // its own load is discarded — both threads hand out one shared detector).
  core::BpromDetector detector = io::load_detector_file(path_for(name));
  detector.set_pool(pool_for_loaded);
  auto loaded =
      std::make_shared<const core::BpromDetector>(std::move(detector));
  util::MutexLock lock(mu_);
  return cache_.emplace(name, std::move(loaded)).first->second;
}

bool DetectorStore::contains(const std::string& name) const {
  {
    util::MutexLock lock(mu_);
    if (cached_locked(name) != nullptr) return true;
  }
  std::error_code ec;
  return fs::exists(path_for(name), ec);
}

std::vector<std::string> DetectorStore::list() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == io::kFileExtension) {
      names.push_back(p.stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void DetectorStore::evict(const std::string& name) {
  util::MutexLock lock(mu_);
  cache_.erase(name);
}

std::uint64_t DetectorStore::generation() const {
  std::ifstream in((fs::path(dir_) / ".generation").string());
  std::uint64_t gen = 0;
  if (in >> gen) return gen;
  return 0;
}

std::uint64_t DetectorStore::bump_generation() {
  const std::uint64_t next = generation() + 1;
  write_generation(next);
  return next;
}

void DetectorStore::write_generation(std::uint64_t value) {
  const std::string path = (fs::path(dir_) / ".generation").string();
  const std::string tmp = path + ".tmp";
  if (auto hit = BPROM_FAILPOINT("store.generation.write")) {
    (void)hit;
    throw io::IoError("injected generation write failure: " + tmp,
                      io::ErrorKind::kIo);
  }
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw io::IoError("cannot write store generation " + tmp,
                        io::ErrorKind::kIo);
    }
    out << value << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw io::IoError("cannot move " + tmp + " into place: " + ec.message(),
                      io::ErrorKind::kIo);
  }
}

namespace {

/// Move `from` into `dir/quarantine/`, never overwriting earlier remains:
/// on a name collision a numeric suffix is appended.  Returns the
/// quarantine-relative name, or empty on failure (the file then stays put —
/// recovery must never destroy evidence, so there is no unlink fallback).
std::string quarantine_file(const std::string& dir, const fs::path& from) {
  std::error_code ec;
  const fs::path qdir = fs::path(dir) / "quarantine";
  fs::create_directories(qdir, ec);
  if (ec) return {};
  std::string base = from.filename().string();
  fs::path dest = qdir / base;
  for (int suffix = 1; fs::exists(dest, ec); ++suffix) {
    dest = qdir / (base + "." + std::to_string(suffix));
  }
  fs::rename(from, dest, ec);
  if (ec) return {};
  return (fs::path("quarantine") / dest.filename()).string();
}

}  // namespace

RecoveryReport DetectorStore::recover() {
  RecoveryReport report;

  // A leftover lock is either a live publisher or crash debris; taking the
  // StoreLock resolves that (breaking provably-dead locks immediately) and
  // keeps concurrent publishers out for the span of the scan.  Report the
  // debris when we can see it was there.
  {
    std::error_code ec;
    const fs::path lock = fs::path(dir_) / StoreLock::kLockName;
    if (fs::exists(lock, ec)) {
      report.issues.push_back({RecoveryIssue::Kind::kStaleLock,
                               StoreLock::kLockName,
                               "publish lock present at recovery start", ""});
    }
  }
  StoreLock lock(dir_);

  std::error_code ec;
  std::vector<fs::path> temps;
  std::vector<fs::path> containers;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    const std::string fname = p.filename().string();
    if (fname == StoreLock::kLockName) continue;
    if (fname.size() >= 4 && fname.compare(fname.size() - 4, 4, ".tmp") == 0) {
      temps.push_back(p);
    } else if (p.extension() == io::kFileExtension) {
      containers.push_back(p);
    }
  }
  if (ec) {
    throw io::IoError("cannot scan store directory " + dir_ + ": " +
                          ec.message(),
                      io::ErrorKind::kIo);
  }
  std::sort(temps.begin(), temps.end());
  std::sort(containers.begin(), containers.end());

  // Leftover temp files are torn publishes: the rename never happened, so
  // no reader ever saw them.  Quarantine, never serve.
  for (const fs::path& tmp : temps) {
    report.issues.push_back({RecoveryIssue::Kind::kTempFile,
                             tmp.filename().string(),
                             "leftover publish temp file",
                             quarantine_file(dir_, tmp)});
  }

  // Every container must parse cleanly or fail with a *typed* error.
  for (const fs::path& artifact : containers) {
    try {
      (void)io::Reader::from_file(artifact.string());
      ++report.artifacts_ok;
    } catch (const io::IoError& e) {
      if (e.kind() == io::ErrorKind::kVersionMismatch) {
        // Written by a newer build — perfectly healthy data we cannot read.
        // Leave it for the upgraded binary; just surface it.
        report.issues.push_back({RecoveryIssue::Kind::kVersionMismatch,
                                 artifact.filename().string(), e.what(), ""});
        continue;
      }
      report.issues.push_back({RecoveryIssue::Kind::kCorrupt,
                               artifact.filename().string(), e.what(),
                               quarantine_file(dir_, artifact)});
      evict(artifact.stem().string());
    }
  }

  // Repair the generation counter only when it is missing or corrupt AND
  // there are artifacts proving publishes happened; a healthy counter is
  // never touched (concurrent-publish tests pin exact values).
  report.generation = generation();
  const std::uint64_t floor_gen =
      static_cast<std::uint64_t>(report.artifacts_ok);
  if (report.generation == 0 && floor_gen > 0) {
    write_generation(floor_gen);
    report.generation = floor_gen;
    report.issues.push_back(
        {RecoveryIssue::Kind::kGenerationRepaired, ".generation",
         "missing or unreadable; rebuilt as artifact count " +
             std::to_string(floor_gen),
         ""});
  }
  return report;
}

}  // namespace bprom::serve
