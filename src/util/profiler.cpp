#include "util/profiler.hpp"

#include <algorithm>
#include <bit>

namespace bprom::util {

namespace {

/// Bucket index: position of the highest set bit, so bucket b spans
/// [2^(b-1), 2^b) and bucket 0 holds exact zeros.
std::size_t bucket_of(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

/// Representative value of bucket b — the geometric center of its span.
/// Clamped by the observed min/max when a percentile is extracted, so tiny
/// sample counts stay sane.
double bucket_mid(std::size_t b) {
  if (b == 0) return 0.0;
  const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
  return lo * 1.5;
}

}  // namespace

const char* profile_stage_name(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kResolve:
      return "resolve";
    case ProfileStage::kInspect:
      return "inspect";
    case ProfileStage::kRequest:
      return "request";
    case ProfileStage::kQueueWait:
      return "queue_wait";
    case ProfileStage::kQueueDepth:
      return "queue_depth";
    case ProfileStage::kBatch:
      return "batch";
    case ProfileStage::kStageCount:
      break;
  }
  return "unknown";
}

Profiler::Profiler() = default;

void Profiler::record(ProfileStage stage, std::uint64_t value) {
  // The epoch read and every RMW below are relaxed: samples are integers
  // folded commutatively, so no ordering between them is ever observed.
  Epoch& epoch = epochs_[live_.load(std::memory_order_relaxed) & 1U];
  StageCounters& c = epoch.stages[static_cast<std::size_t>(stage)];
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = c.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !c.min.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
  seen = c.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !c.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
  c.histogram[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

void Profiler::fold_and_reset(Epoch& epoch) {
  for (std::size_t s = 0; s < kProfileStages; ++s) {
    StageCounters& src = epoch.stages[s];
    CumulativeStage& dst = cumulative_[s];
    const std::uint64_t count = src.count.exchange(0,
                                                   std::memory_order_relaxed);
    const std::uint64_t sum = src.sum.exchange(0, std::memory_order_relaxed);
    const std::uint64_t mn =
        src.min.exchange(~std::uint64_t{0}, std::memory_order_relaxed);
    const std::uint64_t mx = src.max.exchange(0, std::memory_order_relaxed);
    if (count == 0) continue;
    dst.count += count;
    dst.sum += static_cast<double>(sum);
    dst.min = std::min(dst.min, mn);
    dst.max = std::max(dst.max, mx);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      dst.histogram[b] +=
          src.histogram[b].exchange(0, std::memory_order_relaxed);
    }
  }
}

ProfilerSnapshot Profiler::snapshot() {
  std::lock_guard<std::mutex> lock(reader_mu_);
  // Flip, then fold the buffer writers just vacated.  Writers mid-record
  // against the old index finish into the buffer we are folding — their
  // relaxed RMWs and our relaxed exchanges interleave atomically, so every
  // sample lands in exactly one fold.
  const std::uint32_t retired = live_.fetch_add(1, std::memory_order_relaxed);
  fold_and_reset(epochs_[retired & 1U]);

  ProfilerSnapshot out;
  for (std::size_t s = 0; s < kProfileStages; ++s) {
    const CumulativeStage& c = cumulative_[s];
    ProfileStageStats& stats = out.stages[s];
    stats.count = c.count;
    stats.sum = c.sum;
    if (c.count == 0) continue;
    stats.min = c.min;
    stats.max = c.max;
    const auto percentile = [&](double q) {
      const auto rank = static_cast<std::uint64_t>(
          q * static_cast<double>(c.count - 1));
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += c.histogram[b];
        if (seen > rank) {
          const double mid = bucket_mid(b);
          // The histogram only knows the bucket; min/max tighten the edges.
          return std::clamp(mid, static_cast<double>(c.min),
                            static_cast<double>(c.max));
        }
      }
      return static_cast<double>(c.max);
    };
    stats.p50 = percentile(0.50);
    stats.p95 = percentile(0.95);
    stats.p99 = percentile(0.99);
  }
  return out;
}

}  // namespace bprom::util
