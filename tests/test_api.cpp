// Public-façade behavior: Status/Result plumbing, versioned publish +
// rollover, async batched audits, and every typed error path — none of
// which may throw or abort across the api boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "data/ops.hpp"
#include "io/binary.hpp"
#include "nn/arch.hpp"
#include "util/thread_pool.hpp"

namespace bprom {
namespace {

namespace fs = std::filesystem;

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

struct Fixture {
  data::Dataset src = data::make_dataset(data::DatasetKind::kCifar10, 61, 400,
                                         160);
  data::Dataset tgt = data::make_dataset(data::DatasetKind::kStl10, 62, 300,
                                         160);
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, nn::ArchKind::kResNet18Mini, 7, micro_scale());
  core::TrainedSuspicious suspicious = core::train_clean_model(
      src, nn::ArchKind::kResNet18Mini, 50, micro_scale());
};

/// One fitted detector + one suspicious model shared by every test: fitting
/// is the expensive step and these tests only exercise the façade around it.
const Fixture& fixture() {
  static const Fixture f;
  return f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

api::AuditRequest request_for(const std::string& detector,
                              const nn::BlackBoxModel* box,
                              const std::string& id = "m0") {
  api::AuditRequest request;
  request.model_id = id;
  request.detector = detector;
  request.model = box;
  return request;
}

/// Claims a class count that never matches a fitted detector.
class WrongClassBox final : public nn::BlackBoxModel {
 public:
  nn::Tensor predict_proba(const nn::Tensor& images) const override {
    return nn::Tensor({images.dim(0), std::size_t{3}});
  }
  [[nodiscard]] std::size_t num_classes() const override { return 3; }
  [[nodiscard]] nn::ImageShape input_shape() const override {
    return {3, 16, 16};
  }
  [[nodiscard]] std::size_t query_count() const override { return 0; }
};

/// Blocks its first queries until released, so a test can pin down exactly
/// when an in-flight audit resolved its detector version.
class GatedBox final : public nn::BlackBoxModel {
 public:
  GatedBox(nn::Model& model, std::atomic<bool>& started,
           std::atomic<bool>& release)
      : inner_(model), started_(&started), release_(&release) {}
  nn::Tensor predict_proba(const nn::Tensor& images) const override {
    started_->store(true);
    while (!release_->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return inner_.predict_proba(images);
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return inner_.num_classes();
  }
  [[nodiscard]] nn::ImageShape input_shape() const override {
    return inner_.input_shape();
  }
  [[nodiscard]] std::size_t query_count() const override {
    return inner_.query_count();
  }

 private:
  nn::BlackBoxAdapter inner_;
  std::atomic<bool>* started_;
  std::atomic<bool>* release_;
};

TEST(ApiStatus, CodesNamesAndResult) {
  EXPECT_TRUE(api::Status::Ok().ok());
  EXPECT_EQ(api::Status::Ok().to_string(), "ok");
  const auto missing = api::Status::NotFound("no such thing");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), api::StatusCode::kNotFound);
  EXPECT_EQ(missing.to_string(), "not_found: no such thing");

  api::Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  api::Result<int> bad(api::Status::InvalidRequest("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), api::StatusCode::kInvalidRequest);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ApiStatus, VersionedNameRoundTrip) {
  EXPECT_EQ(api::versioned_name("aud", 3), "aud@v3");
  std::string base;
  std::uint32_t version = 0;
  ASSERT_TRUE(api::parse_versioned_name("aud@v12", &base, &version));
  EXPECT_EQ(base, "aud");
  EXPECT_EQ(version, 12U);
  for (const char* bad : {"aud", "aud@", "aud@v", "aud@v0", "aud@vx", "@v1",
                          "aud@v1x", "aud@v99999999999"}) {
    EXPECT_FALSE(api::parse_versioned_name(bad, &base, &version)) << bad;
  }
}

TEST(ApiEngine, MissingDetectorIsNotFoundNeverThrows) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_missing")});
  ASSERT_TRUE(engine.status().ok());
  EXPECT_EQ(engine.info("ghost").status().code(), api::StatusCode::kNotFound);
  EXPECT_EQ(engine.info("ghost@v2").status().code(),
            api::StatusCode::kNotFound);

  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  const auto responses = engine.audit({request_for("ghost", &box)});
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kNotFound);
  EXPECT_EQ(responses[0].model_id, "m0");
  EXPECT_EQ(box.query_count(), 0U);
}

TEST(ApiEngine, CorruptAndTruncatedArtifactsAreTyped) {
  const std::string dir = fresh_dir("bprom_api_corrupt");
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/garbage@v1.bprom", std::ios::binary);
    out << "this is not a container";
  }
  // A valid detector container, truncated mid-payload.
  serve::DetectorStore store(dir);
  store.put("chopped@v1", fixture().detector);
  const std::string chopped = store.path_for("chopped@v1");
  const auto full_size = fs::file_size(chopped);
  fs::resize_file(chopped, full_size / 2);

  api::AuditEngine engine({.store_dir = dir});
  EXPECT_EQ(engine.info("garbage").status().code(),
            api::StatusCode::kCorruptArtifact);
  EXPECT_EQ(engine.info("chopped").status().code(),
            api::StatusCode::kCorruptArtifact);

  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  const auto responses = engine.audit({request_for("chopped", &box)});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kCorruptArtifact);
}

TEST(ApiEngine, NewerContainerVersionIsVersionMismatch) {
  const std::string dir = fresh_dir("bprom_api_future");
  fs::create_directories(dir);
  {
    // Hand-craft an empty-but-valid container stamped format version 2.
    std::vector<std::uint8_t> bytes = {'B', 'P', 'R', 'M'};
    const std::uint32_t version = io::kFormatVersion + 1;
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(version >> (8 * i)));
    }
    for (int i = 0; i < 8; ++i) bytes.push_back(0);  // payload length 0
    const std::uint32_t crc = io::crc32(nullptr, 0);
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    std::ofstream out(dir + "/future@v1.bprom", std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  // The store layer rejects it as a typed IoError (no crash, no garbage)...
  serve::DetectorStore store(dir);
  try {
    store.get("future@v1");
    FAIL() << "newer container version must be rejected";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.kind(), io::ErrorKind::kVersionMismatch);
  }
  // ...and the façade surfaces it as Status::kVersionMismatch.
  api::AuditEngine engine({.store_dir = dir});
  EXPECT_EQ(engine.info("future").status().code(),
            api::StatusCode::kVersionMismatch);
  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  const auto responses = engine.audit({request_for("future@v1", &box)});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kVersionMismatch);
}

TEST(ApiEngine, InvalidRequestsAreTyped) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_invalid")});
  auto published = engine.publish("aud", fixture().detector);
  ASSERT_TRUE(published.ok());

  // Null model.
  auto responses = engine.audit({request_for("aud", nullptr)});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kInvalidRequest);
  // Class-count mismatch.
  WrongClassBox wrong;
  responses = engine.audit({request_for("aud", &wrong)});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kInvalidRequest);
  // Reserved characters in names.
  EXPECT_EQ(engine.publish("bad@name", fixture().detector).status().code(),
            api::StatusCode::kInvalidRequest);
  EXPECT_EQ(engine.publish("bad/name", fixture().detector).status().code(),
            api::StatusCode::kInvalidRequest);
  // Pinned references go through the same name rules: no escaping the
  // store directory via "../...@vN".
  EXPECT_EQ(engine.info("../escape@v1").status().code(),
            api::StatusCode::kInvalidRequest);
  EXPECT_EQ(engine.info("still@bad@v1").status().code(),
            api::StatusCode::kInvalidRequest);
  // Unfitted detectors cannot be published.
  EXPECT_EQ(engine.publish("empty", core::BpromDetector{}).status().code(),
            api::StatusCode::kFailedPrecondition);
}

TEST(ApiEngine, ZeroQueryBudgetFailsBeforeAnyQuery) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_budget")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());

  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  auto request = request_for("aud", &box);
  request.query_budget = 0;
  const auto responses = engine.audit({request});
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kBudgetExhausted);
  EXPECT_EQ(box.query_count(), 0U);
  EXPECT_EQ(responses[0].verdict.queries, 0U);
  EXPECT_EQ(engine.stats().verdicts, 0U);
}

TEST(ApiEngine, TinyQueryBudgetReportsExactSpend) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_budget2")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());

  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  auto request = request_for("aud", &box);
  request.query_budget = 1;  // a real inspection costs far more
  const auto responses = engine.audit({request});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kBudgetExhausted);
  // The spend is reported exactly so callers can account for it.
  EXPECT_GT(responses[0].verdict.queries, 1U);
  EXPECT_EQ(engine.stats().queries, responses[0].verdict.queries);
}

TEST(ApiEngine, PromptBudgetExhaustionSurfacesThroughFit) {
  // A detector whose black-box prompt optimizer has no evaluation budget:
  // pre-façade this silently produced unoptimized-prompt verdicts; through
  // the façade every audit against it reports kBudgetExhausted.
  const auto& f = fixture();
  util::Rng rng(7 ^ 0xDE7EC7ULL);
  const auto reserved = data::sample_fraction(f.src.test, 0.10, rng);
  const auto dt_train = data::subset(
      f.tgt.train,
      rng.sample_without_replacement(f.tgt.train.size(), 128));

  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_noevals")});
  api::FitRequest fit;
  fit.name = "nobudget";
  fit.source_classes = f.src.profile.classes;
  fit.reserved_clean = &reserved;
  fit.target_train = &dt_train;
  fit.target_test = &f.tgt.test;
  fit.config = core::default_bprom_config(micro_scale(),
                                          nn::ArchKind::kResNet18Mini, 7);
  fit.config.prompt_blackbox.max_evaluations = 0;
  const auto info = engine.fit(fit);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().versioned_name(), "nobudget@v1");

  nn::BlackBoxAdapter box(*f.suspicious.model);
  const auto responses = engine.audit({request_for("nobudget", &box)});
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kBudgetExhausted);
}

TEST(ApiEngine, FitRequestValidation) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_fitval")});
  api::FitRequest fit;  // everything missing
  fit.name = "x";
  EXPECT_EQ(engine.fit(fit).status().code(), api::StatusCode::kInvalidRequest);

  const auto& f = fixture();
  fit.reserved_clean = &f.src.test;
  fit.target_train = &f.tgt.train;
  fit.target_test = &f.tgt.test;
  fit.source_classes = 2;  // K_T (10) > K_S (2): mapping impossible
  EXPECT_EQ(engine.fit(fit).status().code(), api::StatusCode::kInvalidRequest);
}

TEST(ApiEngine, PublishRolloverAndPinnedVersions) {
  const std::string dir = fresh_dir("bprom_api_rollover");
  api::AuditEngine engine({.store_dir = dir});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());
  nn::BlackBoxAdapter box_v1(*fixture().suspicious.model);
  const auto before = engine.audit({request_for("aud", &box_v1)});
  ASSERT_TRUE(before[0].status.ok());
  EXPECT_EQ(before[0].detector_version, "aud@v1");

  // Roll over (identical content, so verdicts must not move).
  auto v2 = engine.publish("aud", fixture().detector);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().versioned_name(), "aud@v2");
  EXPECT_EQ(engine.stats().rollovers, 1U);
  EXPECT_EQ(engine.info("aud").value().version, 2U);

  nn::BlackBoxAdapter box_v2(*fixture().suspicious.model);
  const auto after = engine.audit({request_for("aud", &box_v2)});
  EXPECT_EQ(after[0].detector_version, "aud@v2");
  EXPECT_EQ(after[0].verdict.score, before[0].verdict.score);
  EXPECT_EQ(after[0].verdict.queries, before[0].verdict.queries);

  // Pinned requests keep reaching the superseded version.
  nn::BlackBoxAdapter box_pin(*fixture().suspicious.model);
  const auto pinned = engine.audit({request_for("aud@v1", &box_pin)});
  EXPECT_EQ(pinned[0].detector_version, "aud@v1");
  EXPECT_EQ(pinned[0].verdict.score, before[0].verdict.score);

  // A fresh engine over the same directory resolves the same rollover
  // state from disk alone — and a pinned lookup of the old version first
  // must not drag the later bare lookup backwards.
  api::AuditEngine fresh({.store_dir = dir});
  EXPECT_EQ(fresh.info("aud@v1").value().version, 1U);
  EXPECT_EQ(fresh.info("aud").value().version, 2U);
  const auto listed = fresh.list();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), 2U);
  EXPECT_EQ(listed.value()[0].versioned_name(), "aud@v1");
  EXPECT_EQ(listed.value()[1].versioned_name(), "aud@v2");
}

TEST(ApiEngine, RolloverWhileAuditingFinishesOnOldVersion) {
  api::AuditEngine engine(
      {.store_dir = fresh_dir("bprom_api_inflight")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());

  // Baseline verdict for batch index 0 (same salt as the gated run below).
  nn::BlackBoxAdapter plain(*fixture().suspicious.model);
  const auto baseline = engine.audit({request_for("aud", &plain)});
  ASSERT_TRUE(baseline[0].status.ok());

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  GatedBox gated(*fixture().suspicious.model, started, release);
  auto future = engine.audit_async({request_for("aud", &gated)});

  // Wait until the in-flight audit has resolved "aud" (its first query
  // proves resolution happened), then roll the name over underneath it.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());
  EXPECT_EQ(engine.info("aud").value().version, 2U);
  release.store(true);

  const auto inflight = future.get();
  ASSERT_EQ(inflight.size(), 1U);
  ASSERT_TRUE(inflight[0].status.ok());
  // The audit that was in flight during the rollover finished on v1...
  EXPECT_EQ(inflight[0].detector_version, "aud@v1");
  EXPECT_EQ(inflight[0].verdict.score, baseline[0].verdict.score);
  EXPECT_EQ(inflight[0].verdict.queries, baseline[0].verdict.queries);
  // ...while the next batch resolves to v2.
  nn::BlackBoxAdapter next(*fixture().suspicious.model);
  EXPECT_EQ(engine.audit({request_for("aud", &next)})[0].detector_version,
            "aud@v2");
}

/// Queries at a crawl so a deadline reliably expires mid-inspection.  No
/// replicate(): the ensemble runs serially, making "between members" a real
/// boundary on any pool size.
class SlowBox final : public nn::BlackBoxModel {
 public:
  explicit SlowBox(nn::Model& model) : inner_(model) {}
  nn::Tensor predict_proba(const nn::Tensor& images) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    return inner_.predict_proba(images);
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return inner_.num_classes();
  }
  [[nodiscard]] nn::ImageShape input_shape() const override {
    return inner_.input_shape();
  }
  [[nodiscard]] std::size_t query_count() const override {
    return inner_.query_count();
  }

 private:
  nn::BlackBoxAdapter inner_;
};

TEST(ApiEngine, DeadlineExceededMidAuditReportsExactSpend) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_middl")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());

  // The deadline is generous enough that the audit starts (the pre-start
  // check passes) but far too tight for even the first ensemble member of
  // a 25ms-per-query model — so the overrun is caught at the member
  // boundary inside inspect(), the regression under test (pre-fix, the
  // inspection ran to completion and returned a stale verdict).
  SlowBox slow(*fixture().suspicious.model);
  auto request = request_for("aud", &slow);
  request.deadline_ms = 100;
  const auto responses = engine.audit({request});
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kDeadlineExceeded);
  // Mid-flight (not pre-start): queries were really spent, and the spend
  // is reported exactly so callers can meter paid models.
  EXPECT_GT(responses[0].verdict.queries, 0U);
  EXPECT_GT(slow.query_count(), 0U);
  // The aborted inspection never reaches the meta-classifier: no verdict.
  EXPECT_EQ(engine.stats().verdicts, 0U);
  EXPECT_EQ(engine.stats().deadline_misses, 1U);
}

TEST(ApiEngine, DeadlineAlreadyExpiredFailsBeforeAnyQuery) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_predl")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());
  nn::BlackBoxAdapter box(*fixture().suspicious.model);
  auto request = request_for("aud", &box);
  request.deadline_ms = 1;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // audit() anchors its clock at entry; force the pre-start path by an
  // already-hopeless deadline through the async surface, whose clock
  // anchors at submission.
  auto future = engine.audit_async({request});
  const auto responses = future.get();
  ASSERT_EQ(responses.size(), 1U);
  EXPECT_EQ(responses[0].status.code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(box.query_count(), 0U);  // never queried
  EXPECT_EQ(engine.stats().deadline_misses, 1U);
}

TEST(ApiEngine, TwoEnginesPublishingConcurrentlyNeverCollide) {
  const std::string dir = fresh_dir("bprom_api_twowriters");
  api::AuditEngine left({.store_dir = dir});
  api::AuditEngine right({.store_dir = dir});
  ASSERT_TRUE(left.status().ok());
  ASSERT_TRUE(right.status().ok());

  // Pre-fix, both engines could scan the directory concurrently, mint the
  // same "aud@vN", and one publish would silently vanish.  Under the
  // StoreLock every publish mints a distinct version.
  constexpr int kPerEngine = 3;
  std::atomic<int> failures{0};
  auto publisher = [&failures](api::AuditEngine& engine) {
    for (int i = 0; i < kPerEngine; ++i) {
      if (!engine.publish("aud", fixture().detector).ok()) {
        failures.fetch_add(1);
      }
    }
  };
  std::thread a(publisher, std::ref(left));
  std::thread b(publisher, std::ref(right));
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);

  // All 2k versions exist — none was overwritten or skipped.
  api::AuditEngine fresh({.store_dir = dir});
  const auto listed = fresh.list();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().size(), 2U * kPerEngine);
  for (int v = 1; v <= 2 * kPerEngine; ++v) {
    EXPECT_TRUE(fresh.info("aud@v" + std::to_string(v)).ok()) << v;
  }
  // The store generation counted every publish, across both engines.
  EXPECT_EQ(fresh.stats().store_generation,
            static_cast<std::uint64_t>(2 * kPerEngine));
  // No lock debris left behind.
  EXPECT_FALSE(fs::exists(fs::path(dir) / serve::StoreLock::kLockName));
}

TEST(ApiEngine, AsyncVerdictsMatchSyncThroughTheRing) {
  api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_ringdet")});
  ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());

  // The ring hand-off must not perturb determinism: the same batch through
  // audit() and audit_async() yields bit-identical verdicts (salts depend
  // on batch index only, never on which worker popped the job).
  nn::BlackBoxAdapter sync0(*fixture().suspicious.model);
  nn::BlackBoxAdapter sync1(*fixture().suspicious.model);
  const auto sync = engine.audit(
      {request_for("aud", &sync0, "a"), request_for("aud", &sync1, "b")});
  nn::BlackBoxAdapter async0(*fixture().suspicious.model);
  nn::BlackBoxAdapter async1(*fixture().suspicious.model);
  const auto async = engine
                         .audit_async({request_for("aud", &async0, "a"),
                                       request_for("aud", &async1, "b")})
                         .get();
  ASSERT_EQ(async.size(), 2U);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(sync[i].status.ok());
    ASSERT_TRUE(async[i].status.ok());
    EXPECT_EQ(async[i].verdict.score, sync[i].verdict.score);
    EXPECT_EQ(async[i].verdict.queries, sync[i].verdict.queries);
  }

  // The always-on profiler saw the traffic: queue wait + batch timing for
  // the async batch, per-request and resolve samples for both.
  const auto stats = engine.stats();
  EXPECT_GE(stats.profile[util::ProfileStage::kQueueWait].count, 1U);
  EXPECT_GE(stats.profile[util::ProfileStage::kBatch].count, 1U);
  EXPECT_GE(stats.profile[util::ProfileStage::kRequest].count, 4U);
  EXPECT_GT(stats.profile[util::ProfileStage::kRequest].max, 0U);
}

TEST(ApiEngine, DestructorDrainsQueuedAsyncBatches) {
  std::vector<std::future<std::vector<api::AuditResponse>>> futures;
  std::vector<std::unique_ptr<nn::BlackBoxAdapter>> boxes;
  {
    api::AuditEngine engine({.store_dir = fresh_dir("bprom_api_drain"),
                             .async_queue_capacity = 4,
                             .async_workers = 1});
    ASSERT_TRUE(engine.publish("aud", fixture().detector).ok());
    // More batches than workers: some are still queued in the ring when
    // the engine starts tearing down.  Every future must still resolve.
    for (int i = 0; i < 6; ++i) {
      boxes.push_back(std::make_unique<nn::BlackBoxAdapter>(
          *fixture().suspicious.model));
      futures.push_back(engine.audit_async(
          {request_for("aud", boxes.back().get(), "m" + std::to_string(i))}));
    }
  }  // ~AuditEngine: close ring, drain, join
  for (auto& future : futures) {
    const auto responses = future.get();  // must not hang or throw
    ASSERT_EQ(responses.size(), 1U);
    EXPECT_TRUE(responses[0].status.ok());
  }
}

TEST(ApiEngine, LegacyUnversionedContainersResolveAsV1) {
  const std::string dir = fresh_dir("bprom_api_legacy");
  {
    serve::DetectorStore store(dir);  // pre-façade layout: bare name
    store.put("old", fixture().detector);
  }
  api::AuditEngine engine({.store_dir = dir});
  const auto info = engine.info("old");
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().versioned_name(), "old@v1");
  EXPECT_TRUE(engine.info("old@v1").ok());
  // Publishing over a legacy container starts at v2.
  EXPECT_EQ(engine.publish("old", fixture().detector).value().version, 2U);
}

}  // namespace
}  // namespace bprom
