// Table 6: AUROC on tiny-imagenet-like, ResNet18Mini + MobileNetV2Mini.
#include "common.hpp"
int main() {
  using namespace bench;
  BenchReport report("table06_tinyimagenet");
  auto env = Env::make();
  auto tiny = data::make_dataset(data::DatasetKind::kTinyImageNet, 1);
  const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan, attacks::AttackKind::kWaNet,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kStrip, defenses::DefenseKind::kScan,
      defenses::DefenseKind::kScaleUp, defenses::DefenseKind::kCd,
      defenses::DefenseKind::kMmBd};
  for (auto arch : {nn::ArchKind::kResNet18Mini, nn::ArchKind::kMobileNetV2Mini}) {
    std::vector<std::string> header = {"defense"};
    for (auto a : kinds) header.push_back(attacks::attack_name(a));
    header.push_back("AVG");
    util::TablePrinter table(header);
    const auto cells = baseline_grid(baselines, tiny, kinds, arch, 210, env.scale);
    report.add_cells(tiny, cells, nn::arch_name(arch));
    for (std::size_t d = 0; d < baselines.size(); ++d) {
      std::vector<std::string> row = {defenses::defense_name(baselines[d])};
      double avg = 0;
      for (std::size_t a = 0; a < kinds.size(); ++a) {
        const auto& eval = cells[d * kinds.size() + a].eval;
        row.push_back(util::cell(eval.auroc));
        avg += eval.auroc;
      }
      row.push_back(util::cell(avg / kinds.size()));
      table.add_row(row);
    }
    auto detector = core::fit_detector(tiny, env.stl10, 0.10, arch, 7, env.scale);
    std::vector<std::string> row = {"BPROM (10%)"};
    double avg = 0;
    for (const auto& cell :
         bprom_row(detector, tiny, arch, 350, env.scale, kinds)) {
      row.push_back(util::cell(cell.auroc));
      avg += cell.auroc;
    }
    row.push_back(util::cell(avg / kinds.size()));
    table.add_row(row);
    std::printf("== Table 6 (tiny-imagenet-like, %s): AUROC ==\n", nn::arch_name(arch).c_str());
    table.print();
  }
  report.write();
  return 0;
}
