#include "net/client.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "io/binary.hpp"
#include "nn/model.hpp"

namespace bprom::net {

namespace {

/// Lift a wire response into the façade's value type (same fields).
api::AuditResponse from_wire(AuditResponseMsg msg) {
  api::AuditResponse out;
  out.struct_version = msg.struct_version;
  out.model_id = std::move(msg.model_id);
  out.detector_version = std::move(msg.detector_version);
  out.status = std::move(msg.status);
  out.verdict = msg.verdict;
  out.seconds = msg.seconds;
  return out;
}

/// Transport failures only: a dead/hung socket looks like kInternal (errno
/// status, injected fault, server hangup) or kDeadlineExceeded (poll
/// timeout).  Typed application rejections arrive in-band in a response
/// slot and never reach this predicate.
bool transport_retryable(const api::Status& status) {
  return status.code() == api::StatusCode::kInternal ||
         status.code() == api::StatusCode::kDeadlineExceeded;
}

api::Result<Socket> dial(const ClientConfig& config) {
  return config.connect_timeout_ms > 0 || config.send_timeout_ms > 0 ||
                 config.recv_timeout_ms > 0
             ? connect_to(config.host, config.port, config.connect_timeout_ms)
             : connect_to(config.host, config.port);
}

}  // namespace

api::Result<Client> Client::connect(const ClientConfig& config) {
  auto sock = dial(config);
  if (!sock.ok()) return sock.status();
  return Client(std::move(sock).value(), config);
}

api::Status Client::reconnect() {
  close();
  auto sock = dial(config_);
  if (!sock.ok()) return sock.status();
  sock_ = std::move(sock).value();
  // Any half-received frame died with the old connection.
  assembler_ = FrameAssembler(config_.max_frame_bytes);
  return api::Status::Ok();
}

api::Status Client::send_frame(MsgType type, std::uint64_t request_id,
                               const io::Writer& body) {
  const std::vector<std::uint8_t> frame = encode_frame(type, request_id, body);
  api::Status sent =
      bounded()
          ? send_all(sock_.fd(), frame.data(), frame.size(),
                     config_.send_timeout_ms)
          : send_all(sock_.fd(), frame.data(), frame.size());
  if (!sent.ok()) close();  // a half-written frame is unrecoverable
  return sent;
}

api::Status Client::read_frame(FrameHeader* header,
                               std::vector<std::uint8_t>* body) {
  std::array<std::uint8_t, 16 * 1024> buf;
  for (;;) {
    const FrameAssembler::Next next = assembler_.next(header, body);
    if (next == FrameAssembler::Next::kFrame) return api::Status::Ok();
    if (next == FrameAssembler::Next::kError) {
      api::Status error = assembler_.error();
      close();
      return error;
    }
    std::size_t got = 0;
    api::Status s = bounded()
                        ? recv_some(sock_.fd(), buf.data(), buf.size(), &got,
                                    config_.recv_timeout_ms)
                        : recv_some(sock_.fd(), buf.data(), buf.size(), &got);
    if (!s.ok()) {
      close();
      return s;
    }
    if (got == 0) {
      close();
      return api::Status::Internal(
          "server closed the connection before answering");
    }
    assembler_.append(buf.data(), got);
  }
}

api::Result<api::AuditResponse> Client::audit(
    const ClientAuditRequest& request) {
  auto responses = audit_batch({request});
  if (!responses.ok()) return responses.status();
  return std::move(responses).value()[0];
}

api::Status Client::audit_round(
    const std::vector<ClientAuditRequest>& requests,
    const std::vector<std::uint64_t>& ids, std::vector<bool>* answered,
    std::vector<api::AuditResponse>* out) {
  // Pipelining: write every unanswered request frame up front, then collect
  // responses matched by echoed request id (the server may complete out of
  // order).  On a retry pass only the unanswered slots are resent — under
  // their ORIGINAL ids, so a replayed audit is the same request, not a new
  // one — while slots the server already answered (verdicts and typed
  // rejections alike) are left untouched.
  std::map<std::uint64_t, std::size_t> pending;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if ((*answered)[i]) continue;
    const ClientAuditRequest& request = requests[i];
    AuditRequestMsg msg;
    msg.model_id = request.model_id;
    msg.detector = request.detector;
    msg.query_budget = request.query_budget;
    msg.deadline_ms = request.deadline_ms;
    io::Writer writer;
    encode_audit_request(writer, msg, *request.model);
    if (api::Status s = send_frame(MsgType::kAuditRequest, ids[i], writer);
        !s.ok()) {
      return s;
    }
    pending.emplace(ids[i], i);
  }
  while (!pending.empty()) {
    FrameHeader header;
    std::vector<std::uint8_t> body;
    if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
    const auto it = pending.find(header.request_id);
    if (it == pending.end()) {
      close();
      return api::Status::Internal(
          "server answered request id " + std::to_string(header.request_id) +
          " which is not pending");
    }
    const std::size_t slot = it->second;
    pending.erase(it);
    try {
      io::Reader reader(std::move(body));
      if (header.type == MsgType::kAuditResponse) {
        (*out)[slot] = from_wire(decode_audit_response(reader));
      } else if (header.type == MsgType::kError) {
        // Typed rejection (admission, undecodable request): surface it as
        // the slot's status, like the engine reports per-request failures.
        // The slot counts as ANSWERED — the server made an application
        // decision, and retrying it would re-spend budgets it already
        // refused to spend.
        (*out)[slot].model_id = requests[slot].model_id;
        (*out)[slot].status = decode_error(reader).status;
      } else {
        close();
        return api::Status::Internal(
            "server answered an audit with message type " +
            std::to_string(static_cast<unsigned>(header.type)));
      }
      (*answered)[slot] = true;
    } catch (const io::IoError& e) {
      close();
      return status_from_io(e);
    }
  }
  return api::Status::Ok();
}

api::Result<std::vector<api::AuditResponse>> Client::audit_batch(
    const std::vector<ClientAuditRequest>& requests) {
  // Validate before anything hits the wire: a malformed batch is a caller
  // bug, not a transport fault, and must not trigger reconnects.
  for (const ClientAuditRequest& request : requests) {
    if (request.model == nullptr) {
      return api::Status::InvalidRequest(
          "audit request '" + request.model_id + "' has no model");
    }
  }
  // Ids are minted once and survive retries: a resent slot is the SAME
  // request (unchanged id), which is what makes the retry idempotent.
  std::vector<std::uint64_t> ids(requests.size());
  for (auto& id : ids) id = next_id_++;
  std::vector<api::AuditResponse> out(requests.size());
  std::vector<bool> answered(requests.size(), false);

  const int attempts = std::max(1, config_.retry.max_attempts);
  api::Status last = api::Status::Ok();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Exponential backoff with deterministic seeded jitter.
      double backoff = config_.retry.backoff_initial_ms;
      for (int i = 1; i < attempt - 1; ++i) {
        backoff *= config_.retry.backoff_multiplier;
      }
      backoff = std::min(backoff,
                         static_cast<double>(config_.retry.backoff_max_ms));
      const auto jitter =
          backoff > 1.0 ? jitter_.uniform_index(
                              static_cast<std::size_t>(backoff / 2) + 1)
                        : 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::int64_t>(backoff) +
          static_cast<std::int64_t>(jitter)));
    }
    if (!sock_.valid()) {
      if (attempt == 1 && attempts == 1) {
        return api::Status::FailedPrecondition("client is not connected");
      }
      if (api::Status s = reconnect(); !s.ok()) {
        last = s;
        continue;  // server may still be coming back; keep backing off
      }
    }
    last = audit_round(requests, ids, &answered, &out);
    if (last.ok()) return out;
    if (!transport_retryable(last)) return last;
  }
  return last;
}

api::Status Client::shutdown() {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  io::Writer writer;
  encode_shutdown_request(writer);
  const std::uint64_t id = next_id_++;
  if (api::Status s = send_frame(MsgType::kShutdownRequest, id, writer);
      !s.ok()) {
    return s;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
  if (header.request_id != id) {
    close();
    return api::Status::Internal("server answered the wrong request id");
  }
  try {
    io::Reader reader(std::move(body));
    if (header.type == MsgType::kError) return decode_error(reader).status;
    if (header.type != MsgType::kShutdownResponse) {
      close();
      return api::Status::Internal(
          "server answered shutdown with message type " +
          std::to_string(static_cast<unsigned>(header.type)));
    }
    return decode_shutdown_response(reader).status;
  } catch (const io::IoError& e) {
    close();
    return status_from_io(e);
  }
}

api::Result<StatsResponseMsg> Client::stats() {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  io::Writer writer;
  encode_stats_request(writer);
  const std::uint64_t id = next_id_++;
  if (api::Status s = send_frame(MsgType::kStatsRequest, id, writer); !s.ok()) {
    return s;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
  if (header.request_id != id) {
    close();
    return api::Status::Internal("server answered the wrong request id");
  }
  try {
    io::Reader reader(std::move(body));
    if (header.type == MsgType::kError) return decode_error(reader).status;
    if (header.type != MsgType::kStatsResponse) {
      close();
      return api::Status::Internal(
          "server answered stats with message type " +
          std::to_string(static_cast<unsigned>(header.type)));
    }
    return decode_stats_response(reader);
  } catch (const io::IoError& e) {
    close();
    return status_from_io(e);
  }
}

api::Result<api::DetectorInfo> Client::info(const std::string& detector) {
  if (!sock_.valid()) {
    return api::Status::FailedPrecondition("client is not connected");
  }
  InfoRequestMsg msg;
  msg.detector = detector;
  io::Writer writer;
  encode_info_request(writer, msg);
  const std::uint64_t id = next_id_++;
  if (api::Status s = send_frame(MsgType::kInfoRequest, id, writer); !s.ok()) {
    return s;
  }
  FrameHeader header;
  std::vector<std::uint8_t> body;
  if (api::Status s = read_frame(&header, &body); !s.ok()) return s;
  if (header.request_id != id) {
    close();
    return api::Status::Internal("server answered the wrong request id");
  }
  try {
    io::Reader reader(std::move(body));
    if (header.type == MsgType::kError) return decode_error(reader).status;
    if (header.type != MsgType::kInfoResponse) {
      close();
      return api::Status::Internal(
          "server answered info with message type " +
          std::to_string(static_cast<unsigned>(header.type)));
    }
    InfoResponseMsg response = decode_info_response(reader);
    if (!response.status.ok()) return response.status;
    return response.info;
  } catch (const io::IoError& e) {
    close();
    return status_from_io(e);
  }
}

}  // namespace bprom::net
