// Figure 3: class-subspace PCA scatter for clean/infected source models and
// their prompted (target) views.  Emits CSV + ASCII scatter.
#include "common.hpp"
#include "linalg/pca.hpp"
#include "metrics/scatter.hpp"
#include "vp/train_whitebox.hpp"
int main() {
  using namespace bench;
  auto env = Env::make();
  util::Rng rng(21);
  auto dt_train = data::subset(env.stl10.train,
                               rng.sample_without_replacement(env.stl10.train.size(), 256));
  auto emit = [&](nn::Model& model, const nn::LabeledData& samples,
                  const std::string& tag) {
    nn::Tensor feats = model.features(samples.images);
    linalg::Matrix m(samples.size(), model.feature_dim());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = 0; j < model.feature_dim(); ++j) {
        m(i, j) = feats.data()[i * model.feature_dim() + j];
      }
    }
    auto pca = linalg::fit_pca(m, 2);
    std::vector<metrics::ScatterSeries> series(4);
    for (std::size_t c = 0; c < 4; ++c) series[c].label = tag + " class " + std::to_string(c);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto c = static_cast<std::size_t>(samples.labels[i]);
      if (c >= 4) continue;  // figure shows four subspaces
      auto p = pca.project(m.row(i));
      series[c].x.push_back(p[0]);
      series[c].y.push_back(p[1]);
    }
    metrics::write_scatter_csv("figure03_" + tag + ".csv", series);
    std::printf("-- %s --\n%s", tag.c_str(),
                metrics::ascii_scatter(series, 64, 16).c_str());
  };

  auto clean = core::train_clean_model(env.cifar10, nn::ArchKind::kResNet18Mini, 31, env.scale);
  auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets, 0);
  auto infected = core::train_backdoored_model(env.cifar10, atk, nn::ArchKind::kResNet18Mini, 32, env.scale);

  util::Rng srng(33);
  auto src_samples = data::subset(env.cifar10.test, srng.sample_without_replacement(env.cifar10.test.size(), 200));
  emit(*clean.model, src_samples, "clean_source");
  emit(*infected.model, src_samples, "infected_source");

  // Prompted (target) views: push stl10 samples through each model's prompt.
  for (auto* ts : {&clean, &infected}) {
    vp::WhiteBoxPromptConfig pc; pc.epochs = env.scale.prompt_epochs;
    auto prompt = vp::learn_prompt_whitebox(*ts->model, dt_train, pc);
    auto tgt_samples = data::subset(env.stl10.test, srng.sample_without_replacement(env.stl10.test.size(), 200));
    nn::LabeledData prompted;
    prompted.images = prompt.apply(tgt_samples.images);
    prompted.labels = tgt_samples.labels;
    emit(*ts->model, prompted, ts->backdoored ? "infected_target" : "clean_target");
  }
  std::printf("CSV series written to figure03_*.csv\n");
  return 0;
}
