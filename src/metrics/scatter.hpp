// Figure output: CSV series + ASCII scatter plots for the paper's Figures 3
// and 5 (the substrate is headless, so plots are rendered as text and the
// raw series are written to CSV for external plotting).
#pragma once

#include <string>
#include <vector>

namespace bprom::metrics {

struct ScatterSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Write all series to a CSV with columns: series,x,y.
void write_scatter_csv(const std::string& path,
                       const std::vector<ScatterSeries>& series);

/// Render an ASCII scatter (each series gets a distinct glyph).
std::string ascii_scatter(const std::vector<ScatterSeries>& series,
                          std::size_t width = 72, std::size_t height = 24);

}  // namespace bprom::metrics
