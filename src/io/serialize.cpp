#include "io/serialize.hpp"

#include "meta/decision_tree.hpp"
#include "nn/arch.hpp"
#include "util/rng.hpp"

namespace bprom::io {
namespace {

// Sanity ceilings on header-declared dimensions, checked before anything
// is allocated from them: a CRC-valid container whose size fields were
// written corrupt (or adversarially) must raise IoError, not bad_alloc.
// Far above every real substrate (16x16 canvases, <=200 classes).
constexpr std::size_t kMaxImagePixels = std::size_t{1} << 26;
constexpr std::size_t kMaxClasses = std::size_t{1} << 20;

nn::ImageShape read_image_shape(Reader& reader) {
  nn::ImageShape shape;
  shape.channels = static_cast<std::size_t>(reader.read_u64());
  shape.height = static_cast<std::size_t>(reader.read_u64());
  shape.width = static_cast<std::size_t>(reader.read_u64());
  if (shape.channels == 0 || shape.height == 0 || shape.width == 0 ||
      shape.channels > kMaxImagePixels ||
      shape.height > kMaxImagePixels || shape.width > kMaxImagePixels ||
      shape.size() / shape.channels / shape.height != shape.width ||
      shape.size() > kMaxImagePixels) {
    throw IoError("image shape out of range");
  }
  return shape;
}

std::vector<std::size_t> shape_of(const tensor::Tensor& t) { return t.shape(); }

void save_train_config(Writer& w, const nn::TrainConfig& c) {
  w.write_u64(c.epochs);
  w.write_u64(c.batch_size);
  w.write_f32(c.lr);
  w.write_f32(c.momentum);
  w.write_f32(c.weight_decay);
  w.write_f32(c.lr_decay);
  w.write_u64(c.seed);
}

nn::TrainConfig load_train_config(Reader& r) {
  nn::TrainConfig c;
  c.epochs = static_cast<std::size_t>(r.read_u64());
  c.batch_size = static_cast<std::size_t>(r.read_u64());
  c.lr = r.read_f32();
  c.momentum = r.read_f32();
  c.weight_decay = r.read_f32();
  c.lr_decay = r.read_f32();
  c.seed = r.read_u64();
  return c;
}

void save_forest_config(Writer& w, const meta::ForestConfig& c) {
  w.write_u64(c.trees);
  w.write_u64(c.tree.max_depth);
  w.write_u64(c.tree.min_samples_leaf);
  w.write_u64(c.tree.feature_subsample);
  w.write_u64(c.seed);
}

meta::ForestConfig load_forest_config(Reader& r) {
  meta::ForestConfig c;
  c.trees = static_cast<std::size_t>(r.read_u64());
  c.tree.max_depth = static_cast<std::size_t>(r.read_u64());
  c.tree.min_samples_leaf = static_cast<std::size_t>(r.read_u64());
  c.tree.feature_subsample = static_cast<std::size_t>(r.read_u64());
  c.seed = r.read_u64();
  return c;
}

}  // namespace

// --------------------------------------------------------------- Tensor

void save_tensor(Writer& writer, const tensor::Tensor& t) {
  writer.write_tag("TNSR");
  writer.write_u64_vec(shape_of(t));
  writer.write_f32_vec(t.vec());
}

tensor::Tensor load_tensor(Reader& reader) {
  reader.expect_tag("TNSR");
  const auto shape = reader.read_u64_vec();
  const auto data = reader.read_f32_vec();
  if (data.size() != tensor::shape_size(shape)) {
    throw IoError("tensor data size does not match its shape");
  }
  tensor::Tensor t(shape);
  t.vec() = data;
  return t;
}

// --------------------------------------------------------- LabeledData

void save_labeled_data(Writer& writer, const nn::LabeledData& data) {
  writer.write_tag("DATA");
  save_tensor(writer, data.images);
  writer.write_i32_vec(data.labels);
}

nn::LabeledData load_labeled_data(Reader& reader) {
  reader.expect_tag("DATA");
  nn::LabeledData data;
  data.images = load_tensor(reader);
  data.labels = reader.read_i32_vec();
  if (data.images.rank() > 0 && data.images.dim(0) != data.labels.size()) {
    throw IoError("labeled data batch/label count mismatch");
  }
  return data;
}

// -------------------------------------------------------- VisualPrompt

void save_prompt(Writer& writer, const vp::VisualPrompt& prompt) {
  writer.write_tag("VPRM");
  writer.write_u64(prompt.canvas().channels);
  writer.write_u64(prompt.canvas().height);
  writer.write_u64(prompt.canvas().width);
  writer.write_u32(static_cast<std::uint32_t>(prompt.mode()));
  writer.write_f32_vec(prompt.theta());
}

vp::VisualPrompt load_prompt(Reader& reader) {
  reader.expect_tag("VPRM");
  const nn::ImageShape canvas = read_image_shape(reader);
  const auto mode = static_cast<vp::PromptMode>(reader.read_u32());
  if (mode != vp::PromptMode::kBorder && mode != vp::PromptMode::kAdditive &&
      mode != vp::PromptMode::kAdditiveCoarse) {
    throw IoError("unknown visual-prompt mode");
  }
  vp::VisualPrompt prompt(canvas, mode);
  const auto theta = reader.read_f32_vec();
  if (theta.size() != prompt.num_params()) {
    throw IoError("visual-prompt parameter count mismatch");
  }
  prompt.set_theta(theta);
  return prompt;
}

// ---------------------------------------------------------- file wrappers

void save_model_file(const std::string& path, nn::Model& model) {
  Writer writer;
  model.save(writer);
  writer.save_file(path);
}

std::unique_ptr<nn::Model> load_model_file(const std::string& path) {
  Reader reader = Reader::from_file(path);
  return nn::Model::load(reader);
}

void save_forest_file(const std::string& path,
                      const meta::RandomForest& forest) {
  Writer writer;
  forest.save(writer);
  writer.save_file(path);
}

meta::RandomForest load_forest_file(const std::string& path) {
  Reader reader = Reader::from_file(path);
  return meta::RandomForest::load(reader);
}

void save_detector_file(const std::string& path,
                        const core::BpromDetector& detector) {
  Writer writer;
  detector.save(writer);
  writer.save_file(path);
}

core::BpromDetector load_detector_file(const std::string& path) {
  Reader reader = Reader::from_file(path);
  return core::BpromDetector::load(reader);
}

}  // namespace bprom::io

// ----------------------------------------------------------------------
// Member serializers: these live here (not next to their classes) so the
// io subsystem stays the single owner of the wire format, while private
// state stays private.
// ----------------------------------------------------------------------

namespace bprom::meta {

void DecisionTree::save(io::Writer& writer) const {
  writer.write_tag("TREE");
  writer.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.write_i32(node.feature);
    writer.write_f32(node.threshold);
    writer.write_f64(node.p1);
    writer.write_i32(node.left);
    writer.write_i32(node.right);
  }
}

DecisionTree DecisionTree::load(io::Reader& reader, std::size_t feature_dim) {
  reader.expect_tag("TREE");
  DecisionTree tree;
  const std::uint64_t count = reader.read_u64();
  tree.nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = reader.read_i32();
    node.threshold = reader.read_f32();
    node.p1 = reader.read_f64();
    node.left = reader.read_i32();
    node.right = reader.read_i32();
    // Structural soundness: a leaf has feature -1; an interior node splits
    // on a feature inside [0, feature_dim) and its children come strictly
    // after it (fit() builds trees that way), which also guarantees the
    // predict walk terminates.
    const auto n = static_cast<std::int64_t>(count);
    const auto self = static_cast<std::int64_t>(i);
    if (node.feature < -1 ||
        node.feature >= static_cast<std::int64_t>(feature_dim)) {
      throw io::IoError("decision-tree split feature out of range");
    }
    if (node.feature >= 0 &&
        (node.left <= self || node.right <= self || node.left >= n ||
         node.right >= n)) {
      throw io::IoError("decision-tree child index out of range");
    }
    tree.nodes_.push_back(node);
  }
  return tree;
}

void RandomForest::save(io::Writer& writer) const {
  writer.write_tag("FRST");
  io::save_forest_config(writer, config_);
  writer.write_u64(feature_dim_);
  writer.write_u64(trees_.size());
  for (const DecisionTree& tree : trees_) tree.save(writer);
}

RandomForest RandomForest::load(io::Reader& reader) {
  reader.expect_tag("FRST");
  RandomForest forest(io::load_forest_config(reader));
  forest.feature_dim_ = static_cast<std::size_t>(reader.read_u64());
  const std::uint64_t count = reader.read_u64();
  forest.trees_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    forest.trees_.push_back(DecisionTree::load(reader, forest.feature_dim_));
  }
  return forest;
}

}  // namespace bprom::meta

namespace bprom::nn {

void Model::save(io::Writer& writer) {
  writer.write_tag("MODL");
  writer.write_u32(static_cast<std::uint32_t>(arch_));
  writer.write_u64(input_.channels);
  writer.write_u64(input_.height);
  writer.write_u64(input_.width);
  writer.write_u64(classes_);
  writer.write_f32_vec(save_parameters());
}

std::unique_ptr<Model> Model::load(io::Reader& reader) {
  reader.expect_tag("MODL");
  const std::uint32_t arch_raw = reader.read_u32();
  if (arch_raw > static_cast<std::uint32_t>(ArchKind::kMlp)) {
    throw io::IoError("unknown model architecture tag " +
                      std::to_string(arch_raw));
  }
  const auto arch = static_cast<ArchKind>(arch_raw);
  const ImageShape input = io::read_image_shape(reader);
  const auto classes = static_cast<std::size_t>(reader.read_u64());
  if (classes == 0 || classes > io::kMaxClasses) {
    throw io::IoError("model class count out of range");
  }
  const auto blob = reader.read_f32_vec();

  // Rebuild the layer graph from the architecture descriptor, then
  // overwrite every parameter and state buffer — the init Rng is dummy.
  util::Rng rng(0);
  auto model = make_model(arch, input, classes, rng);
  std::size_t expected = 0;
  for (auto* p : model->parameters()) expected += p->value.size();
  for (auto* s : model->state_buffers()) expected += s->size();
  if (blob.size() != expected) {
    throw io::IoError("model weight blob size mismatch: file has " +
                      std::to_string(blob.size()) + " floats, architecture " +
                      arch_name(arch) + " needs " + std::to_string(expected));
  }
  model->load_parameters(blob);
  return model;
}

}  // namespace bprom::nn

namespace bprom::core {

void BpromDetector::save(io::Writer& writer) const {
  if (!fitted_) {
    throw io::IoError("cannot save an unfitted BpromDetector",
                      io::ErrorKind::kPrecondition);
  }
  writer.write_tag("DTCT");

  // Config (the borrowed pool pointer is runtime-only and not persisted).
  writer.write_u32(static_cast<std::uint32_t>(config_.shadow_arch));
  writer.write_u64(config_.clean_shadows);
  writer.write_u64(config_.backdoor_shadows);
  writer.write_u32(static_cast<std::uint32_t>(config_.shadow_attack));
  writer.write_f64(config_.shadow_poison_rate);
  writer.write_u64(config_.query_samples);
  io::save_train_config(writer, config_.shadow_train);
  writer.write_u64(config_.prompt_whitebox.epochs);
  writer.write_u64(config_.prompt_whitebox.batch_size);
  writer.write_f32(config_.prompt_whitebox.lr);
  writer.write_u64(config_.prompt_whitebox.seed);
  writer.write_u64(config_.prompt_blackbox.eval_samples);
  writer.write_u64(config_.prompt_blackbox.max_evaluations);
  writer.write_f64(config_.prompt_blackbox.sigma0);
  writer.write_u32(static_cast<std::uint32_t>(config_.prompt_blackbox.optimizer));
  writer.write_u32(static_cast<std::uint32_t>(config_.prompt_blackbox.mode));
  writer.write_u64(config_.prompt_blackbox.seed);
  io::save_forest_config(writer, config_.forest);
  writer.write_u8(config_.prompt_shadows_blackbox ? 1 : 0);
  writer.write_u64(config_.prompt_ensemble);
  writer.write_u8(config_.include_query_features ? 1 : 0);
  writer.write_u8(config_.sort_confidence_features ? 1 : 0);
  writer.write_u64(config_.seed);

  // Fitted state.
  writer.write_u64(source_classes_);
  writer.write_u64(target_classes_);
  io::save_labeled_data(writer, target_train_);
  io::save_labeled_data(writer, target_test_);
  io::save_labeled_data(writer, query_set_);
  forest_.save(writer);

  // Diagnostics.
  writer.write_f64_vec(diag_.clean_shadow_prompted_accuracy);
  writer.write_f64_vec(diag_.backdoor_shadow_prompted_accuracy);
  writer.write_u64(diag_.meta_features.size());
  for (const auto& row : diag_.meta_features) writer.write_f32_vec(row);
  writer.write_i32_vec(diag_.meta_labels);
}

BpromDetector BpromDetector::load(io::Reader& reader) {
  reader.expect_tag("DTCT");

  BpromConfig config;
  const std::uint32_t arch_raw = reader.read_u32();
  if (arch_raw > static_cast<std::uint32_t>(nn::ArchKind::kMlp)) {
    throw io::IoError("unknown shadow architecture tag");
  }
  config.shadow_arch = static_cast<nn::ArchKind>(arch_raw);
  config.clean_shadows = static_cast<std::size_t>(reader.read_u64());
  config.backdoor_shadows = static_cast<std::size_t>(reader.read_u64());
  const std::uint32_t attack_raw = reader.read_u32();
  if (attack_raw > static_cast<std::uint32_t>(attacks::AttackKind::kPoisonInk)) {
    throw io::IoError("unknown shadow attack tag");
  }
  config.shadow_attack = static_cast<attacks::AttackKind>(attack_raw);
  config.shadow_poison_rate = reader.read_f64();
  config.query_samples = static_cast<std::size_t>(reader.read_u64());
  config.shadow_train = io::load_train_config(reader);
  config.prompt_whitebox.epochs = static_cast<std::size_t>(reader.read_u64());
  config.prompt_whitebox.batch_size =
      static_cast<std::size_t>(reader.read_u64());
  config.prompt_whitebox.lr = reader.read_f32();
  config.prompt_whitebox.seed = reader.read_u64();
  config.prompt_blackbox.eval_samples =
      static_cast<std::size_t>(reader.read_u64());
  config.prompt_blackbox.max_evaluations =
      static_cast<std::size_t>(reader.read_u64());
  config.prompt_blackbox.sigma0 = reader.read_f64();
  const std::uint32_t optimizer_raw = reader.read_u32();
  if (optimizer_raw > static_cast<std::uint32_t>(vp::BlackBoxOptimizer::kCmaEs)) {
    throw io::IoError("unknown black-box optimizer tag");
  }
  config.prompt_blackbox.optimizer =
      static_cast<vp::BlackBoxOptimizer>(optimizer_raw);
  const std::uint32_t mode_raw = reader.read_u32();
  if (mode_raw > static_cast<std::uint32_t>(opt::CovarianceMode::kSeparable)) {
    throw io::IoError("unknown covariance mode tag");
  }
  config.prompt_blackbox.mode = static_cast<opt::CovarianceMode>(mode_raw);
  config.prompt_blackbox.seed = reader.read_u64();
  config.forest = io::load_forest_config(reader);
  config.prompt_shadows_blackbox = reader.read_u8() != 0;
  config.prompt_ensemble = static_cast<std::size_t>(reader.read_u64());
  config.include_query_features = reader.read_u8() != 0;
  config.sort_confidence_features = reader.read_u8() != 0;
  config.seed = reader.read_u64();
  config.pool = nullptr;

  BpromDetector detector(config);
  detector.source_classes_ = static_cast<std::size_t>(reader.read_u64());
  detector.target_classes_ = static_cast<std::size_t>(reader.read_u64());
  detector.target_train_ = io::load_labeled_data(reader);
  detector.target_test_ = io::load_labeled_data(reader);
  detector.query_set_ = io::load_labeled_data(reader);
  detector.forest_ = meta::RandomForest::load(reader);

  detector.diag_.clean_shadow_prompted_accuracy = reader.read_f64_vec();
  detector.diag_.backdoor_shadow_prompted_accuracy = reader.read_f64_vec();
  const std::uint64_t rows = reader.read_u64();
  detector.diag_.meta_features.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    detector.diag_.meta_features.push_back(reader.read_f32_vec());
  }
  detector.diag_.meta_labels = reader.read_i32_vec();
  detector.fitted_ = true;
  return detector;
}

}  // namespace bprom::core
