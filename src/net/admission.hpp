// Connection-level admission control for net::Server.
//
// The engine already enforces budgets *per request* (query budgets,
// deadlines); this layer enforces them *per connection* — the tenant unit
// of the socket front end — so an overloaded or abusive client degrades
// into typed rejections instead of collapsing the server:
//
//   - in-flight caps (per connection and server-wide) bound the audit work
//     a connection can have outstanding; past the cap a request is refused
//     with kBudgetExhausted *before* its body is even decoded, which is
//     what keeps rejection cheap exactly when the server is busiest;
//   - request / byte budgets meter a connection's lifetime usage, the
//     per-tenant analogue of a request's query budget;
//   - every rejection is tallied so the stats endpoint can report overload
//     behavior (the BENCH_net.json acceptance signal).
//
// Admission decisions run on the IO threads and completions release slots
// from the engine's serve workers, so everything here is atomic; counters
// are pure tallies read by the stats endpoint.
#pragma once

#include <atomic>
#include <cstdint>

#include "api/status.hpp"
#include "net/messages.hpp"

namespace bprom::net {

struct AdmissionConfig {
  /// Max audits a single connection may have outstanding (0 = unlimited).
  std::size_t max_in_flight_per_connection = 8;
  /// Max audits outstanding across all connections (0 = unlimited).
  std::size_t max_in_flight_total = 64;
  /// Lifetime audit-request budget per connection (0 = unlimited).
  std::uint64_t max_requests_per_connection = 0;
  /// Lifetime received-byte budget per connection (0 = unlimited).
  std::uint64_t max_bytes_per_connection = 0;
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionConfig config) : config_(config) {}

  AdmissionControl(const AdmissionControl&) = delete;
  AdmissionControl& operator=(const AdmissionControl&) = delete;

  /// Admit or reject one audit request given the connection's tallies
  /// (`in_flight` outstanding audits, `requests_seen` audits admitted so
  /// far including this one, `bytes_seen` wire bytes received so far).
  /// OK acquires a server-wide in-flight slot the completion must release.
  api::Status admit(std::size_t in_flight, std::uint64_t requests_seen,
                    std::uint64_t bytes_seen);

  /// Release the server-wide slot acquired by a successful admit().
  void release();

  /// Audits currently outstanding server-wide.
  [[nodiscard]] std::size_t total_in_flight() const {
    // relaxed: a monitoring read; admission correctness does not hang off
    // this value (admit() re-checks under CAS).
    return total_in_flight_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t admitted() const {
    // relaxed: statistics tally, read for the stats endpoint snapshot.
    return admitted_.load(std::memory_order_relaxed);
  }

  /// Fold this layer's tallies into a stats response.
  void fill(ServerCounters* counters) const;

 private:
  AdmissionConfig config_;
  std::atomic<std::size_t> total_in_flight_{0};
  // Rejection tallies, one per typed cause (stats endpoint reads them).
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_in_flight_{0};
  std::atomic<std::uint64_t> rejected_total_in_flight_{0};
  std::atomic<std::uint64_t> rejected_request_budget_{0};
  std::atomic<std::uint64_t> rejected_byte_budget_{0};
};

}  // namespace bprom::net
