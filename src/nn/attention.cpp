#include "nn/attention.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"

namespace bprom::nn {

using tensor::Trans;

SpatialSelfAttention::SpatialSelfAttention(std::size_t channels,
                                           util::Rng& rng)
    : channels_(channels),
      wq_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wk_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wv_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wo_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))) {}

Tensor SpatialSelfAttention::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  const std::size_t c = channels_;
  const std::size_t t = x.dim(2) * x.dim(3);

  // Re-layout [N, C, H, W] -> tokens [N, T, C].  Caches resize in place,
  // so the steady state reuses their allocations.
  x_tokens_.resize({n, t, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* px = x.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        x_tokens_[(b * t + i) * c + ch] = px[i];
      }
    }
  }

  q_.resize({n, t, c});
  k_.resize({n, t, c});
  v_.resize({n, t, c});
  attn_.resize({n, t, t});
  ctx_.resize({n, t, c});
  out_tokens_.resize({n, t, c});
  const float inv_scale = 1.0F / std::sqrt(static_cast<float>(c));

  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x_tokens_.data() + b * t * c;
    float* qb = q_.data() + b * t * c;
    float* kb = k_.data() + b * t * c;
    float* vb = v_.data() + b * t * c;
    // Projections: [T, C] x [C, C].
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, c, xb, c,
                 wq_.value.data(), c, qb, c, /*accumulate=*/false);
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, c, xb, c,
                 wk_.value.data(), c, kb, c, /*accumulate=*/false);
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, c, xb, c,
                 wv_.value.data(), c, vb, c, /*accumulate=*/false);

    // Scores Q . K^T, then scaled row softmax in place.
    float* ab = attn_.data() + b * t * t;
    tensor::gemm(Trans::kNo, Trans::kYes, t, t, c, qb, c, kb, c, ab, t,
                 /*accumulate=*/false);
    for (std::size_t i = 0; i < t; ++i) {
      float maxv = -1e30F;
      for (std::size_t j = 0; j < t; ++j) {
        const float s = ab[i * t + j] * inv_scale;
        ab[i * t + j] = s;
        if (s > maxv) maxv = s;
      }
      float denom = 0.0F;
      // ordered: ascending j within the row — softmax rows are sharded
      // whole, so the sum order never depends on thread count.
      for (std::size_t j = 0; j < t; ++j) {
        ab[i * t + j] = std::exp(ab[i * t + j] - maxv);
        denom += ab[i * t + j];  // ordered: see above
      }
      for (std::size_t j = 0; j < t; ++j) ab[i * t + j] /= denom;
    }

    // ctx = A . V, out = ctx . Wo + residual.
    float* cb = ctx_.data() + b * t * c;
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, t, ab, t, vb, c, cb, c,
                 /*accumulate=*/false);
    float* ob = out_tokens_.data() + b * t * c;
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, c, cb, c,
                 wo_.value.data(), c, ob, c, /*accumulate=*/false);
    for (std::size_t i = 0; i < t * c; ++i) ob[i] += xb[i];
  }

  // Back to [N, C, H, W].
  Tensor y(in_shape_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* py = y.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        py[i] = out_tokens_[(b * t + i) * c + ch];
      }
    }
  }
  return y;
}

Tensor SpatialSelfAttention::backward(const Tensor& grad_out) {
  const std::size_t n = in_shape_[0];
  const std::size_t c = channels_;
  const std::size_t t = in_shape_[2] * in_shape_[3];
  const float inv_scale = 1.0F / std::sqrt(static_cast<float>(c));

  // Token-layout gradient of the block output.
  dout_.resize({n, t, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* pg = grad_out.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        dout_[(b * t + i) * c + ch] = pg[i];
      }
    }
  }

  dx_tokens_.resize({n, t, c});
  dctx_.resize(t * c);
  dattn_.resize(t * t);
  dscore_.resize(t * t);
  dq_.resize(t * c);
  dk_.resize(t * c);
  dv_.resize(t * c);

  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x_tokens_.data() + b * t * c;
    const float* qb = q_.data() + b * t * c;
    const float* kb = k_.data() + b * t * c;
    const float* vb = v_.data() + b * t * c;
    const float* ab = attn_.data() + b * t * t;
    const float* cb = ctx_.data() + b * t * c;
    const float* gb = dout_.data() + b * t * c;
    float* dxb = dx_tokens_.data() + b * t * c;

    // Residual: dX = dOut (projections accumulate on top below).
    std::copy_n(gb, t * c, dxb);

    // dWo += ctx^T . dOut;  dctx = dOut . Wo^T.
    tensor::gemm(Trans::kYes, Trans::kNo, c, c, t, cb, c, gb, c,
                 wo_.grad.data(), c, /*accumulate=*/true);
    tensor::gemm(Trans::kNo, Trans::kYes, t, c, c, gb, c,
                 wo_.value.data(), c, dctx_.data(), c, /*accumulate=*/false);

    // dattn = dctx . V^T;  dV = A^T . dctx.
    tensor::gemm(Trans::kNo, Trans::kYes, t, t, c, dctx_.data(), c, vb, c,
                 dattn_.data(), t, /*accumulate=*/false);
    tensor::gemm(Trans::kYes, Trans::kNo, t, c, t, ab, t, dctx_.data(), c,
                 dv_.data(), c, /*accumulate=*/false);

    // Softmax backward per row.
    for (std::size_t i = 0; i < t; ++i) {
      float row_dot = 0.0F;
      // ordered: ascending j within the row, mirroring the forward pass.
      for (std::size_t j = 0; j < t; ++j) {
        row_dot += dattn_[i * t + j] * ab[i * t + j];
      }
      for (std::size_t j = 0; j < t; ++j) {
        dscore_[i * t + j] =
            ab[i * t + j] * (dattn_[i * t + j] - row_dot) * inv_scale;
      }
    }

    // dQ = dscore . K;  dK = dscore^T . Q.
    tensor::gemm(Trans::kNo, Trans::kNo, t, c, t, dscore_.data(), t, kb, c,
                 dq_.data(), c, /*accumulate=*/false);
    tensor::gemm(Trans::kYes, Trans::kNo, t, c, t, dscore_.data(), t, qb, c,
                 dk_.data(), c, /*accumulate=*/false);

    // Projections: dW* += X^T . d*;  dX += d* . W*^T.
    const auto backprop_proj = [&](const std::vector<float>& dproj,
                                   Parameter& w) {
      tensor::gemm(Trans::kYes, Trans::kNo, c, c, t, xb, c, dproj.data(), c,
                   w.grad.data(), c, /*accumulate=*/true);
      tensor::gemm(Trans::kNo, Trans::kYes, t, c, c, dproj.data(), c,
                   w.value.data(), c, dxb, c, /*accumulate=*/true);
    };
    backprop_proj(dq_, wq_);
    backprop_proj(dk_, wk_);
    backprop_proj(dv_, wv_);
  }

  // Tokens back to [N, C, H, W].
  Tensor dx(in_shape_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* pd = dx.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        pd[i] = dx_tokens_[(b * t + i) * c + ch];
      }
    }
  }
  return dx;
}

}  // namespace bprom::nn
