#include "nn/attention.hpp"

#include <cassert>
#include <cmath>

namespace bprom::nn {
namespace {

// y[t, :] = x[t, :] * W  for a [T, C] token block and [C, C] weight.
void tokens_matmul(const float* x, const float* w, float* y, std::size_t t,
                   std::size_t c) {
  for (std::size_t i = 0; i < t; ++i) {
    const float* xi = x + i * c;
    float* yi = y + i * c;
    for (std::size_t o = 0; o < c; ++o) yi[o] = 0.0F;
    for (std::size_t k = 0; k < c; ++k) {
      const float xv = xi[k];
      if (xv == 0.0F) continue;
      const float* wk = w + k * c;
      for (std::size_t o = 0; o < c; ++o) yi[o] += xv * wk[o];
    }
  }
}

}  // namespace

SpatialSelfAttention::SpatialSelfAttention(std::size_t channels,
                                           util::Rng& rng)
    : channels_(channels),
      wq_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wk_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wv_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))),
      wo_(Tensor::randn({channels, channels}, rng,
                        1.0F / std::sqrt(static_cast<float>(channels)))) {}

Tensor SpatialSelfAttention::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  const std::size_t c = channels_;
  const std::size_t t = x.dim(2) * x.dim(3);

  // Re-layout [N, C, H, W] -> tokens [N, T, C].
  x_tokens_ = Tensor({n, t, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* px = x.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        x_tokens_[(b * t + i) * c + ch] = px[i];
      }
    }
  }

  q_ = Tensor({n, t, c});
  k_ = Tensor({n, t, c});
  v_ = Tensor({n, t, c});
  attn_ = Tensor({n, t, t});
  ctx_ = Tensor({n, t, c});
  Tensor out_tokens({n, t, c});
  const float inv_scale = 1.0F / std::sqrt(static_cast<float>(c));

  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x_tokens_.data() + b * t * c;
    float* qb = q_.data() + b * t * c;
    float* kb = k_.data() + b * t * c;
    float* vb = v_.data() + b * t * c;
    tokens_matmul(xb, wq_.value.data(), qb, t, c);
    tokens_matmul(xb, wk_.value.data(), kb, t, c);
    tokens_matmul(xb, wv_.value.data(), vb, t, c);

    float* ab = attn_.data() + b * t * t;
    for (std::size_t i = 0; i < t; ++i) {
      float maxv = -1e30F;
      for (std::size_t j = 0; j < t; ++j) {
        float s = 0.0F;
        for (std::size_t d = 0; d < c; ++d) s += qb[i * c + d] * kb[j * c + d];
        s *= inv_scale;
        ab[i * t + j] = s;
        if (s > maxv) maxv = s;
      }
      float denom = 0.0F;
      for (std::size_t j = 0; j < t; ++j) {
        ab[i * t + j] = std::exp(ab[i * t + j] - maxv);
        denom += ab[i * t + j];
      }
      for (std::size_t j = 0; j < t; ++j) ab[i * t + j] /= denom;
    }

    float* cb = ctx_.data() + b * t * c;
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t d = 0; d < c; ++d) cb[i * c + d] = 0.0F;
      for (std::size_t j = 0; j < t; ++j) {
        const float a = ab[i * t + j];
        if (a == 0.0F) continue;
        for (std::size_t d = 0; d < c; ++d) {
          cb[i * c + d] += a * vb[j * c + d];
        }
      }
    }

    float* ob = out_tokens.data() + b * t * c;
    tokens_matmul(cb, wo_.value.data(), ob, t, c);
    // Residual.
    for (std::size_t i = 0; i < t * c; ++i) ob[i] += xb[i];
  }

  // Back to [N, C, H, W].
  Tensor y(in_shape_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* py = y.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        py[i] = out_tokens[(b * t + i) * c + ch];
      }
    }
  }
  return y;
}

Tensor SpatialSelfAttention::backward(const Tensor& grad_out) {
  const std::size_t n = in_shape_[0];
  const std::size_t c = channels_;
  const std::size_t t = in_shape_[2] * in_shape_[3];
  const float inv_scale = 1.0F / std::sqrt(static_cast<float>(c));

  // Token-layout gradient of the block output.
  Tensor dout({n, t, c});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* pg = grad_out.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        dout[(b * t + i) * c + ch] = pg[i];
      }
    }
  }

  Tensor dx_tokens({n, t, c});
  std::vector<float> dctx(t * c);
  std::vector<float> dattn(t * t);
  std::vector<float> dscore(t * t);
  std::vector<float> dq(t * c);
  std::vector<float> dk(t * c);
  std::vector<float> dv(t * c);

  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x_tokens_.data() + b * t * c;
    const float* qb = q_.data() + b * t * c;
    const float* kb = k_.data() + b * t * c;
    const float* vb = v_.data() + b * t * c;
    const float* ab = attn_.data() + b * t * t;
    const float* cb = ctx_.data() + b * t * c;
    const float* gb = dout.data() + b * t * c;
    float* dxb = dx_tokens.data() + b * t * c;

    // Residual: dX += dOut.
    for (std::size_t i = 0; i < t * c; ++i) dxb[i] = gb[i];

    // dWo += ctx^T dOut;  dctx = dOut Wo^T.
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t k = 0; k < c; ++k) {
        const float cv = cb[i * c + k];
        float* dwo = wo_.grad.data() + k * c;
        const float* gi = gb + i * c;
        for (std::size_t o = 0; o < c; ++o) dwo[o] += cv * gi[o];
      }
    }
    for (std::size_t i = 0; i < t; ++i) {
      const float* gi = gb + i * c;
      float* di = dctx.data() + i * c;
      for (std::size_t k = 0; k < c; ++k) {
        const float* wok = wo_.value.data() + k * c;
        float acc = 0.0F;
        for (std::size_t o = 0; o < c; ++o) acc += gi[o] * wok[o];
        di[k] = acc;
      }
    }

    // dattn = dctx V^T;  dV = A^T dctx.
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < t; ++j) {
        float acc = 0.0F;
        for (std::size_t d = 0; d < c; ++d) {
          acc += dctx[i * c + d] * vb[j * c + d];
        }
        dattn[i * t + j] = acc;
      }
    }
    std::fill(dv.begin(), dv.end(), 0.0F);
    for (std::size_t j = 0; j < t; ++j) {
      for (std::size_t i = 0; i < t; ++i) {
        const float a = ab[i * t + j];
        if (a == 0.0F) continue;
        for (std::size_t d = 0; d < c; ++d) {
          dv[j * c + d] += a * dctx[i * c + d];
        }
      }
    }

    // Softmax backward per row.
    for (std::size_t i = 0; i < t; ++i) {
      float row_dot = 0.0F;
      for (std::size_t j = 0; j < t; ++j) {
        row_dot += dattn[i * t + j] * ab[i * t + j];
      }
      for (std::size_t j = 0; j < t; ++j) {
        dscore[i * t + j] =
            ab[i * t + j] * (dattn[i * t + j] - row_dot) * inv_scale;
      }
    }

    // dQ = dscore K;  dK = dscore^T Q.
    std::fill(dq.begin(), dq.end(), 0.0F);
    std::fill(dk.begin(), dk.end(), 0.0F);
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < t; ++j) {
        const float s = dscore[i * t + j];
        if (s == 0.0F) continue;
        for (std::size_t d = 0; d < c; ++d) {
          dq[i * c + d] += s * kb[j * c + d];
          dk[j * c + d] += s * qb[i * c + d];
        }
      }
    }

    // Projections: dW* += X^T d*;  dX += d* W*^T.
    auto backprop_proj = [&](const std::vector<float>& dproj, Parameter& w) {
      for (std::size_t i = 0; i < t; ++i) {
        const float* xi = xb + i * c;
        const float* di = dproj.data() + i * c;
        for (std::size_t k = 0; k < c; ++k) {
          const float xv = xi[k];
          float* dwk = w.grad.data() + k * c;
          for (std::size_t o = 0; o < c; ++o) dwk[o] += xv * di[o];
        }
        float* dxi = dxb + i * c;
        for (std::size_t k = 0; k < c; ++k) {
          const float* wk = w.value.data() + k * c;
          float acc = 0.0F;
          for (std::size_t o = 0; o < c; ++o) acc += di[o] * wk[o];
          dxi[k] += acc;
        }
      }
    };
    backprop_proj(dq, wq_);
    backprop_proj(dk, wk_);
    backprop_proj(dv, wv_);
  }

  // Tokens back to [N, C, H, W].
  Tensor dx(in_shape_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* pd = dx.data() + (b * c + ch) * t;
      for (std::size_t i = 0; i < t; ++i) {
        pd[i] = dx_tokens[(b * t + i) * c + ch];
      }
    }
  }
  return dx;
}

}  // namespace bprom::nn
