#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "util/thread_annotations.hpp"

namespace bprom::util {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("BPROM_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

/// Atomic, not plain: set_log_level may race log_message's filter read
/// from another thread (a plain LogLevel made that a data race).
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

/// The sink pointer and the stream it designates are both touched only
/// under this mutex — interleaved partial lines from concurrent loggers
/// were the original reason the lock exists; the annotation now proves
/// every access takes it.
struct Sink {
  Mutex mu;
  std::ostream* stream BPROM_GUARDED_BY(mu) = nullptr;  // null = std::cerr
};

Sink& sink() {
  static Sink s;
  return s;
}

const char* label(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  // relaxed: the filter is an independent flag — no logging data is
  // published through it, so ordering against message writes is moot.
  return level_ref().load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  // relaxed: see log_level() — a racing logger sees the old or new level,
  // both of which were valid an instant apart.
  level_ref().store(level, std::memory_order_relaxed);
}

void set_log_sink(std::ostream* stream) {
  Sink& s = sink();
  MutexLock lock(s.mu);
  s.stream = stream;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  Sink& s = sink();
  MutexLock lock(s.mu);
  std::ostream& out = s.stream != nullptr ? *s.stream : std::cerr;
  out << "[bprom " << label(level) << "] " << msg << '\n';
}

}  // namespace bprom::util
