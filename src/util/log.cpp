#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace bprom::util {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("BPROM_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

const char* label(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[bprom " << label(level) << "] " << msg << '\n';
}

}  // namespace bprom::util
