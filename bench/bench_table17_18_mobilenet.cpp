// Tables 17-18: AUROC + F1 on MobileNetV2Mini.
#include "common.hpp"
int main() {
  using namespace bench;
  BenchReport report("table17_18_mobilenet");
  auto env = Env::make();
  const auto arch = nn::ArchKind::kMobileNetV2Mini;
  const std::vector<defenses::DefenseKind> baselines = {
      defenses::DefenseKind::kStrip, defenses::DefenseKind::kFrequency,
      defenses::DefenseKind::kScan};
  for (auto* src : {&env.cifar10, &env.gtsrb}) {
    std::vector<std::string> header = {"method", "metric"};
    for (auto a : main_attacks()) header.push_back(attacks::attack_name(a));
    util::TablePrinter table(header);
    const auto cells =
        baseline_grid(baselines, *src, main_attacks(), arch, 800, env.scale);
    report.add_cells(*src, cells);
    for (std::size_t d = 0; d < baselines.size(); ++d) {
      std::vector<std::string> au = {defenses::defense_name(baselines[d]), "AUROC"};
      std::vector<std::string> f1 = {defenses::defense_name(baselines[d]), "F1"};
      for (std::size_t a = 0; a < main_attacks().size(); ++a) {
        const auto& eval = cells[d * main_attacks().size() + a].eval;
        au.push_back(util::cell(eval.auroc));
        f1.push_back(util::cell(eval.f1));
      }
      table.add_row(au);
      table.add_row(f1);
    }
    auto detector = core::fit_detector(*src, env.stl10, 0.10, arch, 7, env.scale);
    std::vector<std::string> au = {"BPROM (10%)", "AUROC"};
    std::vector<std::string> f1 = {"BPROM (10%)", "F1"};
    for (const auto& cell : bprom_row(detector, *src, arch, 850, env.scale)) {
      au.push_back(util::cell(cell.auroc));
      f1.push_back(util::cell(cell.f1));
    }
    table.add_row(au);
    table.add_row(f1);
    std::printf("== Tables 17-18 (%s, MobileNetV2Mini) ==\n", src->profile.name.c_str());
    table.print();
  }
  report.write();
  return 0;
}
