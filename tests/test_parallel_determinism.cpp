// Determinism regression for the parallel pipeline: the same root seed
// must yield bit-identical detectors, diagnostics, population scores,
// layer gradients, trained weights, learned prompts, and query counts no
// matter how many pool threads execute the work.  ScopedPoolOverride lets
// one process drive the implicit-pool code paths (layer forward/backward
// sharding, CMA-ES candidate evaluation) under several thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "nn/layers.hpp"
#include "nn/trainer.hpp"
#include "util/thread_pool.hpp"
#include "vp/train_blackbox.hpp"

namespace bprom {
namespace {

// The thread counts the CI matrix cares about: serial, small, oversubscribed.
const std::size_t kThreadCounts[] = {1, 2, 8};

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 2;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

TEST(ParallelDeterminism, FitDetectorDiagnosticsMatchAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 11, 500, 200);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 12, 400, 200);
  const auto scale = micro_scale();

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  auto serial = core::fit_detector(src, tgt, 0.10, nn::ArchKind::kResNet18Mini,
                                   7, scale, &one);
  auto parallel = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale,
                                     &four);

  const auto& a = serial.diagnostics();
  const auto& b = parallel.diagnostics();
  EXPECT_EQ(a.meta_labels, b.meta_labels);
  EXPECT_EQ(a.clean_shadow_prompted_accuracy, b.clean_shadow_prompted_accuracy);
  EXPECT_EQ(a.backdoor_shadow_prompted_accuracy,
            b.backdoor_shadow_prompted_accuracy);
  ASSERT_EQ(a.meta_features.size(), b.meta_features.size());
  for (std::size_t i = 0; i < a.meta_features.size(); ++i) {
    EXPECT_EQ(a.meta_features[i], b.meta_features[i]) << "shadow " << i;
  }
}

TEST(ParallelDeterminism, PopulationAndScoresMatchAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 13, 500, 200);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 14, 400, 200);
  const auto scale = micro_scale();
  const auto atk = attacks::AttackConfig::defaults(attacks::AttackKind::kBadNets);

  util::ThreadPool one(1);
  util::ThreadPool four(4);
  auto detector = core::fit_detector(src, tgt, 0.10,
                                     nn::ArchKind::kResNet18Mini, 7, scale,
                                     &one);

  auto pop_serial = core::build_population(src, atk,
                                           nn::ArchKind::kResNet18Mini, 2, 40,
                                           scale, &one);
  auto pop_parallel = core::build_population(src, atk,
                                             nn::ArchKind::kResNet18Mini, 2,
                                             40, scale, &four);
  ASSERT_EQ(pop_serial.size(), pop_parallel.size());
  for (std::size_t i = 0; i < pop_serial.size(); ++i) {
    EXPECT_EQ(pop_serial[i].backdoored, pop_parallel[i].backdoored);
    EXPECT_DOUBLE_EQ(pop_serial[i].clean_accuracy,
                     pop_parallel[i].clean_accuracy);
    EXPECT_DOUBLE_EQ(pop_serial[i].asr, pop_parallel[i].asr);
  }

  auto scores_serial = core::score_population(detector, pop_serial, &one);
  auto scores_parallel = core::score_population(detector, pop_parallel, &four);
  EXPECT_EQ(scores_serial.labels, scores_parallel.labels);
  ASSERT_EQ(scores_serial.scores.size(), scores_parallel.scores.size());
  for (std::size_t i = 0; i < scores_serial.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores_serial.scores[i], scores_parallel.scores[i]);
  }
}

// Gradients of every sharded backward pass must be bit-identical for any
// thread count.  Sizes are chosen to clear the layers.cpp op-count gate so
// the parallel paths (per-shard dw/db partials for Linear/Conv2d,
// channel-owned accumulators for depthwise/batchnorm) actually execute.
TEST(ParallelDeterminism, BackwardGradientsMatchAcrossThreadCounts) {
  struct GradRun {
    std::vector<std::vector<float>> grads;  // per parameter, flattened
    std::vector<float> dx;
  };

  const auto run_layer = [](auto make_layer, const std::vector<std::size_t>&
                                                 in_shape) {
    std::vector<GradRun> runs;
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      util::ScopedPoolOverride overridden(pool);
      util::Rng wrng(11);
      auto layer = make_layer(wrng);
      util::Rng xrng(12);
      nn::Tensor x = nn::Tensor::randn(in_shape, xrng);
      nn::Tensor y = layer->forward(x, /*train=*/true);
      util::Rng grng(13);
      nn::Tensor g = nn::Tensor::randn(y.shape(), grng);
      nn::Tensor dx = layer->backward(g);
      GradRun run;
      for (nn::Parameter* p : layer->parameters()) {
        run.grads.push_back(p->grad.vec());
      }
      run.dx = dx.vec();
      runs.push_back(std::move(run));
    }
    for (std::size_t t = 1; t < runs.size(); ++t) {
      ASSERT_EQ(runs[0].grads.size(), runs[t].grads.size());
      for (std::size_t p = 0; p < runs[0].grads.size(); ++p) {
        EXPECT_EQ(runs[0].grads[p], runs[t].grads[p])
            << "param " << p << " at " << kThreadCounts[t] << " threads";
      }
      EXPECT_EQ(runs[0].dx, runs[t].dx)
          << "dx at " << kThreadCounts[t] << " threads";
    }
  };

  run_layer(
      [](util::Rng& rng) { return std::make_unique<nn::Linear>(256, 256, rng); },
      {64, 256});
  run_layer(
      [](util::Rng& rng) {
        return std::make_unique<nn::Conv2d>(8, 16, 3, 1, 1, rng);
      },
      {32, 8, 16, 16});
  run_layer(
      [](util::Rng& rng) {
        return std::make_unique<nn::DepthwiseConv2d>(16, 3, 1, 1, rng);
      },
      {64, 16, 16, 16});
  run_layer(
      [](util::Rng&) { return std::make_unique<nn::BatchNorm2d>(32); },
      {64, 32, 32, 32});
}

// End-to-end: a full training run (forward + backward + SGD) must produce
// bit-identical weights for any thread count behind the implicit pool.
TEST(ParallelDeterminism, TrainedWeightsMatchAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 21, 300, 100);
  std::vector<std::vector<float>> blobs;
  for (const std::size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    util::ScopedPoolOverride overridden(pool);
    util::Rng rng(31);
    auto model = nn::make_model(nn::ArchKind::kResNet18Mini,
                                src.profile.shape, src.profile.classes, rng);
    nn::TrainConfig tc;
    tc.epochs = 2;
    tc.seed = 77;
    nn::train_classifier(*model, src.train, tc);
    blobs.push_back(model->save_parameters());
  }
  for (std::size_t t = 1; t < blobs.size(); ++t) {
    EXPECT_EQ(blobs[0], blobs[t])
        << "weights diverge at " << kThreadCounts[t] << " threads";
  }
}

// Black-box prompt learning fans CMA-ES generations (and SPSA pairs) out
// over model replicas: theta, loss, and the exact query count must not
// depend on the thread count.
TEST(ParallelDeterminism, BlackBoxPromptMatchesAcrossThreadCounts) {
  auto src = data::make_dataset(data::DatasetKind::kCifar10, 22, 300, 100);
  auto tgt = data::make_dataset(data::DatasetKind::kStl10, 23, 200, 100);
  util::Rng mrng(41);
  auto model = nn::make_model(nn::ArchKind::kResNet18Mini, src.profile.shape,
                              src.profile.classes, mrng);

  for (const auto optimizer :
       {vp::BlackBoxOptimizer::kCmaEs, vp::BlackBoxOptimizer::kSpsa}) {
    std::vector<vp::BlackBoxPromptResult> results;
    for (const std::size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      util::ScopedPoolOverride overridden(pool);
      nn::BlackBoxAdapter box(*model);
      vp::BlackBoxPromptConfig cfg;
      cfg.optimizer = optimizer;
      cfg.eval_samples = 16;
      cfg.max_evaluations = 60;
      cfg.seed = 5;
      results.push_back(vp::learn_prompt_blackbox(box, tgt.train, cfg));
    }
    for (std::size_t t = 1; t < results.size(); ++t) {
      EXPECT_EQ(results[0].prompt.theta(), results[t].prompt.theta())
          << "theta diverges at " << kThreadCounts[t] << " threads";
      EXPECT_EQ(results[0].final_loss, results[t].final_loss);
      EXPECT_EQ(results[0].queries, results[t].queries)
          << "query accounting diverges at " << kThreadCounts[t]
          << " threads";
    }
    EXPECT_GT(results[0].queries, 0u);
  }
}

}  // namespace
}  // namespace bprom
