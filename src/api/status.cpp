#include "api/status.hpp"

namespace bprom::api {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kCorruptArtifact:
      return "corrupt_artifact";
    case StatusCode::kVersionMismatch:
      return "version_mismatch";
    case StatusCode::kBudgetExhausted:
      return "budget_exhausted";
    case StatusCode::kInvalidRequest:
      return "invalid_request";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace bprom::api
