#include "nn/sequential.hpp"

namespace bprom::nn {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (auto* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::vector<float>*> Sequential::state() {
  std::vector<std::vector<float>*> buffers;
  for (auto& layer : layers_) {
    for (auto* s : layer->state()) buffers.push_back(s);
  }
  return buffers;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->push(layer->clone());
  return copy;
}

}  // namespace bprom::nn
