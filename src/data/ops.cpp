#include "data/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bprom::data {

LabeledData subset(const LabeledData& data,
                   const std::vector<std::size_t>& idx) {
  assert(data.size() > 0);
  const std::size_t sample = data.images.size() / data.size();
  std::vector<std::size_t> shape = data.images.shape();
  shape[0] = idx.size();
  LabeledData out;
  out.images = nn::Tensor(shape);
  out.labels.resize(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] < data.size());
    std::copy(data.images.data() + idx[i] * sample,
              data.images.data() + (idx[i] + 1) * sample,
              out.images.data() + i * sample);
    out.labels[i] = data.labels[idx[i]];
  }
  return out;
}

LabeledData sample_fraction(const LabeledData& data, double fraction,
                            util::Rng& rng) {
  const auto k = static_cast<std::size_t>(
      std::max(1.0, std::round(fraction * static_cast<double>(data.size()))));
  return subset(data, rng.sample_without_replacement(data.size(),
                                                     std::min(k, data.size())));
}

LabeledData concat(const LabeledData& a, const LabeledData& b) {
  if (a.size() == 0) return b;
  if (b.size() == 0) return a;
  [[maybe_unused]] const std::size_t sample = a.images.size() / a.size();
  assert(sample == b.images.size() / b.size());
  std::vector<std::size_t> shape = a.images.shape();
  shape[0] = a.size() + b.size();
  LabeledData out;
  out.images = nn::Tensor(shape);
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  std::copy(a.images.vec().begin(), a.images.vec().end(),
            out.images.data());
  std::copy(b.images.vec().begin(), b.images.vec().end(),
            out.images.data() + a.images.size());
  return out;
}

nn::Tensor downscale2x(const nn::Tensor& images) {
  assert(images.rank() == 4);
  const std::size_t n = images.dim(0);
  const std::size_t c = images.dim(1);
  const std::size_t h = images.dim(2);
  const std::size_t w = images.dim(3);
  nn::Tensor out({n, c, h / 2, w / 2});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h / 2; ++y) {
        for (std::size_t x = 0; x < w / 2; ++x) {
          const float acc = images.at4(b, ch, 2 * y, 2 * x) +
                            images.at4(b, ch, 2 * y + 1, 2 * x) +
                            images.at4(b, ch, 2 * y, 2 * x + 1) +
                            images.at4(b, ch, 2 * y + 1, 2 * x + 1);
          out.at4(b, ch, y, x) = acc * 0.25F;
        }
      }
    }
  }
  return out;
}

std::vector<std::size_t> class_histogram(const LabeledData& data,
                                         std::size_t classes) {
  std::vector<std::size_t> hist(classes, 0);
  for (int label : data.labels) {
    assert(label >= 0 && static_cast<std::size_t>(label) < classes);
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

}  // namespace bprom::data
