// L2-regularized logistic regression — ablation alternative to the forest
// meta-model, and the linear probe used by a couple of baseline defenses.
#pragma once

#include <cstdint>
#include <vector>

namespace bprom::meta {

struct LogisticConfig {
  std::size_t epochs = 200;
  double lr = 0.1;
  double l2 = 1e-3;
  std::uint64_t seed = 23;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {});

  void fit(const std::vector<std::vector<float>>& x,
           const std::vector<int>& y);

  [[nodiscard]] double predict_proba(const std::vector<float>& x) const;
  [[nodiscard]] int predict(const std::vector<float>& x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

 private:
  LogisticConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace bprom::meta
