// bprom_lint fixture — NOT part of the build.  A line whose trailing
// comment is an expect marker — the word "expect" with the rule id in
// parentheses — must produce exactly that finding; every other line must
// stay clean.  tests/test_lint.cpp derives expectations from the markers,
// so line numbers never need maintaining by hand.
#include <future>
#include <thread>

void bad() {
  std::thread t([] {});           // expect(raw-thread)
  t.join();
  std::jthread auto_joiner([] {});  // expect(raw-thread)
  auto f = std::async([] { return 1; });  // expect(raw-thread)
  f.get();
}

void tolerated() {
  // bprom-lint: allow(raw-thread)
  std::thread escaped_above([] {});
  escaped_above.join();
  std::thread escaped_same([] {});  // bprom-lint: allow(raw-thread)
  escaped_same.join();
}

void clean() {
  // Mentioning std::thread in a comment is fine, as is the string below.
  const char* doc = "never spawn a raw std::thread";
  (void)doc;
  std::this_thread::yield();  // qualified differently — must not match
}
