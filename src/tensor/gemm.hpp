// Cache-blocked, register-tiled GEMM shared by every training/inspection
// hot path (Linear/Conv2d forward+backward, attention matmuls, and the
// double-precision analysis matrices in linalg).
//
// Kernel design (see README "Performance & parallelism"):
//   - BLIS-style blocking: C is partitioned into a *fixed* grid of
//     kGemmMc x kGemmNc macro-tiles; each macro-tile walks the K dimension
//     in kGemmKc panels, packing the A panel as [kc][MR] strips and the
//     B panel as [kc][NR] strips into the per-thread util::Scratch arena so
//     the micro-kernel streams contiguous, zero-padded memory.
//   - The micro-kernel keeps an MR x NR accumulator array (6 x 16 floats /
//     6 x 8 doubles) in registers; the NR lanes are independent, so the
//     compiler is free to vectorize them into SIMD FMA lanes without any
//     reassociation license.
//   - Parallelism is over the macro-tile grid via util::parallel_for.  The
//     grid depends only on the problem shape and compile-time constants —
//     never on the thread count (skinny-N problems get a finer row grain so
//     the grid still feeds a pool, but the grain is a pure function of the
//     shape) — and every tile is computed start-to-finish by one task, so
//     results are bit-identical for any BPROM_THREADS.  The tile partition
//     never changes any element's summation order, only which task owns it.
//
// Determinism contract: for a fixed problem (shape + transposes +
// accumulate), every element of C is produced by the same floating-point
// addition sequence regardless of pool size.  The sequence is: per KC block
// in ascending order, a register accumulator sums the block's products in
// ascending k, then folds into C.  gemm_reference replicates exactly that
// grouping, so kernel-vs-reference comparisons are bitwise for k <= kGemmKc.
#pragma once

#include <cstddef>

namespace bprom::tensor {

/// Whether an operand is used as stored or transposed.  `lda`/`ldb` are
/// always the *storage* row strides (elements per stored row).
enum class Trans { kNo, kYes };

// Blocking constants, exposed so tests can probe edge-tile shapes.  The
// register tile is sized to the compile-time SIMD width: the 6 x NR
// accumulator block must fit the architectural register file (6 rows x 2
// vectors), so NR doubles when the build enables AVX2/AVX-512.  These are
// compile-time constants — runtime thread count never changes the tile
// grid, so the determinism contract is unaffected.
inline constexpr std::size_t kGemmMr = 6;  // micro-tile rows
#if defined(__AVX512F__)
inline constexpr std::size_t kGemmNrF32 = 32;  // micro-tile cols (float)
inline constexpr std::size_t kGemmNrF64 = 16;  // micro-tile cols (double)
#elif defined(__AVX__)
inline constexpr std::size_t kGemmNrF32 = 16;
inline constexpr std::size_t kGemmNrF64 = 8;
#else
inline constexpr std::size_t kGemmNrF32 = 8;  // SSE2 baseline: 2 x 4 lanes
inline constexpr std::size_t kGemmNrF64 = 4;
#endif
inline constexpr std::size_t kGemmMc = 96;   // macro-tile rows
inline constexpr std::size_t kGemmKc = 256;  // K panel depth
inline constexpr std::size_t kGemmNc = 512;  // macro-tile cols

/// C (m x n, row stride ldc) = [accumulate ? C : 0] + op_a(A) . op_b(B)
/// where op_a(A) is m x k and op_b(B) is k x n.  `allow_parallel=false`
/// forces the serial tile walk — callers that already shard an outer loop
/// over the pool use it to keep the task count bounded; the choice must
/// depend only on problem shape so results stay thread-count invariant
/// (the serial walk visits tiles in the same order with the same
/// arithmetic, so it is bitwise identical to the parallel one anyway).
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c, std::size_t ldc, bool accumulate,
          bool allow_parallel = true);
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const double* a, std::size_t lda, const double* b, std::size_t ldb,
          double* c, std::size_t ldc, bool accumulate,
          bool allow_parallel = true);

/// Naive single-thread reference with the kernel's summation grouping:
/// per KC block, a local accumulator sums products in ascending k, then
/// folds into C.  Bitwise-identical to gemm() for any shape (it replays the
/// same KC partition); kept scalar + unblocked so benches can measure the
/// blocked kernel against the pre-PR-5 style triple loop.
void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const float* a, std::size_t lda,
                    const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate);
void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const double* a, std::size_t lda,
                    const double* b, std::size_t ldb, double* c,
                    std::size_t ldc, bool accumulate);

}  // namespace bprom::tensor
