// Serving-path load bench: drives N concurrent async batches through
// api::AuditEngine's MPMC ring and reports tail latency.  Emits
// BENCH_serve.json with end-to-end throughput, per-request p50/p95/p99, and
// the engine profiler's per-stage counters (resolve / inspect / request /
// queue_wait / queue_depth / batch) — the SLO telemetry of the audit
// service, tracked per PR like the table benches track accuracy.
//
// `--socket` switches to the network front end: N concurrent client
// connections pipeline audit bursts at a net::Server whose admission layer
// is deliberately undersized, so the bench measures BOTH halves of the
// overload contract — admitted requests complete with real verdicts, excess
// requests bounce as typed kBudgetExhausted rejections — and emits
// BENCH_net.json (throughput, p50/p95/p99, per-cause rejection counts).
// The bench exits nonzero if any rejection is untyped or no rejection
// happens at all (then it measured nothing).
//
// The detector is fitted at micro scale on synthetic data: this bench
// measures the serving internals (ring hand-off, queueing, per-request
// overhead), not inspection quality, so the fit only needs to be real
// enough to exercise the full inspect path.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/blackbox.hpp"
#include "util/env.hpp"

namespace {

using namespace bprom;

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void write_report(std::size_t batches, std::size_t batch_size,
                  double wall_seconds, double throughput,
                  const std::vector<double>& sorted_ms,
                  const api::EngineStats& stats) {
  const char* dir = std::getenv("BPROM_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
      "/BENCH_serve.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"serve\",\n"
      << "  \"threads\": " << util::default_pool().size() << ",\n"
      << "  \"batches\": " << batches << ",\n"
      << "  \"batch_size\": " << batch_size << ",\n"
      << "  \"requests\": " << batches * batch_size << ",\n"
      << "  \"wall_seconds\": " << wall_seconds << ",\n"
      << "  \"throughput_rps\": " << throughput << ",\n"
      << "  \"latency_ms\": {\"p50\": " << percentile(sorted_ms, 0.50)
      << ", \"p95\": " << percentile(sorted_ms, 0.95)
      << ", \"p99\": " << percentile(sorted_ms, 0.99) << "},\n"
      << "  \"stages\": [";
  for (std::size_t s = 0; s < util::kProfileStages; ++s) {
    const auto stage = static_cast<util::ProfileStage>(s);
    const util::ProfileStageStats& st = stats.profile[stage];
    out << (s == 0 ? "" : ",") << "\n    {\"stage\": \""
        << util::profile_stage_name(stage) << "\", \"count\": " << st.count
        << ", \"avg\": " << st.avg() << ", \"min\": " << st.min
        << ", \"max\": " << st.max << ", \"p50\": " << st.p50
        << ", \"p95\": " << st.p95 << ", \"p99\": " << st.p99 << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("bench report: %s\n", path.c_str());
}

/// --socket mode: concurrent connections against the epoll front end.
int run_socket_mode(api::AuditEngine& engine,
                    const core::TrainedSuspicious& suspicious,
                    util::Stopwatch& total) {
  const std::size_t clients = util::by_scale<std::size_t>(3, 6, 12);
  const std::size_t rounds = util::by_scale<std::size_t>(2, 3, 4);
  const std::size_t burst = 3;  // pipelined audits per round per client

  // Undersized on purpose: one in-flight audit per connection means every
  // pipelined burst offers `burst` requests and the admission layer must
  // reject `burst - 1` of them typed while the first one completes.
  net::ServerConfig server_config;
  server_config.io_threads = 2;
  server_config.admission.max_in_flight_per_connection = 1;
  net::Server server(engine, server_config);
  if (!server.start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // Serialization walks mutable layer state, so each client thread uploads
  // its own clone of the suspicious model.
  std::vector<std::unique_ptr<nn::Model>> models;
  models.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    models.push_back(suspicious.model->clone());
  }

  struct ClientTally {
    std::vector<double> latency_ms;  // server-reported seconds, ok only
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t failed = 0;  // anything that was not ok/kBudgetExhausted
  };
  std::vector<ClientTally> tallies(clients);

  util::Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        auto client = net::Client::connect({.port = server.port()});
        if (!client.ok()) {
          tally.failed += rounds * burst;
          return;
        }
        for (std::size_t r = 0; r < rounds; ++r) {
          std::vector<net::ClientAuditRequest> requests(burst);
          for (std::size_t i = 0; i < burst; ++i) {
            requests[i].model_id = "c" + std::to_string(c) + "_r" +
                                   std::to_string(r) + "_" + std::to_string(i);
            requests[i].detector = "aud";
            requests[i].model = models[c].get();
          }
          auto responses = client.value().audit_batch(requests);
          if (!responses.ok()) {
            tally.failed += burst;
            continue;
          }
          for (const api::AuditResponse& response : responses.value()) {
            if (response.status.ok()) {
              ++tally.completed;
              tally.latency_ms.push_back(response.seconds * 1e3);
            } else if (response.status.code() ==
                       api::StatusCode::kBudgetExhausted) {
              ++tally.rejected;  // the typed overload rejection under test
            } else {
              ++tally.failed;
            }
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_seconds = wall.seconds();
  bench::print_elapsed(total, "socket load");

  std::vector<double> latency_ms;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  for (const ClientTally& tally : tallies) {
    latency_ms.insert(latency_ms.end(), tally.latency_ms.begin(),
                      tally.latency_ms.end());
    completed += tally.completed;
    rejected += tally.rejected;
    failed += tally.failed;
  }
  std::sort(latency_ms.begin(), latency_ms.end());
  const double throughput = static_cast<double>(completed) / wall_seconds;

  // Pull the server's own view over the wire — the stats frame is part of
  // what this bench exercises.
  net::ServerCounters counters;
  if (auto probe = net::Client::connect({.port = server.port()});
      probe.ok()) {
    if (auto stats = probe.value().stats(); stats.ok()) {
      counters = stats.value().server;
    }
  }
  server.stop();

  const std::size_t offered = clients * rounds * burst;
  std::printf("%zu clients x %zu rounds x %zu pipelined in %.2fs\n", clients,
              rounds, burst, wall_seconds);
  std::printf(
      "offered %zu: completed %zu (%.1f req/s), rejected typed %zu, "
      "failed %zu\n",
      offered, completed, throughput, rejected, failed);
  std::printf("ok-request latency ms: p50 %.1f  p95 %.1f  p99 %.1f\n",
              percentile(latency_ms, 0.50), percentile(latency_ms, 0.95),
              percentile(latency_ms, 0.99));

  const char* dir = std::getenv("BPROM_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
      "/BENCH_net.json";
  std::ofstream out(path, std::ios::trunc);
  if (out) {
    out << "{\n  \"bench\": \"net\",\n"
        << "  \"threads\": " << util::default_pool().size() << ",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"rounds\": " << rounds << ",\n"
        << "  \"burst\": " << burst << ",\n"
        << "  \"offered\": " << offered << ",\n"
        << "  \"completed\": " << completed << ",\n"
        << "  \"failed\": " << failed << ",\n"
        << "  \"wall_seconds\": " << wall_seconds << ",\n"
        << "  \"throughput_rps\": " << throughput << ",\n"
        << "  \"latency_ms\": {\"p50\": " << percentile(latency_ms, 0.50)
        << ", \"p95\": " << percentile(latency_ms, 0.95)
        << ", \"p99\": " << percentile(latency_ms, 0.99) << "},\n"
        << "  \"rejected\": {\"client_observed\": " << rejected
        << ", \"in_flight\": " << counters.rejected_in_flight
        << ", \"total_in_flight\": " << counters.rejected_total_in_flight
        << ", \"request_budget\": " << counters.rejected_request_budget
        << ", \"byte_budget\": " << counters.rejected_byte_budget
        << ", \"protocol\": " << counters.rejected_protocol << "},\n"
        << "  \"connections_accepted\": " << counters.connections_accepted
        << ",\n"
        << "  \"bytes_received\": " << counters.bytes_received << ",\n"
        << "  \"bytes_sent\": " << counters.bytes_sent << "\n}\n";
    std::printf("bench report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }

  // The acceptance bar: overload degrades into typed rejection, nothing
  // fails untyped, and admitted work still completes.
  if (failed > 0) {
    std::fprintf(stderr, "%zu requests failed with untyped errors\n", failed);
    return 1;
  }
  if (completed == 0 || rejected == 0) {
    std::fprintf(stderr,
                 "expected both completions and typed rejections under "
                 "overload (completed %zu, rejected %zu)\n",
                 completed, rejected);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool socket_mode =
      argc > 1 && std::strcmp(argv[1], "--socket") == 0;
  util::Stopwatch total;
  const std::size_t batches = util::by_scale<std::size_t>(4, 12, 32);
  const std::size_t batch_size = util::by_scale<std::size_t>(2, 4, 8);

  // One fitted detector, one clean suspicious model; every request audits
  // its own clone so concurrent inspections never share mutable layers.
  data::Dataset src = data::make_dataset(data::DatasetKind::kCifar10, 61,
                                         400, 160);
  data::Dataset tgt = data::make_dataset(data::DatasetKind::kStl10, 62, 300,
                                         160);
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, nn::ArchKind::kResNet18Mini, 7, micro_scale());
  core::TrainedSuspicious suspicious = core::train_clean_model(
      src, nn::ArchKind::kResNet18Mini, 50, micro_scale());
  bench::print_elapsed(total, "fit detector + suspicious model");

  const std::string store =
      (std::filesystem::temp_directory_path() / "bprom_bench_serve").string();
  std::filesystem::remove_all(store);
  api::AuditEngine engine({.store_dir = store});
  if (!engine.publish("aud", std::move(detector)).ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }

  if (socket_mode) return run_socket_mode(engine, suspicious, total);

  std::vector<std::unique_ptr<nn::BlackBoxAdapter>> boxes;
  boxes.reserve(batches * batch_size);
  for (std::size_t i = 0; i < batches * batch_size; ++i) {
    boxes.push_back(
        std::make_unique<nn::BlackBoxAdapter>(suspicious.model->clone()));
  }

  // The measured section: submit every batch up front (the ring absorbs
  // them; overflow blocks, which is the backpressure under test), then
  // drain the futures.
  util::Stopwatch wall;
  std::vector<std::future<std::vector<api::AuditResponse>>> futures;
  futures.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<api::AuditRequest> batch(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch[i].model_id = "m" + std::to_string(b * batch_size + i);
      batch[i].detector = "aud";
      batch[i].model = boxes[b * batch_size + i].get();
    }
    futures.push_back(engine.audit_async(std::move(batch)));
  }

  std::vector<double> latency_ms;
  std::size_t failed = 0;
  for (auto& future : futures) {
    for (const api::AuditResponse& response : future.get()) {
      if (!response.status.ok()) ++failed;
      latency_ms.push_back(response.seconds * 1e3);
    }
  }
  const double wall_seconds = wall.seconds();
  bench::print_elapsed(total, "serve load");
  if (failed > 0) {
    std::fprintf(stderr, "%zu of %zu requests failed\n", failed,
                 latency_ms.size());
    return 1;
  }

  std::sort(latency_ms.begin(), latency_ms.end());
  const double throughput =
      static_cast<double>(latency_ms.size()) / wall_seconds;
  const api::EngineStats stats = engine.stats();

  std::printf("%zu batches x %zu requests in %.2fs  (%.1f req/s)\n", batches,
              batch_size, wall_seconds, throughput);
  std::printf("request latency ms: p50 %.1f  p95 %.1f  p99 %.1f\n",
              percentile(latency_ms, 0.50), percentile(latency_ms, 0.95),
              percentile(latency_ms, 0.99));
  std::printf("%-12s %8s %12s %12s %12s\n", "stage", "count", "avg", "p95",
              "max");
  for (std::size_t s = 0; s < util::kProfileStages; ++s) {
    const auto stage = static_cast<util::ProfileStage>(s);
    const util::ProfileStageStats& st = stats.profile[stage];
    std::printf("%-12s %8llu %12.0f %12.0f %12llu\n",
                util::profile_stage_name(stage),
                static_cast<unsigned long long>(st.count), st.avg(), st.p95,
                static_cast<unsigned long long>(st.max));
  }

  write_report(batches, batch_size, wall_seconds, throughput, latency_ms,
               stats);
  return 0;
}
