// Always-on serving profiler: atomic per-stage counters (count/avg/min/max)
// plus a log₂ latency histogram per stage, double-buffered in epochs so
// readers never block writers.
//
// The discipline is that of a real-time engine's profiler: recording a
// sample is a handful of relaxed atomic RMWs into the live epoch buffer —
// no locks, no allocation, cheap enough to leave on in production.  A
// reader (stats export, bench report) flips the epoch, folds the retired
// buffer into a cumulative snapshot under its own mutex, and zeroes it for
// reuse.  A writer that straddles the flip lands its sample in whichever
// buffer its epoch read selected; the sample is never lost and never torn,
// it is merely attributed to the neighboring epoch — the standard (and
// harmless) slack of epoch-buffered telemetry.
//
// Stages are a fixed enum: the audit path records wall time for resolve /
// inspect / whole-request / queue-wait, and instantaneous values (queue
// depth) through the same channel with record_value().  Histogram buckets
// are powers of two of the raw unit (nanoseconds for timers), which is
// what makes p50/p95/p99 extraction allocation-free and O(64).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/thread_annotations.hpp"

namespace bprom::util {

/// Instrumented serving stages.  Extend here; names in profiler.cpp.
enum class ProfileStage : std::size_t {
  kResolve = 0,   ///< detector reference -> live handle (ns)
  kInspect,       ///< BpromDetector::inspect wall time (ns)
  kRequest,       ///< whole per-request audit wall time (ns)
  kQueueWait,     ///< async batch: submit -> worker pickup (ns)
  kQueueDepth,    ///< async ring occupancy sampled at submit/pickup (items)
  kBatch,         ///< whole async batch wall time, pickup -> done (ns)
  kStageCount,
};

inline constexpr std::size_t kProfileStages =
    static_cast<std::size_t>(ProfileStage::kStageCount);

/// Human-readable stage name ("resolve", "inspect", ...).
const char* profile_stage_name(ProfileStage stage);

/// Folded statistics of one stage.  Raw units: nanoseconds for timer
/// stages, items for kQueueDepth.  Percentiles come from the log₂
/// histogram and are exact to within their power-of-two bucket.
struct ProfileStageStats {
  std::uint64_t count = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double avg() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct ProfilerSnapshot {
  std::array<ProfileStageStats, kProfileStages> stages;

  [[nodiscard]] const ProfileStageStats& operator[](ProfileStage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
};

class Profiler {
 public:
  Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Record one sample (relaxed atomics into the live epoch buffer).
  void record(ProfileStage stage, std::uint64_t value);

  /// Alias that reads as intended at value-sampling call sites.
  void record_value(ProfileStage stage, std::uint64_t value) {
    record(stage, value);
  }

  /// Cumulative statistics since construction: flips the epoch, folds the
  /// retired buffer into the running totals, and returns them.  Readers
  /// serialize among themselves on an internal mutex; writers never touch
  /// it.
  ProfilerSnapshot snapshot();

 private:
  static constexpr std::size_t kBuckets = 64;

  struct StageCounters {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> histogram{};
  };

  struct Epoch {
    std::array<StageCounters, kProfileStages> stages;
  };

  /// Fold `epoch` into cumulative_ and zero it for reuse.
  void fold_and_reset(Epoch& epoch) BPROM_REQUIRES(reader_mu_);

  /// Writers select an epoch through live_ and land relaxed RMWs in it;
  /// epochs_ is deliberately NOT guarded by reader_mu_ — the per-cell
  /// atomics are the synchronization, the mutex only serializes readers.
  Epoch epochs_[2];
  std::atomic<std::uint32_t> live_{0};

  Mutex reader_mu_;
  struct CumulativeStage {
    std::uint64_t count = 0;
    std::uint64_t min = ~std::uint64_t{0};
    std::uint64_t max = 0;
    double sum = 0.0;
    std::array<std::uint64_t, kBuckets> histogram{};
  };
  std::array<CumulativeStage, kProfileStages> cumulative_
      BPROM_GUARDED_BY(reader_mu_);
};

/// RAII wall-clock sample: records the scope's duration in nanoseconds.
/// A null profiler disables the timer (zero-cost guard for optional
/// instrumentation).
class ScopedProfile {
 public:
  ScopedProfile(Profiler* profiler, ProfileStage stage)
      : profiler_(profiler), stage_(stage) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedProfile() {
    if (profiler_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    profiler_->record(stage_, static_cast<std::uint64_t>(ns));
  }

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  Profiler* profiler_;
  ProfileStage stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bprom::util
