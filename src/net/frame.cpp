#include "net/frame.hpp"

#include <cstring>
#include <string>

namespace bprom::net {

namespace {

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

void encode_frame_header(const FrameHeader& header,
                         std::uint8_t out[kFrameHeaderBytes]) {
  std::memcpy(out, kFrameMagic, 4);
  put_u16(out + 4, header.protocol_version);
  out[6] = static_cast<std::uint8_t>(header.type);
  out[7] = header.flags;
  put_u64(out + 8, header.request_id);
  put_u64(out + 16, header.body_len);
}

std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       const io::Writer& body) {
  const std::vector<std::uint8_t> container = body.finish();
  FrameHeader header;
  header.type = type;
  header.request_id = request_id;
  header.body_len = container.size();
  std::vector<std::uint8_t> frame(kFrameHeaderBytes + container.size());
  encode_frame_header(header, frame.data());
  std::memcpy(frame.data() + kFrameHeaderBytes, container.data(),
              container.size());
  return frame;
}

void FrameAssembler::append(const std::uint8_t* data, std::size_t n) {
  if (dead_ || n == 0) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state appends are a plain insert without quadratic memmoves.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

FrameAssembler::Next FrameAssembler::next(FrameHeader* header,
                                          std::vector<std::uint8_t>* body) {
  if (dead_) return Next::kError;
  if (buffered() < kFrameHeaderBytes) return Next::kNeedMore;
  const std::uint8_t* head = buffer_.data() + consumed_;
  if (std::memcmp(head, kFrameMagic, 4) != 0) {
    dead_ = true;
    error_ = api::Status::InvalidRequest(
        "bad frame magic: not the BPROM network protocol");
    return Next::kError;
  }
  FrameHeader parsed;
  parsed.protocol_version = get_u16(head + 4);
  parsed.type = static_cast<MsgType>(head[6]);
  parsed.flags = head[7];
  parsed.request_id = get_u64(head + 8);
  parsed.body_len = get_u64(head + 16);
  if (parsed.body_len > max_body_bytes_) {
    // Refuse before buffering: an oversized length prefix must not make the
    // receiver allocate attacker-chosen amounts of memory.
    dead_ = true;
    error_ = api::Status::InvalidRequest(
        "frame body of " + std::to_string(parsed.body_len) +
        " bytes exceeds the " + std::to_string(max_body_bytes_) +
        "-byte frame limit");
    return Next::kError;
  }
  if (buffered() < kFrameHeaderBytes + parsed.body_len) return Next::kNeedMore;
  const std::uint8_t* body_start = head + kFrameHeaderBytes;
  body->assign(body_start, body_start + parsed.body_len);
  *header = parsed;
  consumed_ += kFrameHeaderBytes + static_cast<std::size_t>(parsed.body_len);
  return Next::kFrame;
}

}  // namespace bprom::net
