// Shared helpers for the table/figure benches.
//
// Every bench regenerates one table or figure from the paper.  Cost scales
// with BPROM_SCALE (0 = smoke, 1 = default, 2 = heavy); absolute numbers are
// substrate-scale, the shapes are the reproduction target (EXPERIMENTS.md).
// Each binary prints the reproduced rows and per-stage wall-clock timings.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "data/ops.hpp"
#include "metrics/roc.hpp"
#include "defenses/evaluate.hpp"
#include "defenses/model_level.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace bench {

using namespace bprom;

struct Env {
  core::ExperimentScale scale = core::ExperimentScale::current();
  data::Dataset cifar10;
  data::Dataset gtsrb;
  data::Dataset stl10;

  static Env make() {
    Env env;
    env.cifar10 = data::make_dataset(data::DatasetKind::kCifar10, 1);
    env.gtsrb = data::make_dataset(data::DatasetKind::kGtsrb, 1);
    env.stl10 = data::make_dataset(data::DatasetKind::kStl10, 2);
    return env;
  }
};

inline const std::vector<attacks::AttackKind>& main_attacks() {
  static const std::vector<attacks::AttackKind> kinds = {
      attacks::AttackKind::kBadNets,   attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan,    attacks::AttackKind::kBpp,
      attacks::AttackKind::kWaNet,     attacks::AttackKind::kDynamic,
      attacks::AttackKind::kAdapBlend, attacks::AttackKind::kAdapPatch};
  return kinds;
}

/// BPROM AUROC/F1 for one (source, attack) cell; reuses a fitted detector.
/// (The implementation lives in core::evaluate_cell so examples and tests
/// share it.)
using CellResult = core::CellResult;

inline CellResult bprom_cell(const core::BpromDetector& detector,
                             const data::Dataset& source,
                             attacks::AttackKind kind, nn::ArchKind arch,
                             std::uint64_t seed,
                             const core::ExperimentScale& scale) {
  return core::evaluate_cell(detector, source,
                             attacks::AttackConfig::defaults(kind), arch, seed,
                             scale);
}

/// One table row: every attack cell of the row evaluated in parallel over
/// the pool.  Cells are independent and cell i's seed is seed_base + kind,
/// exactly what the serial `for (auto a : kinds) bprom_cell(..., seed_base +
/// (int)a, ...)` loop used — so rows are bit-identical to the serial loop
/// for any thread count.
inline std::vector<CellResult> bprom_row(
    const core::BpromDetector& detector, const data::Dataset& source,
    nn::ArchKind arch, std::uint64_t seed_base,
    const core::ExperimentScale& scale,
    const std::vector<attacks::AttackKind>& kinds = main_attacks()) {
  return core::evaluate_grid(detector, source, kinds, arch, seed_base, scale);
}

/// Baseline defense AUROC for one (model, attack) cell in its own regime.
inline defenses::DefenseEval baseline_cell(defenses::DefenseKind kind,
                                           const data::Dataset& source,
                                           attacks::AttackKind attack_kind,
                                           nn::ArchKind arch,
                                           std::uint64_t seed,
                                           const core::ExperimentScale& scale,
                                           std::size_t n_eval = 40) {
  util::Rng rng(seed);
  auto atk = attacks::AttackConfig::defaults(attack_kind);
  switch (defenses::regime_of(kind)) {
    case defenses::DefenseRegime::kInputLevel: {
      auto model = core::train_backdoored_model(source, atk, arch, seed, scale);
      return defenses::evaluate_input_level(kind, *model.model, source.test,
                                            atk, n_eval, rng);
    }
    case defenses::DefenseRegime::kDataLevel: {
      util::Rng drng(seed ^ 0xDA7AULL);
      auto train = data::subset(
          source.train, drng.sample_without_replacement(
                            source.train.size(),
                            std::min(scale.suspicious_train,
                                     source.train.size())));
      auto poisoned = attacks::poison_dataset(train, atk, drng);
      util::Rng mrng(seed ^ 0x30DE1ULL);
      auto model = nn::make_model(arch, source.profile.shape,
                                  source.profile.classes, mrng);
      nn::TrainConfig tc;
      tc.epochs = scale.suspicious_epochs;
      tc.seed = mrng.next_u64();
      nn::train_classifier(*model, poisoned.data, tc);
      return defenses::evaluate_data_level(kind, *model, poisoned,
                                           source.profile.classes, rng);
    }
    case defenses::DefenseRegime::kModelLevel: {
      // MM-BD: score a small model population, cohort-parallel.
      auto population = core::build_population(
          source, atk, arch, scale.population_per_side, seed, scale);
      std::vector<nn::Model*> cohort;
      std::vector<int> labels;
      for (auto& m : population) {
        cohort.push_back(m.model.get());
        labels.push_back(m.backdoored ? 1 : 0);
      }
      std::vector<double> scores = defenses::mmbd_cohort_scores(cohort);
      defenses::DefenseEval eval;
      eval.auroc = metrics::auroc(scores, labels);
      eval.f1 = metrics::best_f1(scores, labels);
      return eval;
    }
  }
  return {};
}

/// One cell of a sharded baseline-defense grid (see baseline_grid).
struct BaselineCell {
  defenses::DefenseKind defense{};
  attacks::AttackKind attack{};
  defenses::DefenseEval eval;
  double seconds = 0.0;
};

/// The (defense × attack) baseline cells of one table, dispatched over the
/// pool the same way core::evaluate_grid shards the BPROM cells — each cell
/// trains its own models and shares nothing.  Cell (d, a) keeps the exact
/// seed the serial double loop used (`seed_base + (int)a`, shared across
/// defenses), so the grid is bit-identical to the serial loop for any
/// thread count.  Cells come back defense-major in the input order.
inline std::vector<BaselineCell> baseline_grid(
    const std::vector<defenses::DefenseKind>& defense_kinds,
    const data::Dataset& source,
    const std::vector<attacks::AttackKind>& attack_kinds, nn::ArchKind arch,
    std::uint64_t seed_base, const core::ExperimentScale& scale) {
  std::vector<BaselineCell> cells(defense_kinds.size() * attack_kinds.size());
  util::parallel_for(cells.size(), [&](std::size_t i) {
    BaselineCell& cell = cells[i];
    cell.defense = defense_kinds[i / attack_kinds.size()];
    cell.attack = attack_kinds[i % attack_kinds.size()];
    util::Stopwatch watch;
    cell.eval = baseline_cell(cell.defense, source, cell.attack, arch,
                              seed_base + (int)cell.attack, scale);
    cell.seconds = watch.seconds();
  });
  return cells;
}

inline void print_elapsed(const util::Stopwatch& clock, const char* what) {
  std::printf("[%7.1fs] %s\n", clock.seconds(), what);
}

/// Machine-readable bench telemetry: write() drops one `BENCH_<id>.json`
/// (into $BPROM_BENCH_JSON_DIR, default cwd) with per-cell and whole-run
/// wall-clock plus the thread count, so the perf trajectory of every table
/// is tracked from PR 4 on.  Reproduced numbers stay in the printed
/// tables — this file is timing telemetry only.
class BenchReport {
 public:
  explicit BenchReport(std::string id) : id_(std::move(id)) {}

  void add_cell(std::string cell_id, double seconds) {
    cells_.emplace_back(std::move(cell_id), seconds);
  }

  /// `group` disambiguates repeated grids over the same dataset (e.g. the
  /// architecture when a bench sweeps several) — without it the ids would
  /// collide and the timings be unattributable.
  void add_cells(const data::Dataset& source,
                 const std::vector<BaselineCell>& cells,
                 const std::string& group = "") {
    const std::string prefix =
        source.profile.name + (group.empty() ? "" : "/" + group) + "/";
    for (const auto& cell : cells) {
      add_cell(prefix + defenses::defense_name(cell.defense) + "/" +
                   attacks::attack_name(cell.attack),
               cell.seconds);
    }
  }

  /// Best-effort by design: a read-only working directory must not turn a
  /// finished bench run into a failure.
  void write() const {
    const char* dir = std::getenv("BPROM_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir != nullptr && *dir != '\0' ? dir : ".") + "/BENCH_" +
        id_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << escape(id_) << "\",\n"
        << "  \"threads\": " << util::default_pool().size() << ",\n"
        << "  \"wall_seconds\": " << wall_.seconds() << ",\n"
        << "  \"cells\": [";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    {\"id\": \""
          << escape(cells_[i].first) << "\", \"seconds\": "
          << cells_[i].second << "}";
    }
    out << (cells_.empty() ? "" : "\n  ") << "]\n}\n";
    std::printf("bench report: %s\n", path.c_str());
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string id_;
  util::Stopwatch wall_;
  std::vector<std::pair<std::string, double>> cells_;
};

}  // namespace bench
