#include "nn/arch.hpp"

#include <cassert>

#include "nn/attention.hpp"
#include "nn/blocks.hpp"

namespace bprom::nn {

std::string arch_name(ArchKind kind) {
  switch (kind) {
    case ArchKind::kResNet18Mini:
      return "ResNet18Mini";
    case ArchKind::kMobileNetV2Mini:
      return "MobileNetV2Mini";
    case ArchKind::kMobileViTMini:
      return "MobileViTMini";
    case ArchKind::kSwinMini:
      return "SwinMini";
    case ArchKind::kMlp:
      return "Mlp";
  }
  return "?";
}

namespace {

std::unique_ptr<Model> make_resnet(ImageShape input, std::size_t classes,
                                   util::Rng& rng) {
  auto backbone = std::make_unique<Sequential>();
  backbone->emplace<Conv2d>(input.channels, 4, 3, 1, 1, rng);
  backbone->emplace<BatchNorm2d>(4);
  backbone->emplace<ReLU>();
  backbone->emplace<ResidualBlock>(4, 8, 2, rng);
  backbone->emplace<ResidualBlock>(8, 16, 2, rng);
  backbone->emplace<GlobalAvgPool>();
  auto head = std::make_unique<Linear>(16, classes, rng);
  return std::make_unique<Model>(std::move(backbone), std::move(head), input,
                                 classes);
}

std::unique_ptr<Model> make_mobilenet(ImageShape input, std::size_t classes,
                                      util::Rng& rng) {
  auto backbone = std::make_unique<Sequential>();
  backbone->emplace<Conv2d>(input.channels, 8, 3, 1, 1, rng);
  backbone->emplace<BatchNorm2d>(8);
  backbone->emplace<ReLU>();
  backbone->emplace<DepthwiseSeparableBlock>(8, 16, 2, rng);
  backbone->emplace<DepthwiseSeparableBlock>(16, 16, 1, rng);
  backbone->emplace<DepthwiseSeparableBlock>(16, 32, 2, rng);
  backbone->emplace<GlobalAvgPool>();
  auto head = std::make_unique<Linear>(32, classes, rng);
  return std::make_unique<Model>(std::move(backbone), std::move(head), input,
                                 classes);
}

std::unique_ptr<Model> make_mobilevit(ImageShape input, std::size_t classes,
                                      util::Rng& rng) {
  auto backbone = std::make_unique<Sequential>();
  backbone->emplace<Conv2d>(input.channels, 8, 3, 1, 1, rng);
  backbone->emplace<BatchNorm2d>(8);
  backbone->emplace<ReLU>();
  backbone->emplace<DepthwiseSeparableBlock>(8, 16, 2, rng);
  backbone->emplace<DepthwiseSeparableBlock>(16, 16, 2, rng);
  backbone->emplace<SpatialSelfAttention>(16, rng);
  backbone->emplace<BatchNorm2d>(16);
  backbone->emplace<ReLU>();
  backbone->emplace<Conv2d>(16, 32, 1, 1, 0, rng);
  backbone->emplace<BatchNorm2d>(32);
  backbone->emplace<ReLU>();
  backbone->emplace<GlobalAvgPool>();
  auto head = std::make_unique<Linear>(32, classes, rng);
  return std::make_unique<Model>(std::move(backbone), std::move(head), input,
                                 classes);
}

std::unique_ptr<Model> make_swin(ImageShape input, std::size_t classes,
                                 util::Rng& rng) {
  auto backbone = std::make_unique<Sequential>();
  // Patchify: stride-2 conv = 2x2 patch embedding.
  backbone->emplace<Conv2d>(input.channels, 16, 2, 2, 0, rng);
  backbone->emplace<BatchNorm2d>(16);
  backbone->emplace<Gelu>();
  backbone->emplace<SpatialSelfAttention>(16, rng);
  backbone->emplace<BatchNorm2d>(16);
  // Merge: downsample + widen.
  backbone->emplace<Conv2d>(16, 32, 2, 2, 0, rng);
  backbone->emplace<BatchNorm2d>(32);
  backbone->emplace<Gelu>();
  backbone->emplace<SpatialSelfAttention>(32, rng);
  backbone->emplace<BatchNorm2d>(32);
  backbone->emplace<GlobalAvgPool>();
  auto head = std::make_unique<Linear>(32, classes, rng);
  return std::make_unique<Model>(std::move(backbone), std::move(head), input,
                                 classes);
}

std::unique_ptr<Model> make_mlp(ImageShape input, std::size_t classes,
                                util::Rng& rng) {
  auto backbone = std::make_unique<Sequential>();
  backbone->emplace<Flatten>();
  backbone->emplace<Linear>(input.size(), 64, rng);
  backbone->emplace<ReLU>();
  backbone->emplace<Linear>(64, 32, rng);
  backbone->emplace<ReLU>();
  auto head = std::make_unique<Linear>(32, classes, rng);
  return std::make_unique<Model>(std::move(backbone), std::move(head), input,
                                 classes);
}

}  // namespace

std::unique_ptr<Model> make_model(ArchKind kind, ImageShape input,
                                  std::size_t classes, util::Rng& rng) {
  std::unique_ptr<Model> model;
  switch (kind) {
    case ArchKind::kResNet18Mini:
      model = make_resnet(input, classes, rng);
      break;
    case ArchKind::kMobileNetV2Mini:
      model = make_mobilenet(input, classes, rng);
      break;
    case ArchKind::kMobileViTMini:
      model = make_mobilevit(input, classes, rng);
      break;
    case ArchKind::kSwinMini:
      model = make_swin(input, classes, rng);
      break;
    case ArchKind::kMlp:
      model = make_mlp(input, classes, rng);
      break;
  }
  assert(model);
  if (model) model->set_arch(kind);
  return model;
}

}  // namespace bprom::nn
