#include "tensor/tensor.hpp"

#include <algorithm>

namespace bprom::tensor {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t total = 1;
  for (auto d : shape) total *= d;
  return total;
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

void Tensor::reshape(std::vector<std::size_t> shape) {
  assert(shape_size(shape) == data_.size());
  shape_ = std::move(shape);
}

void Tensor::resize(std::vector<std::size_t> shape) {
  shape_ = std::move(shape);
  data_.resize(shape_size(shape_));
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::add(const Tensor& rhs) {
  assert(rhs.size() == size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& rhs, float scale) {
  assert(rhs.size() == size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * rhs.data_[i];
  }
  return *this;
}

Tensor& Tensor::scale(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, util::Rng& rng,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::slice_sample(std::size_t n) const {
  assert(rank() >= 1 && n < shape_[0]);
  std::vector<std::size_t> sub(shape_.begin() + 1, shape_.end());
  Tensor out(sub);
  const std::size_t stride = out.size();
  std::copy(data_.begin() + static_cast<long>(n * stride),
            data_.begin() + static_cast<long>((n + 1) * stride),
            out.data_.begin());
  return out;
}

Tensor Tensor::stack(const std::vector<Tensor>& samples) {
  assert(!samples.empty());
  std::vector<std::size_t> shape;
  shape.push_back(samples.size());
  for (auto d : samples.front().shape()) shape.push_back(d);
  Tensor out(shape);
  const std::size_t stride = samples.front().size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    assert(samples[i].size() == stride);
    std::copy(samples[i].data_.begin(), samples[i].data_.end(),
              out.data_.begin() + static_cast<long>(i * stride));
  }
  return out;
}

}  // namespace bprom::tensor
