// MNTD (Xu et al. 2019) — meta neural trojan detection, the closest prior
// work to BPROM.  Trains many shadow models across *multiple* attack types
// and fits a meta-classifier on their confidence vectors over a fixed query
// set (no visual prompting).  Included as the head-to-head baseline for the
// §5.3 comparison and the shadow-count ablation.
#pragma once

#include <vector>

#include "attacks/poisoner.hpp"
#include "meta/logistic.hpp"
#include "nn/arch.hpp"
#include "nn/blackbox.hpp"

namespace bprom::defenses {

struct MntdConfig {
  nn::ArchKind shadow_arch = nn::ArchKind::kResNet18Mini;
  std::size_t clean_shadows = 10;
  std::size_t backdoor_shadows = 10;
  /// MNTD needs to "see" a variety of backdoors (paper §5.3).
  std::vector<attacks::AttackKind> attack_pool = {
      attacks::AttackKind::kBadNets, attacks::AttackKind::kBlend,
      attacks::AttackKind::kTrojan};
  double shadow_poison_rate = 0.15;
  std::size_t query_samples = 16;
  nn::TrainConfig shadow_train{};
  std::uint64_t seed = 37;
};

class MntdDetector {
 public:
  explicit MntdDetector(MntdConfig config = {});

  /// `reserved_clean` plays the role of MNTD's shadow training data; the
  /// query set is drawn from it too (MNTD has no external dataset).
  void fit(const nn::LabeledData& reserved_clean, std::size_t classes);

  /// P(backdoor) for a black-box suspicious model.
  [[nodiscard]] double score(const nn::BlackBoxModel& suspicious) const;

 private:
  [[nodiscard]] std::vector<float> feature_vector(
      const nn::BlackBoxModel& model) const;

  MntdConfig config_;
  bool fitted_ = false;
  nn::LabeledData query_set_;
  meta::LogisticRegression meta_;
};

}  // namespace bprom::defenses
