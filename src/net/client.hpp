// net::Client — the blocking client half of the BPROM network protocol.
//
// A deliberately small, synchronous library: one TCP connection, typed
// calls (`audit`, `audit_batch`, `stats`, `info`) that mirror the
// api::AuditEngine façade, and the same typed api::Status vocabulary on
// every failure.  Transport-level problems (connect/send/recv failures,
// corrupt or unparseable frames) fail the *call*; per-request problems
// (unknown detector, exhausted budget, admission rejections) come back as
// non-OK statuses inside the matching response, exactly like the
// in-process engine.
//
// `audit_batch` is pipelined: every request frame is written before the
// first response is read, so a batch costs one round trip plus server
// time instead of N round trips.  The server may complete requests out of
// order (its serving workers race); responses are matched back to their
// slots by the echoed request id, so callers always see batch order.
//
// Not thread-safe: one Client is one connection with one in-flight call.
// Open one Client per thread (connections are cheap; the server's
// admission budgets are per connection anyway).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"
#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/socket.hpp"

namespace bprom::nn {
class Model;
}  // namespace bprom::nn

namespace bprom::net {

struct ClientConfig {
  /// Numeric IPv4 server address.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Ceiling on one received frame's body (mirror of the server knob).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// One audit to submit over the wire.  The model is borrowed and gets
/// serialized into the request frame (non-const: nn::Model::save walks
/// mutable layer state); it only needs to outlive the call.
struct ClientAuditRequest {
  std::string model_id;
  std::string detector;
  nn::Model* model = nullptr;
  std::uint64_t query_budget = api::kUnlimitedQueries;
  std::uint64_t deadline_ms = 0;
};

class Client {
 public:
  /// Connect (blocking) to a running net::Server.
  static api::Result<Client> connect(const ClientConfig& config);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Audit one model; the engine's response, typed failures in-band.
  api::Result<api::AuditResponse> audit(const ClientAuditRequest& request);

  /// Pipelined batch: all requests are sent before responses are read.
  /// The returned vector keeps request order; admission rejections and
  /// per-request failures are non-OK statuses in the matching slot.
  api::Result<std::vector<api::AuditResponse>> audit_batch(
      const std::vector<ClientAuditRequest>& requests);

  /// EngineStats + the server's transport/admission counters.
  api::Result<StatsResponseMsg> stats();

  /// Metadata of a published detector ("name" or pinned "name@vN").
  api::Result<api::DetectorInfo> info(const std::string& detector);

  /// Drop the connection; subsequent calls fail kFailedPrecondition.
  void close() { sock_.close(); }

  [[nodiscard]] bool connected() const { return sock_.valid(); }

 private:
  explicit Client(Socket sock, const ClientConfig& config)
      : sock_(std::move(sock)), assembler_(config.max_frame_bytes) {}

  /// Block until one complete frame arrives (or the stream dies).
  api::Status read_frame(FrameHeader* header, std::vector<std::uint8_t>* body);
  api::Status send_frame(MsgType type, std::uint64_t request_id,
                         const io::Writer& body);

  Socket sock_;
  FrameAssembler assembler_;
  std::uint64_t next_id_ = 1;
};

}  // namespace bprom::net
