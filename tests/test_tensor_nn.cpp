// Training framework tests: tensor ops, im2col, gradient checks via finite
// differences, loss, optimizers, architecture factory, training convergence.
#include <gtest/gtest.h>
#include <cmath>
#include "nn/arch.hpp"
#include "nn/blocks.hpp"
#include "nn/attention.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "tensor/im2col.hpp"
namespace bprom::nn {
namespace {

TEST(Tensor, ShapeAndAccessors) {
  Tensor t({2, 3, 4, 4});
  EXPECT_EQ(t.size(), 96u);
  t.at4(1, 2, 3, 3) = 7.0F;
  EXPECT_FLOAT_EQ(t[95], 7.0F);
}

TEST(Tensor, StackAndSlice) {
  Tensor a({2, 2}, 1.0F);
  Tensor b({2, 2}, 2.0F);
  Tensor s = Tensor::stack({a, b});
  EXPECT_EQ(s.dim(0), 2u);
  Tensor back = s.slice_sample(1);
  EXPECT_FLOAT_EQ(back[0], 2.0F);
}

TEST(Im2Col, IdentityKernelGeometry) {
  tensor::ConvGeometry g{1, 3, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 3u);
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  Tensor cols = tensor::im2col(x, g);
  EXPECT_EQ(cols.dim(0), 9u);
  EXPECT_EQ(cols.dim(1), 9u);
  // Center output position sees the whole image.
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(cols.at2(4, i), static_cast<float>(i));
  }
}

TEST(Im2Col, Col2ImAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> (adjoint property).
  util::Rng rng(3);
  tensor::ConvGeometry g{2, 4, 4, 3, 2, 1};
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = Tensor::randn({g.out_h() * g.out_w(), g.patch_size()}, rng);
  Tensor cols = tensor::im2col(x, g);
  double lhs = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  Tensor xt = tensor::col2im(y, g, 1);
  double rhs = 0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// Finite-difference gradient check through a whole model.
void check_input_gradient(Model& model, double tol) {
  util::Rng rng(11);
  Tensor x = Tensor::randn({2, model.input_shape().channels,
                            model.input_shape().height,
                            model.input_shape().width}, rng, 0.5F);
  std::vector<int> labels{0, 1};
  Tensor logits = model.logits(x, false);
  LossResult loss = cross_entropy(logits, labels);
  Tensor dx = model.backward(loss.dlogits);

  const float eps = 1e-2F;
  util::Rng pick(13);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t i = pick.uniform_index(x.size());
    Tensor xp = x;
    xp[i] += eps;
    double lp = cross_entropy(model.logits(xp, false), labels).loss;
    Tensor xm = x;
    xm[i] -= eps;
    double lm = cross_entropy(model.logits(xm, false), labels).loss;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, tol) << "input index " << i;
  }
}

TEST(Gradients, MlpInputGradientMatchesFiniteDifference) {
  util::Rng rng(1);
  auto model = make_model(ArchKind::kMlp, ImageShape{3, 8, 8}, 4, rng);
  check_input_gradient(*model, 2e-3);
}

TEST(Gradients, ResNetInputGradientMatchesFiniteDifference) {
  util::Rng rng(2);
  auto model = make_model(ArchKind::kResNet18Mini, ImageShape{3, 8, 8}, 4, rng);
  check_input_gradient(*model, 5e-3);
}

TEST(Gradients, MobileNetInputGradientMatchesFiniteDifference) {
  util::Rng rng(3);
  auto model = make_model(ArchKind::kMobileNetV2Mini, ImageShape{3, 8, 8}, 4, rng);
  check_input_gradient(*model, 5e-3);
}

TEST(Gradients, AttentionInputGradientMatchesFiniteDifference) {
  util::Rng rng(4);
  auto model = make_model(ArchKind::kSwinMini, ImageShape{3, 8, 8}, 4, rng);
  check_input_gradient(*model, 8e-3);
}

TEST(Gradients, ParameterGradientMatchesFiniteDifference) {
  util::Rng rng(5);
  auto model = make_model(ArchKind::kMlp, ImageShape{3, 8, 8}, 4, rng);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng, 0.5F);
  std::vector<int> labels{1, 3};
  for (auto* p : model->parameters()) p->zero_grad();
  LossResult loss = cross_entropy(model->logits(x, false), labels);
  model->backward(loss.dlogits);
  auto params = model->parameters();
  Parameter* w = params[0];
  const float eps = 1e-2F;
  util::Rng pick(17);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t i = pick.uniform_index(w->value.size());
    const float orig = w->value[i];
    w->value[i] = orig + eps;
    double lp = cross_entropy(model->logits(x, false), labels).loss;
    w->value[i] = orig - eps;
    double lm = cross_entropy(model->logits(x, false), labels).loss;
    w->value[i] = orig;
    EXPECT_NEAR(w->grad[i], (lp - lm) / (2.0 * eps), 2e-3);
  }
}

// Regression for the g == 0 fast path in Linear::backward: rows whose
// output gradient is entirely zero contribute nothing, and dx must come
// back exactly zero there — freshly zero-initialized, never stale values
// from an earlier backward through the same layer.
TEST(Gradients, LinearZeroGradRowsYieldExactZeroDx) {
  util::Rng rng(6);
  Linear fc(8, 4, rng);
  Tensor x = Tensor::randn({3, 8}, rng);

  // First pass with dense gradients dirties any internal accumulation.
  (void)fc.forward(x, true);
  Tensor g1 = Tensor::randn({3, 4}, rng);
  (void)fc.backward(g1);

  // Second pass: the middle sample's gradient row is all zero.
  (void)fc.forward(x, true);
  Tensor g2 = Tensor::randn({3, 4}, rng);
  for (std::size_t o = 0; o < 4; ++o) g2.at2(1, o) = 0.0F;
  Tensor dx = fc.backward(g2);

  const Tensor& w = fc.parameters()[0]->value;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t k = 0; k < 8; ++k) {
      // Reference accumulated in the same order (ascending o, zero rows
      // skipped) so the comparison is bit-exact.
      float ref = 0.0F;
      for (std::size_t o = 0; o < 4; ++o) {
        const float g = g2.at2(i, o);
        if (g == 0.0F) continue;
        ref += g * w.at2(o, k);
      }
      EXPECT_EQ(dx.at2(i, k), ref) << "dx[" << i << "][" << k << "]";
    }
  }
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(dx.at2(1, k), 0.0F) << "stale value leaked into zero row";
  }
}

// Regression for the old -1e30F pooling sentinel: windows whose inputs are
// all below it must still return their true maximum (and route the
// backward gradient to the argmax, not to index 0).
TEST(MaxPool, PoolsWindowsBelowOldSentinel) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, -2e30F);
  x.at4(0, 0, 1, 1) = -1.5e30F;  // the true maximum, still below -1e30
  Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], -1.5e30F);

  Tensor g({1, 1, 1, 1}, 1.0F);
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx.at4(0, 0, 1, 1), 1.0F);
  EXPECT_FLOAT_EQ(dx.at4(0, 0, 0, 0), 0.0F);
}

// Flatten must reshape the moved activation buffer, not deep-copy it.
TEST(Flatten, MovedForwardAndBackwardReuseTheBuffer) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const float* px = x.data();
  Tensor y = flat.forward(std::move(x), false);
  EXPECT_EQ(y.data(), px) << "forward deep-copied the activation";
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));

  const float* py = y.data();
  Tensor dx = flat.backward(std::move(y));
  EXPECT_EQ(dx.data(), py) << "backward deep-copied the gradient";
  EXPECT_EQ(dx.shape(), (std::vector<std::size_t>{2, 3, 4, 4}));
  EXPECT_FLOAT_EQ(dx[95], 95.0F);

  // The const-ref overloads still behave like value semantics.
  Tensor x2({2, 3, 4, 4}, 1.0F);
  Tensor y2 = flat.forward(x2, false);
  EXPECT_NE(y2.data(), x2.data());
  EXPECT_EQ(x2.shape(), (std::vector<std::size_t>{2, 3, 4, 4}));
}

TEST(Loss, SoftmaxRowsSumToOne) {
  util::Rng rng(6);
  Tensor logits = Tensor::randn({4, 5}, rng, 2.0F);
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0;
    for (std::size_t j = 0; j < 5; ++j) sum += p.at2(i, j);
    EXPECT_NEAR(sum, 1.0F, 1e-5);
  }
}

TEST(Loss, CrossEntropyOfUniformIsLogK) {
  Tensor logits({2, 4}, 0.0F);
  LossResult loss = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.loss, std::log(4.0), 1e-6);
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via Parameter machinery.
  Parameter w(Tensor({1}, 0.0F));
  Sgd opt({&w}, 0.1F, 0.0F);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    w.grad[0] = 2.0F * (w.value[0] - 3.0F);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0F, 1e-3);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Parameter w(Tensor({1}, 0.0F));
  Adam opt({&w}, 0.1F);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    w.grad[0] = 2.0F * (w.value[0] - 3.0F);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0F, 1e-2);
}

class ArchTest : public ::testing::TestWithParam<ArchKind> {};

TEST_P(ArchTest, OutputShapeAndProbabilities) {
  util::Rng rng(9);
  auto model = make_model(GetParam(), ImageShape{3, 16, 16}, 7, rng);
  Tensor x = Tensor::randn({3, 3, 16, 16}, rng, 0.3F);
  Tensor probs = model->predict_proba(x);
  EXPECT_EQ(probs.dim(0), 3u);
  EXPECT_EQ(probs.dim(1), 7u);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_GE(probs[i], 0.0F);
    EXPECT_LE(probs[i], 1.0F);
  }
}

TEST_P(ArchTest, SaveLoadRoundTrip) {
  util::Rng rng(10);
  auto model = make_model(GetParam(), ImageShape{3, 16, 16}, 5, rng);
  auto blob = model->save_parameters();
  util::Rng rng2(999);
  auto other = make_model(GetParam(), ImageShape{3, 16, 16}, 5, rng2);
  other->load_parameters(blob);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng, 0.3F);
  Tensor a = model->logits(x, false);
  Tensor b = other->logits(x, false);
  // BatchNorm running stats are not serialized, but fresh models share the
  // init defaults, so eval outputs match.
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchTest,
    ::testing::Values(ArchKind::kResNet18Mini, ArchKind::kMobileNetV2Mini,
                      ArchKind::kMobileViTMini, ArchKind::kSwinMini,
                      ArchKind::kMlp));

TEST(Trainer, LearnsLinearlySeparableTask) {
  util::Rng rng(20);
  LabeledData data;
  data.images = Tensor({80, 3, 8, 8});
  data.labels.resize(80);
  for (std::size_t i = 0; i < 80; ++i) {
    const int cls = static_cast<int>(i % 2);
    data.labels[i] = cls;
    for (std::size_t p = 0; p < 192; ++p) {
      data.images[i * 192 + p] =
          static_cast<float>(0.5 + (cls == 0 ? -0.3 : 0.3) + 0.05 * rng.normal());
    }
  }
  auto model = make_model(ArchKind::kMlp, ImageShape{3, 8, 8}, 2, rng);
  TrainConfig tc;
  tc.epochs = 10;
  auto history = train_classifier(*model, data, tc);
  EXPECT_LT(history.epoch_loss.back(), history.epoch_loss.front());
  EXPECT_GT(evaluate_accuracy(*model, data), 0.95);
}

}  // namespace
}  // namespace bprom::nn
