// Black-box query interface.
//
// The paper's defender may only query the suspicious model for confidence
// vectors.  Every detection component that must respect that boundary takes
// a BlackBoxModel, so the type system enforces black-box discipline: there
// is no way to reach gradients or parameters through this interface.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "nn/model.hpp"

namespace bprom::nn {

class BlackBoxModel {
 public:
  virtual ~BlackBoxModel() = default;

  /// Softmax confidence vectors [N, K] for an image batch [N, C, H, W].
  virtual Tensor predict_proba(const Tensor& images) const = 0;

  [[nodiscard]] virtual std::size_t num_classes() const = 0;
  [[nodiscard]] virtual ImageShape input_shape() const = 0;

  /// Number of queries served so far (for query-budget accounting).
  [[nodiscard]] virtual std::size_t query_count() const = 0;

  /// Deep-copy into an independently queryable replica with its own query
  /// counter, or nullptr when the backing service cannot be replicated.
  /// Replicas let callers fan queries out across threads (one Model
  /// instance is single-threaded — forward passes cache activations)
  /// without widening the interface beyond confidence vectors.
  [[nodiscard]] virtual std::unique_ptr<BlackBoxModel> replicate() const {
    return nullptr;
  }
};

/// Adapter exposing a concrete Model through the black-box interface.
/// Mutable access is required internally (forward passes cache activations)
/// but nothing beyond confidence vectors crosses the interface.  The
/// adapter either borrows a caller-owned model or owns one outright (what
/// replicate() hands back, and what serving code uses for models loaded
/// from disk).
class BlackBoxAdapter final : public BlackBoxModel {
 public:
  /// Borrow `model`; it must outlive the adapter.
  explicit BlackBoxAdapter(Model& model) : model_(&model) {}

  /// Own `model`.
  explicit BlackBoxAdapter(std::unique_ptr<Model> model)
      : owned_(std::move(model)), model_(owned_.get()) {}

  /// Moves carry the query tally over (the atomic member suppresses the
  /// implicit move).  Only valid while no other thread queries `other`,
  /// like any move.
  BlackBoxAdapter(BlackBoxAdapter&& other) noexcept
      : owned_(std::move(other.owned_)),
        model_(other.model_),
        // relaxed: moves require external quiescence anyway (no concurrent
        // queries on `other`), so the read needs atomicity only in form.
        queries_(other.queries_.load(std::memory_order_relaxed)) {
    other.model_ = nullptr;
  }

  Tensor predict_proba(const Tensor& images) const override {
    // relaxed: a pure tally — totals are read after the fan-out joins
    // (which synchronizes), never used to order other memory.
    queries_.fetch_add(images.dim(0), std::memory_order_relaxed);
    return model_->predict_proba(images);
  }

  [[nodiscard]] std::size_t num_classes() const override {
    return model_->num_classes();
  }
  [[nodiscard]] ImageShape input_shape() const override {
    return model_->input_shape();
  }
  [[nodiscard]] std::size_t query_count() const override {
    // relaxed: callers read totals only at join points (see fetch_add).
    return queries_.load(std::memory_order_relaxed);
  }

  /// The replica starts with a zero query counter; callers that fan work
  /// out over replicas must add each replica's query_count() back into
  /// their own accounting (learn_prompt_blackbox and BpromDetector::inspect
  /// do) so totals stay exact.
  [[nodiscard]] std::unique_ptr<BlackBoxModel> replicate() const override {
    return std::make_unique<BlackBoxAdapter>(model_->clone());
  }

 private:
  std::unique_ptr<Model> owned_;  // null when the model is borrowed
  Model* model_;
  // Relaxed atomic: one adapter may be queried from several pool threads
  // (the underlying Model is not — callers replicate() per thread — but
  // nothing in this interface stops concurrent const queries, and a plain
  // size_t made that a data race).  Counting needs no ordering, only
  // atomicity.
  mutable std::atomic<std::size_t> queries_{0};
};

}  // namespace bprom::nn
