// Client-side failure recovery over a real loopback server: transport
// timeouts, injected connect/send/recv faults healed by the reconnect-and-
// retry policy (bit-identically — the whole point of deterministic
// serving), the never-retry rule for typed application rejections, and the
// graceful drain protocol (kShutdownRequest and begin_drain()).
//
// Failpoints only fire in the poll-based timeout IO helpers, and the
// server's epoll loops use raw ::send/::recv — so arming net.* here
// injects faults into the CLIENT side only, even though both ends share
// the process.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "core/experiment.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "nn/arch.hpp"
#include "nn/blackbox.hpp"
#include "util/failpoint.hpp"

namespace bprom {
namespace {

namespace fs = std::filesystem;

core::ExperimentScale micro_scale() {
  core::ExperimentScale s;
  s.suspicious_train = 120;
  s.suspicious_epochs = 2;
  s.population_per_side = 1;
  s.shadows_per_side = 2;
  s.shadow_epochs = 2;
  s.prompt_epochs = 1;
  s.blackbox_evals = 40;
  s.query_samples = 4;
  s.forest_trees = 20;
  return s;
}

struct Fixture {
  data::Dataset src = data::make_dataset(data::DatasetKind::kCifar10, 61, 400,
                                         160);
  data::Dataset tgt = data::make_dataset(data::DatasetKind::kStl10, 62, 300,
                                         160);
  core::BpromDetector detector = core::fit_detector(
      src, tgt, 0.10, nn::ArchKind::kResNet18Mini, 7, micro_scale());
  core::TrainedSuspicious suspicious = core::train_clean_model(
      src, nn::ArchKind::kResNet18Mini, 50, micro_scale());
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

net::ClientAuditRequest wire_request(const std::string& id = "m0") {
  net::ClientAuditRequest request;
  request.model_id = id;
  request.detector = "market";
  request.model = fixture().suspicious.model.get();
  return request;
}

/// Engine + published detector + running server, torn down in order.
struct Serving {
  explicit Serving(const std::string& tag, net::ServerConfig config = {})
      : dir(fresh_dir(tag)), engine({.store_dir = dir}) {
    EXPECT_TRUE(engine.publish("market", fixture().detector).ok());
    server.emplace(engine, config);
    EXPECT_TRUE(server->start().ok());
  }
  ~Serving() {
    if (server) server->stop();
    fs::remove_all(dir);
  }

  std::string dir;
  api::AuditEngine engine;
  std::optional<net::Server> server;
};

/// Bounded client (all transport deadlines set, so every byte of IO runs
/// through the poll helpers where the net.* failpoints live).
net::ClientConfig bounded_config(std::uint16_t port,
                                 net::RetryPolicy retry = {}) {
  net::ClientConfig config;
  config.port = port;
  config.connect_timeout_ms = 2000;
  config.send_timeout_ms = 2000;
  config.recv_timeout_ms = 4000;
  config.retry = retry;
  return config;
}

/// Failpoints are process-global; every test starts and ends disarmed.
class NetRecovery : public ::testing::Test {
 protected:
  void SetUp() override { util::failpoints_clear(); }
  void TearDown() override { util::failpoints_clear(); }

  static void arm(const std::string& spec) {
    std::string error;
    ASSERT_TRUE(util::failpoints_arm(spec, &error)) << error;
  }
};

TEST_F(NetRecovery, RecvTimeoutSurfacesDeadlineExceeded) {
  // A listener that never accepts: the kernel completes the handshake into
  // the backlog, then nothing ever answers.  Legacy blocking clients would
  // hang here forever — the configured recv deadline must not.
  auto listener = net::listen_on("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  auto port = net::local_port(listener.value().fd());
  ASSERT_TRUE(port.ok());

  net::ClientConfig config;
  config.port = port.value();
  config.connect_timeout_ms = 1000;
  config.send_timeout_ms = 1000;
  config.recv_timeout_ms = 250;
  auto client = net::Client::connect(config);
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  const auto t0 = std::chrono::steady_clock::now();
  auto stats = client.value().stats();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), api::StatusCode::kDeadlineExceeded)
      << stats.status().to_string();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(NetRecovery, ConnectFaultIsTypedAndTransient) {
  Serving serving("bprom_netrec_connect");
  arm("net.connect=1->err");
  auto failed = net::Client::connect(bounded_config(serving.server->port()));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), api::StatusCode::kInternal);
  EXPECT_GE(util::failpoint_hits("net.connect"), 1U);
  // The fault was one-shot; the world is healthy again.
  auto second = net::Client::connect(bounded_config(serving.server->port()));
  EXPECT_TRUE(second.ok()) << second.status().to_string();
}

TEST_F(NetRecovery, RetryRecoversFromRecvFaultBitIdentically) {
  Serving serving("bprom_netrec_recv");
  // Reference verdict through a fault-free connection.
  auto reference_client =
      net::Client::connect(bounded_config(serving.server->port()));
  ASSERT_TRUE(reference_client.ok());
  auto reference = reference_client.value().audit(wire_request());
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference.value().status.ok());

  // Now kill the first receive.  The retry policy must reconnect, replay
  // under the SAME request id, and land the identical verdict.
  net::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.jitter_seed = 7;
  auto client = net::Client::connect(
      bounded_config(serving.server->port(), retry));
  ASSERT_TRUE(client.ok());
  arm("net.recv=1->err");
  auto retried = client.value().audit(wire_request());
  ASSERT_TRUE(retried.ok()) << retried.status().to_string();
  ASSERT_TRUE(retried.value().status.ok())
      << retried.value().status.to_string();
  EXPECT_GE(util::failpoint_hits("net.recv"), 1U);  // the fault DID fire
  EXPECT_EQ(retried.value().verdict.score, reference.value().verdict.score);
  EXPECT_EQ(retried.value().verdict.backdoored,
            reference.value().verdict.backdoored);
  EXPECT_EQ(retried.value().verdict.prompted_accuracy,
            reference.value().verdict.prompted_accuracy);
  EXPECT_EQ(retried.value().verdict.queries,
            reference.value().verdict.queries);
}

TEST_F(NetRecovery, RetryRecoversFromSendFault) {
  Serving serving("bprom_netrec_send");
  net::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.jitter_seed = 11;
  auto client = net::Client::connect(
      bounded_config(serving.server->port(), retry));
  ASSERT_TRUE(client.ok());
  arm("net.send=1->err");
  auto response = client.value().audit(wire_request());
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response.value().status.ok());
  EXPECT_GE(util::failpoint_hits("net.send"), 1U);
}

TEST_F(NetRecovery, TypedRejectionIsNeverRetried) {
  Serving serving("bprom_netrec_typed");
  net::RetryPolicy retry;
  retry.max_attempts = 3;
  auto client = net::Client::connect(
      bounded_config(serving.server->port(), retry));
  ASSERT_TRUE(client.ok());

  net::ClientAuditRequest request = wire_request();
  request.detector = "ghost";  // never published
  auto response = client.value().audit(request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status.code(), api::StatusCode::kNotFound);
  // The rejection arrived in-band and is FINAL: exactly one server-side
  // request, exactly one connection — no replay re-spent any budget.
  EXPECT_EQ(serving.engine.stats().requests, 1U);
  EXPECT_EQ(serving.server->counters().connections_accepted, 1U);
}

TEST_F(NetRecovery, BudgetRejectionFrameIsFinal) {
  net::ServerConfig config;
  config.admission.max_bytes_per_connection = 4096;  // one model won't fit
  Serving serving("bprom_netrec_budget", config);
  net::RetryPolicy retry;
  retry.max_attempts = 3;
  auto client = net::Client::connect(
      bounded_config(serving.server->port(), retry));
  ASSERT_TRUE(client.ok());

  auto response = client.value().audit(wire_request());
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status.code(),
            api::StatusCode::kBudgetExhausted);
  // Rejected at admission — the engine never saw it, and the typed frame
  // was not mistaken for a transport fault worth retrying.
  EXPECT_EQ(serving.engine.stats().requests, 0U);
  EXPECT_EQ(serving.server->counters().connections_accepted, 1U);
}

TEST_F(NetRecovery, StallFailpointDelaysButCompletes) {
  Serving serving("bprom_netrec_stall");
  auto client = net::Client::connect(bounded_config(serving.server->port()));
  ASSERT_TRUE(client.ok());
  arm("net.recv.stall=delay:100");
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = client.value().stats();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();  // slow, not dead
  EXPECT_GE(util::failpoint_hits("net.recv.stall"), 1U);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            100);
}

TEST_F(NetRecovery, ShutdownMessageDrainsTheServer) {
  Serving serving("bprom_netrec_shutdown");
  auto client = net::Client::connect(bounded_config(serving.server->port()));
  ASSERT_TRUE(client.ok());
  // Prove the connection works, then ask for the drain.
  auto stats = client.value().stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(client.value().shutdown().ok());
  EXPECT_TRUE(serving.server->draining());
  // The drained server closes this connection once its queue empties; the
  // next call must fail with a transport error, not hang.
  auto after = client.value().stats();
  EXPECT_FALSE(after.ok());
  // And stop() now has nothing left to wait for.
  const auto t0 = std::chrono::steady_clock::now();
  serving.server->stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4000);
}

TEST_F(NetRecovery, DrainDuringPipelinedBatchAnswersEverySlot) {
  Serving serving("bprom_netrec_drainbatch");
  auto client = net::Client::connect(bounded_config(serving.server->port()));
  ASSERT_TRUE(client.ok());

  api::Result<std::vector<api::AuditResponse>> result =
      api::Status::Internal("not run");
  std::thread batcher([&] {
    result = client.value().audit_batch(
        {wire_request("a"), wire_request("b"), wire_request("c")});
  });
  // Let the requests reach the server, then drain mid-batch.  In-flight
  // audits finish and flush; anything arriving after the flip is refused
  // with a typed kFailedPrecondition — every slot gets an answer either
  // way, and nothing hangs.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  serving.server->begin_drain();
  batcher.join();

  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result.value().size(), 3U);
  for (const api::AuditResponse& response : result.value()) {
    EXPECT_TRUE(response.status.ok() ||
                response.status.code() ==
                    api::StatusCode::kFailedPrecondition)
        << response.model_id << ": " << response.status.to_string();
  }
}

}  // namespace
}  // namespace bprom
