#include "util/profiler.hpp"

#include <algorithm>
#include <bit>

namespace bprom::util {

namespace {

/// Bucket index: position of the highest set bit, so bucket b spans
/// [2^(b-1), 2^b) and bucket 0 holds exact zeros.  Clamped to the last
/// bucket: bit_width of a value with bit 63 set is 64, one past the
/// 64-entry histogram — record_value() accepts arbitrary magnitudes, so
/// the top bucket absorbs [2^62, 2^64) instead of indexing out of bounds.
std::size_t bucket_of(std::uint64_t value) {
  constexpr std::size_t kLast = 63;
  return std::min(static_cast<std::size_t>(std::bit_width(value)), kLast);
}

/// Representative value of bucket b — the geometric center of its span.
/// Clamped by the observed min/max when a percentile is extracted, so tiny
/// sample counts stay sane.
double bucket_mid(std::size_t b) {
  if (b == 0) return 0.0;
  const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
  return lo * 1.5;
}

}  // namespace

const char* profile_stage_name(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kResolve:
      return "resolve";
    case ProfileStage::kInspect:
      return "inspect";
    case ProfileStage::kRequest:
      return "request";
    case ProfileStage::kQueueWait:
      return "queue_wait";
    case ProfileStage::kQueueDepth:
      return "queue_depth";
    case ProfileStage::kBatch:
      return "batch";
    case ProfileStage::kStageCount:
      break;
  }
  return "unknown";
}

Profiler::Profiler() = default;

void Profiler::record(ProfileStage stage, std::uint64_t value) {
  // relaxed: epoch selection needs no ordering — a writer straddling a
  // flip lands its whole sample in one buffer or the other, and the fold
  // reads both buffers' atomics individually.
  Epoch& epoch = epochs_[live_.load(std::memory_order_relaxed) & 1U];
  StageCounters& c = epoch.stages[static_cast<std::size_t>(stage)];
  // relaxed: samples are integers folded commutatively; no reader ever
  // infers cross-counter ordering (count/sum/min/max may transiently
  // disagree mid-record and the fold tolerates that).
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(value, std::memory_order_relaxed);  // relaxed: see above
  // relaxed: min/max CAS loops — atomicity is all that matters, the loop
  // re-reads on failure.
  std::uint64_t seen = c.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !c.min.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {  // relaxed: ^
  }
  seen = c.max.load(std::memory_order_relaxed);  // relaxed: see above
  while (value > seen &&
         !c.max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {  // relaxed: ^
  }
  // relaxed: commutative histogram increment, same contract as count/sum.
  c.histogram[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

void Profiler::fold_and_reset(Epoch& epoch) {
  for (std::size_t s = 0; s < kProfileStages; ++s) {
    StageCounters& src = epoch.stages[s];
    CumulativeStage& dst = cumulative_[s];
    // relaxed: each exchange is individually atomic against writer RMWs,
    // and that is the whole requirement — a sample straddling the fold
    // lands in either this fold or the next, never both, never torn.
    const std::uint64_t count = src.count.exchange(
        0, std::memory_order_relaxed);  // relaxed: see above
    const std::uint64_t sum =
        src.sum.exchange(0, std::memory_order_relaxed);  // relaxed: see above
    const std::uint64_t mn = src.min.exchange(
        ~std::uint64_t{0}, std::memory_order_relaxed);  // relaxed: see above
    const std::uint64_t mx =
        src.max.exchange(0, std::memory_order_relaxed);  // relaxed: see above
    if (count == 0) continue;
    dst.count += count;
    dst.sum += static_cast<double>(sum);
    dst.min = std::min(dst.min, mn);
    dst.max = std::max(dst.max, mx);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      // relaxed: same per-cell atomicity argument as the exchanges above.
      dst.histogram[b] +=
          src.histogram[b].exchange(0, std::memory_order_relaxed);
    }
  }
}

ProfilerSnapshot Profiler::snapshot() {
  MutexLock lock(reader_mu_);
  // Flip, then fold the buffer writers just vacated.  Writers mid-record
  // against the old index finish into the buffer we are folding — their
  // relaxed RMWs and our relaxed exchanges interleave atomically, so every
  // sample lands in exactly one fold.
  // relaxed: the flip needs no release — no writer reads anything the
  // reader wrote; readers serialize among themselves on reader_mu_.
  const std::uint32_t retired = live_.fetch_add(1, std::memory_order_relaxed);
  fold_and_reset(epochs_[retired & 1U]);

  ProfilerSnapshot out;
  for (std::size_t s = 0; s < kProfileStages; ++s) {
    const CumulativeStage& c = cumulative_[s];
    ProfileStageStats& stats = out.stages[s];
    stats.count = c.count;
    stats.sum = c.sum;
    if (c.count == 0) continue;
    stats.min = c.min;
    stats.max = c.max;
    const auto percentile = [&](double q) {
      const auto rank = static_cast<std::uint64_t>(
          q * static_cast<double>(c.count - 1));
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += c.histogram[b];
        if (seen > rank) {
          const double mid = bucket_mid(b);
          // The histogram only knows the bucket; min/max tighten the edges.
          return std::clamp(mid, static_cast<double>(c.min),
                            static_cast<double>(c.max));
        }
      }
      return static_cast<double>(c.max);
    };
    stats.p50 = percentile(0.50);
    stats.p95 = percentile(0.95);
    stats.p99 = percentile(0.99);
  }
  return out;
}

}  // namespace bprom::util
