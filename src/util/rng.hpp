// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (dataset sampling, weight
// initialization, poisoning, CMA-ES, forests) draws from an explicitly
// threaded Rng so that experiments are reproducible from a single seed and
// independent streams can be split off for parallel work without sharing
// mutable state.
#pragma once

#include <cstdint>
#include <vector>

namespace bprom::util {

/// xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and cheap to copy.  Not cryptographically secure
/// (irrelevant here).  All distribution helpers are members so call sites
/// never reach for <random> engines with unspecified cross-platform output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) (k <= n), unordered.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child stream; deterministic in (state, salt).
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace bprom::util
